"""Legacy setup shim.

This environment lacks the ``wheel`` package, so PEP 660 editable
installs cannot build; keeping a ``setup.py`` lets ``pip install -e .``
fall back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
