"""Whole-graph discovery: find look-alike accounts with no candidate list.

The pairwise predictor answers "how similar are u and v?"; this example
answers the harder production question "*which* pairs are similar?" —
e.g. sockpuppet/duplicate-account detection, where accounts operated by
one actor follow nearly identical sets of users.

Because every vertex already carries a MinHash signature, LSH banding
over the existing sketches retrieves high-Jaccard pairs directly
(`repro.core.lshindex`): no quadratic scan, no candidate generation, no
second pass over the stream.

The stream here is a SNAP-profile social graph with five planted
sockpuppet rings (accounts sharing ≥80% of their neighborhoods).

Run:  python examples/similar_accounts_lsh.py
"""

from __future__ import annotations

import random

from repro import MinHashLinkPredictor, SketchConfig
from repro.core import LshCandidateIndex
from repro.core.lshindex import bands_for_threshold
from repro.eval.reporting import format_table
from repro.graph import datasets, from_pairs, shuffled


def planted_sockpuppet_stream(seed: int = 7):
    """The synth-facebook stream plus five rings of 3 cloned accounts."""
    base = list(datasets.load("synth-facebook"))
    rng = random.Random(seed)
    clones = []
    ring_members = {}
    next_id = 100_000  # well above the organic id range
    originals = rng.sample(range(500), 5)
    graph = {}
    for edge in base:
        graph.setdefault(edge.u, set()).add(edge.v)
        graph.setdefault(edge.v, set()).add(edge.u)
    for ring, original in enumerate(originals):
        neighbors = sorted(graph[original])
        members = [next_id + 10 * ring, next_id + 10 * ring + 1]
        ring_members[ring] = [original] + members
        for member in members:
            # Each clone follows ~90% of the original's neighborhood.
            for w in neighbors:
                if rng.random() < 0.9:
                    clones.append((member, w))
    edges = [(e.u, e.v) for e in base] + clones
    return shuffled(list(from_pairs(edges)), seed=seed), ring_members


def main() -> None:
    stream, rings = planted_sockpuppet_stream()
    predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=11))
    predictor.process(stream)
    print(f"ingested {len(stream)} edges; {predictor.vertex_count} accounts sketched")

    bands, rows = bands_for_threshold(predictor.config.k, threshold=0.6)
    index = LshCandidateIndex(predictor, bands=bands, rows=rows, min_degree=5)
    print(
        f"LSH index: {bands} bands x {rows} rows "
        f"(S-curve threshold {index.threshold:.2f}), "
        f"{index.bucket_count()} buckets\n"
    )

    top = index.top_pairs(limit=15, min_jaccard=0.5)
    planted = {
        frozenset(pair)
        for members in rings.values()
        for i, a in enumerate(members)
        for b in members[i + 1 :]
        for pair in [(a, b)]
    }
    rows_out = []
    for candidate, score in top:
        is_planted = frozenset((candidate.u, candidate.v)) in planted
        rows_out.append(
            [candidate.u, candidate.v, candidate.jaccard, "ring" if is_planted else ""]
        )
    print(
        format_table(
            ["account A", "account B", "Ĵ", "planted?"],
            rows_out,
            title="Top look-alike account pairs (no candidate list used)",
            precision=3,
        )
    )
    found = sum(1 for row in rows_out if row[3] == "ring")
    print(
        f"\n{found} of the top {len(rows_out)} discovered pairs are planted "
        f"sockpuppet relations; the organic hits are genuinely "
        "overlapping friend circles."
    )


if __name__ == "__main__":
    main()
