"""Audience overlap on a directed follow stream.

Directed graphs ask two different questions about a pair of accounts:

* **out-direction** — do they *follow* the same accounts?  (shared
  interests)
* **in-direction** — are they *followed by* the same accounts?
  (shared audience — the co-citation signal used for "accounts to
  watch together" and ad-audience lookalikes)

This example streams a directed power-law follow graph through the
direction-aware predictor (`repro.core.directed`), then shows pairs
where the two directions disagree strongly — information a folded
undirected analysis destroys — and validates the estimates against the
exact directed oracle.

Run:  python examples/audience_overlap.py
"""

from __future__ import annotations

import random

from repro import SketchConfig
from repro.core import DirectedExactOracle, DirectedMinHashPredictor
from repro.eval.reporting import format_table
from repro.graph.generators import chung_lu


def main() -> None:
    # A directed power-law stream: Chung-Lu arcs kept directed.
    arcs = chung_lu(n=3000, edges=24000, exponent=2.2, seed=31)
    sketch = DirectedMinHashPredictor(SketchConfig(k=256, seed=32))
    oracle = DirectedExactOracle()
    for arc in arcs:
        sketch.update(arc.u, arc.v)
        oracle.update(arc.u, arc.v)
    print(f"ingested {len(arcs)} follow arcs, {sketch.vertex_count} accounts\n")

    # Candidate pairs that share at least one *follower* (in-witness).
    rng = random.Random(33)
    followers = [
        v for v in oracle.graph.vertices() if oracle.graph.out_degree(v) >= 2
    ]
    pairs = set()
    while len(pairs) < 400:
        follower = rng.choice(followers)
        u, v = rng.sample(sorted(oracle.graph.successors(follower)), 2)
        pairs.add((min(u, v), max(u, v)))

    # Rank by estimated shared audience; show both directions.
    scored = sorted(
        pairs,
        key=lambda p: -sketch.score_directed(p[0], p[1], "common_neighbors", "in"),
    )[:10]
    rows = []
    for u, v in scored:
        rows.append(
            [
                f"({u},{v})",
                sketch.score_directed(u, v, "common_neighbors", "in"),
                oracle.score_directed(u, v, "common_neighbors", "in"),
                sketch.score_directed(u, v, "common_neighbors", "out"),
                oracle.score_directed(u, v, "common_neighbors", "out"),
            ]
        )
    print(
        format_table(
            ["pair", "ĈN in", "CN in", "ĈN out", "CN out"],
            rows,
            title="Top shared-audience pairs (estimated vs exact, both directions)",
            precision=2,
        )
    )

    asymmetric = sum(
        1
        for u, v in pairs
        if oracle.score_directed(u, v, "common_neighbors", "in") >= 3
        and oracle.score_directed(u, v, "common_neighbors", "out") == 0
    )
    print(
        f"\n{asymmetric} of {len(pairs)} candidate pairs share >=3 followers "
        "but follow nobody in common — structure a folded undirected "
        "analysis cannot express."
    )


if __name__ == "__main__":
    main()
