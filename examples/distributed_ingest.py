"""Scale-out ingestion: sketch stream partitions in parallel, then merge.

MinHash sketches are mergeable — per-vertex slot minima combine by
elementwise minimum and degree counters add — so a long stream can be
split across workers and the per-worker predictors combined afterwards
into a state *bit-identical* to a single-pass run.  This example
demonstrates the workflow with real OS processes (multiprocessing) over
four partitions of a co-authorship stream, then verifies the merged
predictor against a sequential reference.

Run:  python examples/distributed_ingest.py
"""

from __future__ import annotations

import time
from multiprocessing import Pool

from repro import ExactOracle, MinHashLinkPredictor, SketchConfig
from repro.eval.candidates import sample_two_hop_pairs
from repro.eval.reporting import format_table
from repro.graph import datasets

CONFIG = SketchConfig(k=128, seed=99)
WORKERS = 4


def sketch_partition(edges_part) -> bytes:
    """Worker: sketch one stream partition, return a checkpoint blob."""
    import io

    from repro.core.persistence import save_predictor

    predictor = MinHashLinkPredictor(CONFIG)
    predictor.process(edges_part)
    buffer = io.BytesIO()
    save_predictor(predictor, buffer)
    return buffer.getvalue()


def main() -> None:
    edges = datasets.load("synth-condmat")
    print(f"stream: {len(edges)} co-authorship edges, {WORKERS} workers\n")

    partitions = [edges[i::WORKERS] for i in range(WORKERS)]
    start = time.perf_counter()
    with Pool(WORKERS) as pool:
        blobs = pool.map(sketch_partition, partitions)
    parallel_seconds = time.perf_counter() - start

    # Merge the worker states on the coordinator.
    import io

    from repro.core.persistence import load_predictor

    workers = [load_predictor(io.BytesIO(blob)) for blob in blobs]
    merged = workers[0]
    for worker in workers[1:]:
        merged = merged.merge(worker)

    # Sequential reference for verification.
    start = time.perf_counter()
    reference = MinHashLinkPredictor(CONFIG)
    reference.process(edges)
    sequential_seconds = time.perf_counter() - start

    oracle = ExactOracle()
    oracle.process(edges)
    pairs = sample_two_hop_pairs(oracle.graph, 2000, seed=5)
    disagreements = sum(
        1
        for u, v in pairs
        if merged.score(u, v, "adamic_adar") != reference.score(u, v, "adamic_adar")
    )
    blob_mib = sum(len(b) for b in blobs) / (1 << 20)
    print(
        format_table(
            ["run", "wall seconds", "vertices sketched"],
            [
                [f"{WORKERS} workers (parallel)", parallel_seconds, merged.vertex_count],
                ["single pass (reference)", sequential_seconds, reference.vertex_count],
            ],
            title="Ingestion",
            precision=2,
        )
    )
    print(
        f"\nmerged-vs-sequential disagreements on {len(pairs)} queries: "
        f"{disagreements} (merge is exact)\n"
        f"worker state shipped to the coordinator: {blob_mib:.1f} MiB total.\n"
        "At this toy scale, checkpoint (de)serialisation dominates the\n"
        "wall clock — the point here is the *exactness* of the merge;\n"
        "the speedup appears when partitions are long-running streams\n"
        "and state shipping is amortised (or workers share memory)."
    )


if __name__ == "__main__":
    main()
