"""Trending connections: recency-aware prediction on a drifting stream.

Interaction graphs drift: who-messages-whom this month looks different
from six months ago, and a recommender that averages over all history
keeps suggesting yesterday's friends.  This example contrasts

* the **full-history** predictor (the paper's default), and
* the **sliding-window** predictor (`repro.core.windowed`, pane-rotated
  sketches that forget old panes whole),

on a stream whose community structure flips halfway through.  Both are
asked to estimate *current* common-neighbor counts (ground truth = the
recent half only).

Run:  python examples/trending_links.py
"""

from __future__ import annotations

import random

from repro import ExactOracle, MinHashLinkPredictor, SketchConfig
from repro.core.windowed import WindowedMinHashPredictor
from repro.eval.metrics import mean_relative_error
from repro.eval.reporting import format_table
from repro.graph.generators import planted_partition
from repro.graph.stream import Edge


def drifting_stream(seed: int = 17):
    """Community structure A, then the blocks shift by half a block."""
    phase_a = planted_partition(
        n=1500, communities=15, internal_edges=20000, external_edges=1500, seed=seed
    )
    raw_b = planted_partition(
        n=1500, communities=15, internal_edges=20000, external_edges=1500, seed=seed + 1
    )
    shift = 50
    phase_b = [
        Edge((e.u + shift) % 1500, (e.v + shift) % 1500, e.timestamp)
        for e in raw_b
        if (e.u + shift) % 1500 != (e.v + shift) % 1500
    ]
    return list(phase_a), phase_b


def main() -> None:
    phase_a, phase_b = drifting_stream()
    stream = phase_a + phase_b
    print(
        f"stream: {len(phase_a)} edges of old structure, then "
        f"{len(phase_b)} of new structure\n"
    )

    config = SketchConfig(k=192, seed=18)
    full_history = MinHashLinkPredictor(config)
    windowed = WindowedMinHashPredictor(
        config, pane_edges=len(phase_b) // 2, panes=2
    )
    for predictor in (full_history, windowed):
        predictor.process(stream)

    recent_truth = ExactOracle()
    recent_truth.process(phase_b)

    # Query pairs inside the *new* communities.
    rng = random.Random(19)
    pairs = []
    while len(pairs) < 200:
        community = rng.randrange(15)
        low = (community * 100 + 50) % 1500
        u = (low + rng.randrange(100)) % 1500
        v = (low + rng.randrange(100)) % 1500
        if (
            u != v
            and u in recent_truth.graph
            and v in recent_truth.graph
            and not recent_truth.graph.has_edge(u, v)
        ):
            pairs.append((u, v))
    truths = [recent_truth.score(u, v, "common_neighbors") for u, v in pairs]

    rows = []
    for label, predictor in (
        ("full history", full_history),
        (f"window (~{windowed.window_edges} recent edges)", windowed),
    ):
        estimates = [predictor.score(u, v, "common_neighbors") for u, v in pairs]
        rows.append(
            [label, mean_relative_error(estimates, truths), predictor.nominal_bytes() // 1024]
        )
    print(
        format_table(
            ["predictor", "CN error vs current structure", "state KiB"],
            rows,
            title="Estimating *current* common neighbors after structural drift",
            precision=3,
        )
    )
    print(
        "\nReading: the window forgets the stale structure wholesale and "
        "tracks the live one; the full-history sketch blends both and "
        "overestimates badly.  Window state costs at most `panes` times "
        "one store — still constant per vertex."
    )


if __name__ == "__main__":
    main()
