"""Quickstart: sketch-based link prediction in five minutes.

Builds the paper's MinHash predictor over a social-graph stream, asks it
the three paper measures for a handful of vertex pairs, and shows the
answers next to exact ground truth and the memory both methods paid.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExactOracle, MinHashLinkPredictor, SketchConfig
from repro.core import memory_report
from repro.eval.candidates import sample_two_hop_pairs
from repro.eval.reporting import format_table
from repro.graph import datasets


def main() -> None:
    # 1. A graph stream.  synth-facebook mimics the SNAP ego-Facebook
    #    profile: 4k vertices, 88k edges, mean degree ~44.
    edges = datasets.load("synth-facebook")
    print(f"stream: {len(edges)} edges from {datasets.spec('synth-facebook').description!r}")

    # 2. The streaming predictor: k=128 slots per vertex, one pass.
    #    SketchConfig.for_accuracy(epsilon, delta) sizes k from an
    #    accuracy target instead, if you prefer guarantees to knobs.
    predictor = MinHashLinkPredictor(SketchConfig(k=128, seed=42))
    predictor.process(edges)

    # (Only for this demo: an exact oracle to show the truth next to
    # the estimates.  Real deployments keep just the sketches.)
    oracle = ExactOracle()
    oracle.process(edges)

    # 3. Query pairs online.  estimate() bundles all paper measures.
    pairs = sample_two_hop_pairs(oracle.graph, 8, seed=7)
    rows = []
    for u, v in pairs:
        est = predictor.estimate(u, v)
        rows.append(
            [
                f"({u},{v})",
                est.jaccard,
                oracle.score(u, v, "jaccard"),
                est.common_neighbors,
                oracle.score(u, v, "common_neighbors"),
                est.adamic_adar,
                oracle.score(u, v, "adamic_adar"),
            ]
        )
    print()
    print(
        format_table(
            ["pair", "Ĵ", "J", "ĈN", "CN", "ÂA", "AA"],
            rows,
            title="Sketch estimates vs exact values (two-hop query pairs)",
            precision=3,
        )
    )

    # 4. What the constant-space claim means in bytes.
    sketch_memory = memory_report(predictor)
    exact_memory = memory_report(oracle)
    print()
    print(
        format_table(
            ["method", "vertices", "nominal bytes", "bytes/vertex"],
            [
                [
                    "minhash sketches",
                    sketch_memory.vertices,
                    sketch_memory.nominal_bytes,
                    sketch_memory.nominal_bytes_per_vertex,
                ],
                [
                    "exact adjacency",
                    exact_memory.vertices,
                    exact_memory.nominal_bytes,
                    exact_memory.nominal_bytes / max(exact_memory.vertices, 1),
                ],
            ],
            title="Memory: bounded per vertex (sketch) vs degree-dependent (exact)",
            precision=1,
        )
    )
    print(
        "\nThe sketch spends a fixed "
        f"{predictor.config.bytes_per_vertex() + 8} bytes per vertex no "
        "matter how hubs grow; exact adjacency grows with every edge."
    )


if __name__ == "__main__":
    main()
