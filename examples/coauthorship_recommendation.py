"""Collaboration recommendation on a co-authorship stream.

The scenario the paper's introduction motivates: a bibliographic service
watches papers (co-authorship edges) arrive and must recommend likely
*future* collaborators without materialising the whole graph.

This example replays the first 70% of a CondMat-profile stream into the
sketch predictor, then scores the held-out future: of the author pairs
who actually collaborate later, how many does each method rank highly?

Run:  python examples/coauthorship_recommendation.py
"""

from __future__ import annotations

from repro import MinHashLinkPredictor, SketchConfig
from repro.eval.experiments import ranking_quality, temporal_ranking_task
from repro.eval.reporting import format_table
from repro import ExactOracle
from repro.exact import NeighborReservoirBaseline
from repro.graph import datasets


def main() -> None:
    edges = datasets.load("synth-condmat")
    print(
        "co-authorship stream (ca-CondMat profile): "
        f"{len(edges)} edges; predicting the last 30% from the first 70%"
    )

    train, positives, negatives = temporal_ranking_task(
        edges, train_fraction=0.7, negative_ratio=5.0, max_positives=400, seed=1
    )
    print(
        f"task: rank {len(positives)} future collaborations against "
        f"{len(negatives)} random non-collaborating pairs\n"
    )

    methods = {
        "minhash sketch (k=128)": MinHashLinkPredictor(SketchConfig(k=128, seed=2)),
        "neighbor reservoir (256 ids)": NeighborReservoirBaseline(256, seed=2),
        "exact snapshot": ExactOracle(),
    }
    for predictor in methods.values():
        predictor.process(train)

    rows = []
    for label, predictor in methods.items():
        for measure in ("common_neighbors", "adamic_adar"):
            result = ranking_quality(
                predictor, positives, negatives, measure, precision_levels=(50, 100)
            )
            rows.append(
                [
                    label,
                    measure,
                    result.auc,
                    result.precision[50],
                    result.precision[100],
                    result.average_precision,
                ]
            )

    print(
        format_table(
            ["method", "measure", "AUC", "prec@50", "prec@100", "AP"],
            rows,
            title="Future-collaboration ranking quality",
            precision=3,
        )
    )
    print(
        "\nReading: the sketch method should land within a few points of "
        "the exact snapshot while storing a constant "
        "~2KB per author instead of full co-author lists."
    )


if __name__ == "__main__":
    main()
