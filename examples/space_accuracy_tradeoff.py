"""The space/accuracy dial: choosing k for your memory budget.

Sweeps the sketch size k, measuring (a) bytes per vertex and (b) the
mean relative error of the three paper measures against exact ground
truth, so you can read off the k your accuracy target needs — and
compares the observed Jaccard error with the ε the Hoeffding bound
promises at each k.

Run:  python examples/space_accuracy_tradeoff.py
"""

from __future__ import annotations

from repro import ExactOracle, MinHashLinkPredictor, SketchConfig
from repro.eval.candidates import sample_two_hop_pairs
from repro.eval.experiments import accuracy_profile
from repro.eval.metrics import mean_absolute_error
from repro.eval.reporting import format_table
from repro.graph import datasets

MEASURES = ("jaccard", "common_neighbors", "adamic_adar")


def main() -> None:
    edges = datasets.load("synth-grqc")
    oracle = ExactOracle()
    oracle.process(edges)
    pairs = sample_two_hop_pairs(oracle.graph, 500, seed=5)
    truths = [oracle.score(u, v, "jaccard") for u, v in pairs]

    rows = []
    for k in (16, 32, 64, 128, 256, 512):
        config = SketchConfig(k=k, seed=6)
        predictor = MinHashLinkPredictor(config)
        predictor.process(edges)
        profile = accuracy_profile(predictor, oracle, pairs, MEASURES)
        estimates = [predictor.score(u, v, "jaccard") for u, v in pairs]
        observed_mae = mean_absolute_error(estimates, truths)
        rows.append(
            [
                k,
                config.bytes_per_vertex() + 8,
                profile["jaccard"]["mre"],
                profile["common_neighbors"]["mre"],
                profile["adamic_adar"]["mre"],
                observed_mae,
                config.jaccard_epsilon(0.05),
            ]
        )

    print(
        format_table(
            [
                "k",
                "bytes/vertex",
                "MRE(J)",
                "MRE(CN)",
                "MRE(AA)",
                "MAE(J) observed",
                "ε(J) guaranteed",
            ],
            rows,
            title=(
                "Space vs accuracy on synth-grqc "
                f"({len(pairs)} two-hop query pairs)"
            ),
            precision=3,
        )
    )
    print(
        "\nReading: every error column shrinks like 1/sqrt(k) (double the "
        "memory, ~30% less error); the observed MAE sits well inside the "
        "guaranteed ε, which holds for 95% of pairs."
    )


if __name__ == "__main__":
    main()
