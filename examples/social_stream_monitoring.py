"""Online monitoring of a live social stream.

Demonstrates the *streaming* usage pattern the paper targets: a single
pass over an unbounded friendship stream, with

* constant-memory stream statistics (HyperLogLog-backed),
* periodic "who should we introduce?" top-k recommendation snapshots
  computed entirely from the sketches, and
* the error bar that the Hoeffding guarantee attaches to each estimate.

The stream here is a planted-community graph (synthetic, seeded); in
production you would pass any iterable of (u, v, timestamp) edges —
e.g. ``repro.graph.io.iter_edge_list`` over a Kafka dump.

Run:  python examples/social_stream_monitoring.py
"""

from __future__ import annotations

from repro import ExactOracle, MinHashLinkPredictor, SketchConfig
from repro.eval.candidates import sample_two_hop_pairs
from repro.eval.reporting import format_table
from repro.graph import StreamStats, checkpoints, datasets


def main() -> None:
    edges = datasets.load("synth-communities")
    config = SketchConfig(k=192, seed=3)
    predictor = MinHashLinkPredictor(config)
    stats = StreamStats()

    # The demo keeps a shadow oracle only to *sample candidate pairs*
    # at each checkpoint (a production system would track candidates
    # from its own application logic, e.g. recent co-interactions).
    shadow = ExactOracle()

    print(
        f"monitoring a friendship stream; ε(Ĵ) = ±{config.jaccard_epsilon(0.05):.3f} "
        "at 95% confidence\n"
    )

    snapshot = 0
    for edge, seen, at_checkpoint in checkpoints(iter(edges), every=10000):
        if edge is not None:
            stats.observe(edge)
            predictor.update(edge.u, edge.v)
            shadow.update(edge.u, edge.v)
        if not at_checkpoint or edge is None and seen == 0:
            continue
        snapshot += 1
        candidates = sample_two_hop_pairs(shadow.graph, 400, seed=100 + seen)
        top = predictor.rank_candidates(candidates, "adamic_adar", top=3)
        rows = [
            [
                f"({u},{v})",
                score,
                predictor.estimate(u, v).jaccard_std_error,
            ]
            for (u, v), score in top
        ]
        print(
            format_table(
                ["suggested introduction", "ÂA", "±σ(Ĵ)"],
                rows,
                title=(
                    f"checkpoint {snapshot}: {seen} edges seen, "
                    f"~{stats.approximate_vertices():.0f} users, "
                    f"~{stats.approximate_edges():.0f} distinct friendships"
                ),
                precision=3,
            )
        )
        print()

    footprint = predictor.nominal_bytes() / 1024.0
    print(
        f"done: {stats.records} edges in one pass; sketch footprint "
        f"{footprint:.0f} KiB "
        f"({predictor.config.bytes_per_vertex() + 8} bytes/user, fixed)"
    )


if __name__ == "__main__":
    main()
