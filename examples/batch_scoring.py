"""Batch scoring: serving link predictions at throughput.

Builds a warm MinHash predictor, snapshots it into a ``QueryEngine``,
and shows the three serving verbs: score a whole pair batch in one
vectorized call, fetch a vertex's top-k partners through LSH-pruned
candidate generation, and read the engine's health counters — then
measures the speedup over the single-pair loop on the same pairs.

Run:  python examples/batch_scoring.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import MinHashLinkPredictor, QueryEngine, SketchConfig
from repro.eval.reporting import format_table
from repro.graph import datasets


def main() -> None:
    # 1. A warm predictor: the write path, exactly as in quickstart.
    edges = datasets.load("synth-facebook")
    predictor = MinHashLinkPredictor(SketchConfig(k=128, seed=42))
    predictor.process(edges)

    # 2. The read path: snapshot into an engine.  The pack is frozen —
    #    the stream can keep updating the predictor; call refresh() to
    #    serve the newer state.
    engine = QueryEngine(predictor)

    # 3. Score a batch.  20k random pairs, some of which hit vertices
    #    the stream never produced — those score 0.0 (the unseen-vertex
    #    policy), never a KeyError.
    rng = np.random.default_rng(7)
    pairs = rng.integers(0, 4_500, size=(20_000, 2))

    engine.score_many(pairs[:64], "adamic_adar")  # first call pays the
    # one-time witness-weight resolution; time the steady state
    started = time.perf_counter()
    batch_scores = engine.score_many(pairs, "adamic_adar")
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loop_scores = [
        predictor.score(int(u), int(v), "adamic_adar") for u, v in pairs[:2_000]
    ]
    loop_seconds = (time.perf_counter() - started) * (len(pairs) / 2_000)

    assert np.allclose(batch_scores[:2_000], loop_scores)  # same answers
    print(
        f"scored {len(pairs):,} pairs: "
        f"score_many {len(pairs) / batch_seconds:,.0f} pairs/s vs "
        f"loop ~{len(pairs) / loop_seconds:,.0f} pairs/s "
        f"({loop_seconds / batch_seconds:.1f}x)"
    )

    # 4. Top-k recommendations.  The default banding prunes through the
    #    LSH index with exact recall: same answer as brute force, a
    #    fraction of the scoring work.
    hub = int(max(engine.store.vertex_ids, key=predictor.degree))
    ranked = engine.top_k(hub, "adamic_adar", k=8)
    print()
    print(
        format_table(
            ["candidate", "adamic_adar"],
            [[v, s] for v, s in ranked],
            title=f"Top partners of hub vertex {hub}",
            precision=3,
        )
    )

    # 5. The monitoring surface: flat scalars, one row per counter.
    print()
    print(
        format_table(
            ["stat", "value"],
            [[key, value] for key, value in engine.stats().items()],
            title="Engine stats",
            precision=2,
        )
    )


if __name__ == "__main__":
    main()
