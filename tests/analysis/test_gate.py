"""The gate itself: the repo lints clean, drift fails, the CLI honors rc."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import Baseline, LintRunner
from repro.analysis.rules.taxonomy import TaxonomyRule

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
EXAMPLES = REPO_ROOT / "examples"


class TestRepoIsClean:
    def test_src_and_examples_have_no_new_findings(self):
        baseline_path = REPO_ROOT / "lint-baseline.json"
        baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
        report = LintRunner().report([SRC, EXAMPLES], baseline)
        assert report.new == [], report.render_text()
        assert report.stale_baseline == [], report.render_text()
        assert report.exit_code == 0

    def test_every_suppression_sits_next_to_a_justification(self):
        # Suppression etiquette (docs/LINT.md): a disable directive is a
        # documented exception — there must be a comment within the two
        # lines above it saying why.
        problems = []
        for path in sorted(SRC.rglob("*.py")):
            if (SRC / "analysis") in path.parents:
                continue  # the linter's own docs mention the directive
            lines = path.read_text(encoding="utf-8").splitlines()
            for index, line in enumerate(lines):
                if "repro-lint: disable=" not in line:
                    continue
                if line.lstrip().startswith("#") and "disable=" not in line.split("#")[0]:
                    # A pure comment line is documentation, not a
                    # suppression (the engine only honors trailing
                    # directives on the flagged line).
                    continue
                context = lines[max(0, index - 2):index]
                if not any("#" in previous for previous in context):
                    problems.append(f"{path}:{index + 1}")
        assert problems == [], f"unjustified suppressions: {problems}"


class TestReasonsDrift:
    def test_unregistered_reason_in_real_tree_fails_lint(self):
        # Simulate vocabulary drift: lint the *real* stream package with
        # one production reason deregistered.  The rule must catch the
        # now-orphaned call sites — proving an unregistered reason at a
        # call site can never pass CI.
        from repro.stream.deadletter import REASONS

        shrunk = tuple(r for r in REASONS if r != "bad_arity")
        rule = TaxonomyRule(reasons=shrunk)
        findings, _, _ = LintRunner([rule]).run([SRC / "stream"])
        drifted = [f for f in findings if "'bad_arity'" in f.message]
        # Caught at both the raise site and the DEFAULT_POLICIES key.
        assert len(drifted) >= 2, findings


class TestCli:
    def write_bad_module(self, tmp_path):
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "block.py").write_text(
            "import time\n\ndef stamp():\n    return time.perf_counter()\n"
        )
        return tmp_path

    def test_rc_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_rc_one_on_violation(self, tmp_path, capsys):
        target = self.write_bad_module(tmp_path)
        assert lint_main([str(target), "--no-baseline"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_rc_two_on_missing_target(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output_file(self, tmp_path, capsys):
        target = self.write_bad_module(tmp_path)
        out = tmp_path / "findings.json"
        rc = lint_main([str(target), "--format", "json", "--output", str(out)])
        assert rc == 1
        payload = json.loads(out.read_text())
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "RL001"

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        # Finding paths are cwd-relative, so baseline and check must run
        # from one directory — as CI does from the repo root.
        monkeypatch.chdir(tmp_path)
        target = self.write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline)]) == 0
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        # Default baseline discovery: ./lint-baseline.json when present.
        baseline.rename(tmp_path / "lint-baseline.json")
        assert lint_main([str(target)]) == 0

    def test_repo_cli_lint_subcommand(self, tmp_path):
        from repro.cli import main as repro_main

        target = self.write_bad_module(tmp_path)
        assert repro_main(["lint", str(target), "--no-baseline"]) == 1
