"""The lint engine: suppressions, baseline round-trip, output, rc contract."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    Baseline,
    BaselineEntry,
    Finding,
    LintRunner,
    ModuleContext,
    iter_python_files,
)
from repro.analysis.rules.base import Rule
from repro.errors import ConfigurationError


class FlagEveryDef(Rule):
    """A test rule: one finding per function definition."""

    rule_id = "RL901"
    title = "flags every def"

    def check_module(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef):
                yield ctx.finding(node, self.rule_id, f"def {node.name}")


class TestSuppressions:
    def test_same_line_directive_silences_the_finding(self, lint_tree):
        findings, suppressed, checked = lint_tree(
            {
                "mod.py": """
                def flagged():
                    pass

                def silenced():  # repro-lint: disable=RL901
                    pass
                """
            },
            [FlagEveryDef()],
        )
        assert [f.message for f in findings] == ["def flagged"]
        assert suppressed == 1
        assert checked == 1

    def test_comma_list_and_all(self, lint_tree):
        findings, suppressed, _ = lint_tree(
            {
                "mod.py": """
                def a():  # repro-lint: disable=RL555,RL901
                    pass

                def b():  # repro-lint: disable=all
                    pass
                """
            },
            [FlagEveryDef()],
        )
        assert findings == []
        assert suppressed == 2

    def test_unrelated_rule_id_does_not_suppress(self, lint_tree):
        findings, suppressed, _ = lint_tree(
            {
                "mod.py": """
                def a():  # repro-lint: disable=RL555
                    pass
                """
            },
            [FlagEveryDef()],
        )
        assert len(findings) == 1
        assert suppressed == 0


class TestBaseline:
    def entries(self):
        return [
            BaselineEntry("mod.py", "RL901", "def a", "legacy"),
            BaselineEntry("mod.py", "RL901", "def gone", "stale one"),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline(self.entries()).save(path)
        loaded = Baseline.load(path)
        assert [e.key() for e in loaded.entries] == [e.key() for e in self.entries()]
        assert loaded.entries[0].justification == "legacy"

    def test_split_new_baselined_stale(self):
        baseline = Baseline(self.entries())
        findings = [
            Finding("mod.py", 2, "RL901", "def a"),
            Finding("mod.py", 9, "RL901", "def brand_new"),
        ]
        new, baselined, stale = baseline.split(findings)
        assert [f.message for f in new] == ["def brand_new"]
        assert [f.message for f in baselined] == ["def a"]
        assert [e.message for e in stale] == ["def gone"]

    def test_match_is_line_independent(self):
        baseline = Baseline([BaselineEntry("mod.py", "RL901", "def a")])
        new, baselined, _ = baseline.split([Finding("mod.py", 777, "RL901", "def a")])
        assert new == [] and len(baselined) == 1

    def test_duplicate_findings_need_duplicate_entries(self):
        baseline = Baseline([BaselineEntry("mod.py", "RL901", "def a")])
        twice = [Finding("mod.py", 1, "RL901", "def a"), Finding("mod.py", 5, "RL901", "def a")]
        new, baselined, _ = baseline.split(twice)
        assert len(baselined) == 1 and len(new) == 1

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            Baseline.load(path)
        path.write_text('{"entries": [{"file": "x"}]}')
        with pytest.raises(ConfigurationError):
            Baseline.load(path)


class TestReport:
    def make_report(self, lint_tree, tmp_path):
        lint_tree(
            {"mod.py": "def a():\n    pass\n\ndef b():\n    pass\n"},
            [FlagEveryDef()],
        )
        runner = LintRunner([FlagEveryDef()])
        baseline = Baseline([BaselineEntry("stale.py", "RL901", "def never")])
        return runner.report([tmp_path], baseline)

    def test_rc_contract(self, lint_tree, tmp_path):
        report = self.make_report(lint_tree, tmp_path)
        assert report.exit_code == 1  # new findings
        full = Baseline.from_findings(report.findings)
        assert LintRunner([FlagEveryDef()]).report([tmp_path], full).exit_code == 0

    def test_json_schema(self, lint_tree, tmp_path):
        report = self.make_report(lint_tree, tmp_path)
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        assert payload["checked_files"] == 1
        assert payload["new"] == 2
        assert payload["exit_code"] == 1
        assert {"file", "line", "rule", "message", "baselined"} == set(
            payload["findings"][0]
        )
        assert payload["stale_baseline"] == [
            {"file": "stale.py", "rule": "RL901", "message": "def never"}
        ]

    def test_text_output_lists_findings_and_stale_entries(self, lint_tree, tmp_path):
        text = self.make_report(lint_tree, tmp_path).render_text()
        assert "RL901 def a" in text
        assert "2 new finding(s)" in text
        assert "stale baseline: stale.py" in text


class TestDiscoveryAndParsing:
    def test_syntax_error_becomes_rl000(self, lint_tree):
        findings, _, checked = lint_tree({"broken.py": "def (\n"}, [FlagEveryDef()])
        assert checked == 1
        assert [f.rule_id for f in findings] == ["RL000"]

    def test_missing_target_raises(self):
        with pytest.raises(ConfigurationError):
            iter_python_files([Path("definitely/not/here")])

    def test_discovery_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.py").write_text("")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_package_relative_scoping_without_repro_dir(self, tmp_path):
        # Fixture trees fall back to scan-root-relative paths, which is
        # what lets path-scoped rules (RL001) match hot-path layouts.
        path = tmp_path / "core" / "block.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        seen = {}

        class Spy(Rule):
            rule_id = "RL902"

            def check_module(self, ctx):
                seen[ctx.rel] = ctx.package_rel
                return ()

        LintRunner([Spy()]).run([tmp_path])
        assert list(seen.values()) == ["core/block.py"]
