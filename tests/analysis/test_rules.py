"""Good/bad fixtures per rule: each invariant catches its seeded
violation and stays quiet on the idiomatic spelling."""

from __future__ import annotations

import pytest

from repro.analysis.rules.api_surface import ApiSurfaceRule
from repro.analysis.rules.concurrency import ConcurrencyBoundaryRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.metrics import MetricsHygieneRule
from repro.analysis.rules.taxonomy import TaxonomyRule


def only_rule(findings, rule_id):
    assert all(f.rule_id == rule_id for f in findings), findings
    return findings


class TestDeterminismRL001:
    def rule(self):
        return DeterminismRule()

    def test_wall_clock_flagged_in_hot_path(self, lint_tree):
        findings, _, _ = lint_tree(
            {"core/block.py": """
            import time

            def stamp():
                return time.perf_counter()
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL001")) == 1

    def test_same_code_outside_hot_path_is_fine(self, lint_tree):
        findings, _, _ = lint_tree(
            {"eval/timers.py": """
            import time

            def stamp():
                return time.perf_counter()
            """},
            [self.rule()],
        )
        assert findings == []

    def test_unseeded_numpy_rng_flagged_seeded_allowed(self, lint_tree):
        findings, _, _ = lint_tree(
            {"hashing/mix.py": """
            import numpy as np

            def bad():
                return np.random.permutation(8)

            def good(seed):
                return np.random.default_rng(seed).permutation(8)
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL001")) == 1
        assert "permutation" in findings[0].message

    def test_seeded_random_Random_allowed_ambient_random_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"sketches/pick.py": """
            import random

            def good(seed):
                return random.Random(seed)

            def bad():
                return random.random()
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL001")) == 1

    def test_float_equality_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"serve/kernels.py": """
            def bad(x):
                return x == 0.5

            def good(x):
                return abs(x - 0.5) < 1e-9
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL001")) == 1

    def test_set_iteration_into_return_flagged_sorted_allowed(self, lint_tree):
        findings, _, _ = lint_tree(
            {"serve/packed.py": """
            def bad(items):
                pool = set(items)
                return [x + 1 for x in pool]

            def good(items):
                pool = set(items)
                return [x + 1 for x in sorted(pool)]
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL001")) == 1

    def test_loop_feeding_returned_container_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"sketches/fold.py": """
            def bad(items):
                out = []
                for x in set(items):
                    out.append(x)
                return out
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL001")) == 1


class TestTaxonomyRL002:
    def rule(self):
        return TaxonomyRule(reasons=("alpha", "beta"))

    def test_bare_builtin_raise_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            def f():
                raise ValueError("nope")
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL002")) == 1

    def test_taxonomy_and_local_raises_allowed(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            from repro.errors import ConfigurationError

            class LocalProblem(Exception):
                pass

            def f(flag):
                if flag:
                    raise ConfigurationError("bad flag")
                raise LocalProblem

            def todo():
                raise NotImplementedError
            """},
            [self.rule()],
        )
        assert findings == []

    def test_examples_exempt_from_raise_check(self, lint_tree):
        findings, _, _ = lint_tree(
            {"examples/demo.py": """
            def f():
                raise ValueError("scripts may be casual")
            """},
            [self.rule()],
        )
        assert findings == []

    def test_unregistered_reason_literal_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            def f(judge):
                judge.ContractViolation("alpha", "fine")
                judge.ContractViolation("gamma", "drifted")
                judge.DeadLetter(0, "delta", "raw", "drifted")
            """},
            [self.rule()],
        )
        assert [f.message for f in only_rule(findings, "RL002")] == [
            "dead-letter reason 'gamma' passed to ContractViolation is not in "
            "the closed REASONS vocabulary (register it in "
            "repro.stream.deadletter.REASONS and docs/CASEBOOK.md first)",
            "dead-letter reason 'delta' passed to DeadLetter is not in the "
            "closed REASONS vocabulary (register it in "
            "repro.stream.deadletter.REASONS and docs/CASEBOOK.md first)",
        ]

    def test_reason_keyword_checked(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            from repro.errors import DeadLetterError

            def f():
                raise DeadLetterError("x", reason="gamma", offset=3)
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL002")) == 1

    def test_policies_dict_keys_checked(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            DEFAULT_POLICIES = {"alpha": 1, "gamma": 2}
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL002")) == 1
        assert "'gamma'" in findings[0].message

    def test_live_vocabulary_is_the_default(self):
        # The rule imports REASONS, not a copy: a reason used at a call
        # site without being registered fails lint (taxonomy drift).
        from repro.stream.deadletter import REASONS

        assert TaxonomyRule().reasons == frozenset(REASONS)


class TestMetricsRL003:
    def rule(self):
        return MetricsHygieneRule()

    def test_bad_instrument_name_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            def wire(metrics):
                metrics.counter("HTTPRequests", "bad case")
                metrics.counter("http_requests_total", "fine")
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL003")) == 1
        assert "HTTPRequests" in findings[0].message

    def test_kind_conflict_across_files_flagged_at_second_site(self, lint_tree):
        findings, _, _ = lint_tree(
            {
                "a.py": 'def wire(m):\n    m.counter("swap_total", "x")\n',
                "b.py": 'def wire(m):\n    m.histogram("swap_total", "x")\n',
            },
            [self.rule()],
        )
        assert len(only_rule(findings, "RL003")) == 1
        assert findings[0].file.endswith("b.py")
        assert "one name, one kind" in findings[0].message

    def test_same_kind_re_registration_is_fine(self, lint_tree):
        findings, _, _ = lint_tree(
            {
                "a.py": 'def wire(m):\n    m.counter("swap_total", "x")\n',
                "b.py": 'def wire(m):\n    m.counter("swap_total", "x")\n',
            },
            [self.rule()],
        )
        assert findings == []

    def test_computed_label_set_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            def wire(m, labels):
                m.counter("requests_total", "x", labels)
                m.counter("responses_total", "x", ("code", "route"))
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL003")) == 1
        assert "literal tuple" in findings[0].message

    def test_uppercase_label_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"mod.py": """
            def wire(m):
                m.gauge("queue_depth", "x", labelnames=("Shard",))
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL003")) == 1


class TestConcurrencyRL004:
    def rule(self):
        return ConcurrencyBoundaryRule()

    BOUNDARY_MODULE = """
    import threading


    class Worker(threading.Thread):
        def __init__(self, server):
            super().__init__()
            self.server = server

        def run(self):
            self.server.publish()


    class Server:
        def publish(self):
            self.{attr} = object()
            {extra}

        async def start(self):
            self.publish()
    """

    def module(self, attr="_generation", extra="pass", header=""):
        import textwrap

        body = textwrap.dedent(self.BOUNDARY_MODULE.format(attr=attr, extra=extra))
        return header + body

    def test_cross_boundary_write_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"serve/server.py": self.module(attr="_count")},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL004")) == 1
        assert "_count" in findings[0].message

    def test_declared_publication_attr_allowed(self, lint_tree):
        findings, _, _ = lint_tree(
            {
                "serve/server.py": self.module(
                    header='_PUBLICATION_ATTRS = frozenset({"_generation"})\n',
                )
            },
            [self.rule()],
        )
        assert findings == []

    def test_publication_attr_augassign_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {
                "serve/server.py": self.module(
                    header='_PUBLICATION_ATTRS = frozenset({"_generation"})\n',
                    extra="self._generation += 1",
                )
            },
            [self.rule()],
        )
        assert len(only_rule(findings, "RL004")) == 1
        assert "read-modify-write" in findings[0].message

    def test_thread_only_module_not_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"serve/pool.py": """
            import threading


            class Worker(threading.Thread):
                def run(self):
                    self.count = 1
            """},
            [self.rule()],
        )
        assert findings == []

    def test_thread_side_does_not_descend_into_coroutines(self, lint_tree):
        # A thread that *references* a coroutine function doesn't run
        # its body; the async write alone must not create a thread-side
        # write.
        findings, _, _ = lint_tree(
            {"serve/mixed.py": """
            import asyncio
            import threading


            class Runner(threading.Thread):
                def run(self):
                    asyncio.run(self.main())

                async def main(self):
                    self.result = 1
            """},
            [self.rule()],
        )
        assert findings == []

    def test_thread_target_entry_point(self, lint_tree):
        findings, _, _ = lint_tree(
            {"serve/targets.py": """
            import threading


            class Server:
                def _pump(self):
                    self.offset = 1

                def start(self):
                    self.thread = threading.Thread(target=self._pump)
                    self.thread.start()

                async def stop(self):
                    self.offset = 0
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL004")) == 1
        assert "offset" in findings[0].message


class TestApiSurfaceRL005:
    def rule(self, facade=("SketchConfig", "ingest")):
        return ApiSurfaceRule(facade_names=facade)

    def test_public_def_missing_from_all_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"api.py": """
            __all__ = ["ingest"]


            def ingest(source):
                return source


            def evaluate(source):
                return source
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL005")) == 1
        assert "'evaluate'" in findings[0].message

    def test_stale_all_entry_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"api.py": """
            __all__ = ["ingest", "vanished"]


            def ingest(source):
                return source
            """},
            [self.rule()],
        )
        messages = " ".join(f.message for f in only_rule(findings, "RL005"))
        assert "'vanished'" in messages

    def test_exact_surface_passes(self, lint_tree):
        findings, _, _ = lint_tree(
            {"api.py": """
            __all__ = ["IngestReport", "ingest"]

            from dataclasses import dataclass


            @dataclass
            class IngestReport:
                records: int


            def ingest(source):
                return IngestReport(0)
            """},
            [self.rule()],
        )
        assert findings == []

    def test_example_importing_facade_name_deeply_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"examples/demo.py": """
            from repro import ingest
            from repro.core import SketchConfig
            from repro.eval.reporting import format_table
            """},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL005")) == 1
        assert "SketchConfig" in findings[0].message

    def test_example_importing_private_name_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"examples/demo.py": "from repro.serve.server import _ScoreBatcher\n"},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL005")) == 1

    def test_docstring_snippet_deep_import_flagged(self, lint_tree):
        findings, _, _ = lint_tree(
            {"core/predictor.py": '''
            """The predictor.

            >>> from repro.core import SketchConfig
            >>> SketchConfig(k=4)
            """
            '''},
            [self.rule()],
        )
        assert len(only_rule(findings, "RL005")) == 1
        assert "from repro import SketchConfig" in findings[0].message

    def test_docstring_snippet_facade_import_passes(self, lint_tree):
        findings, _, _ = lint_tree(
            {"core/predictor.py": '''
            """The predictor.

            >>> from repro import SketchConfig
            >>> from repro.graph import from_pairs
            """
            '''},
            [self.rule()],
        )
        assert findings == []

    def test_default_facade_names_come_from_the_live_package(self):
        import repro
        import repro.api

        names = ApiSurfaceRule().facade_names
        assert names == frozenset(repro.__all__) | frozenset(repro.api.__all__)
