"""Shared fixture helpers: write a source tree, lint it, read findings."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

from repro.analysis.engine import Finding, LintRunner


@pytest.fixture()
def lint_tree(tmp_path):
    """Write ``{relative path: source}`` under a temp root and lint it.

    Returns ``(findings, suppressed, checked)`` from the given rules —
    the same triple :meth:`LintRunner.run` produces — with sources
    dedented so tests can use readable triple-quoted literals.
    """

    def run(files: Dict[str, str], rules: Sequence) -> tuple:
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return LintRunner(rules).run([tmp_path])

    run.root = tmp_path
    return run


def rule_ids(findings: List[Finding]) -> List[str]:
    return [finding.rule_id for finding in findings]
