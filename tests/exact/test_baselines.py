"""Tests for the sampling baselines."""

from __future__ import annotations

import statistics

import pytest

from repro.errors import ConfigurationError
from repro.exact import (
    EdgeReservoirBaseline,
    ExactOracle,
    NeighborReservoirBaseline,
)
from repro.graph import from_pairs
from repro.graph.generators import erdos_renyi
from tests.conftest import TOY_EDGES


def loaded(predictor, edges=TOY_EDGES):
    predictor.process(from_pairs(edges))
    return predictor


class TestEdgeReservoirExactRegime:
    """With capacity >= stream length the subgraph is the whole graph
    and every estimate must be exact."""

    def test_matches_oracle_when_nothing_sampled_away(self, toy_oracle):
        baseline = loaded(EdgeReservoirBaseline(capacity=100, seed=1))
        for u, v in ((0, 1), (2, 4), (0, 3), (2, 3)):
            for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                assert baseline.score(u, v, measure) == pytest.approx(
                    toy_oracle.score(u, v, measure)
                )

    def test_degree_tracking(self):
        baseline = loaded(EdgeReservoirBaseline(capacity=100, seed=1))
        assert baseline.degree(0) == 3
        assert baseline.degree(999) == 0
        assert baseline.vertex_count == 5

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            EdgeReservoirBaseline(capacity=0)

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            EdgeReservoirBaseline(capacity=5).update(1, 1)


class TestEdgeReservoirSampledRegime:
    def test_subgraph_respects_capacity(self):
        edges = erdos_renyi(200, 2000, seed=3)
        baseline = EdgeReservoirBaseline(capacity=300, seed=3)
        baseline.process(edges)
        assert baseline._subgraph.edge_count <= 300
        assert baseline.sampling_probability() == pytest.approx(300 / 2000)

    def test_ht_correction_is_roughly_unbiased(self):
        # Average the corrected CN estimate over many reservoir seeds;
        # it should center on the true value.
        edges = erdos_renyi(100, 2000, seed=5)
        oracle = ExactOracle()
        oracle.process(edges)
        u, v = 0, 1
        truth = oracle.score(u, v, "common_neighbors")
        assert truth > 0  # dense ER graph: CN(0,1) is surely positive
        estimates = []
        for seed in range(60):
            baseline = EdgeReservoirBaseline(capacity=1000, seed=seed)
            baseline.process(edges)
            estimates.append(baseline.score(u, v, "common_neighbors"))
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.35)

    def test_cold_vertices_score_zero(self):
        baseline = loaded(EdgeReservoirBaseline(capacity=10, seed=0))
        assert baseline.score(0, 999, "jaccard") == 0.0

    def test_nominal_bytes_formula(self):
        baseline = loaded(EdgeReservoirBaseline(capacity=10, seed=0))
        assert baseline.nominal_bytes() == 8 * 10 + 8 * 5


class TestNeighborReservoir:
    def test_exact_when_sample_covers_neighborhoods(self, toy_oracle):
        baseline = loaded(NeighborReservoirBaseline(sample_size=10, seed=2))
        for u, v in ((0, 1), (2, 4), (2, 3)):
            for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                assert baseline.score(u, v, measure) == pytest.approx(
                    toy_oracle.score(u, v, measure)
                )

    def test_ht_correction_is_roughly_unbiased_under_sampling(self):
        edges = erdos_renyi(100, 2000, seed=7)
        oracle = ExactOracle()
        oracle.process(edges)
        u, v = 0, 1
        truth = oracle.score(u, v, "common_neighbors")
        estimates = []
        for seed in range(80):
            baseline = NeighborReservoirBaseline(sample_size=10, seed=seed)
            baseline.process(edges)
            estimates.append(baseline.score(u, v, "common_neighbors"))
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.35)

    def test_sample_size_validation(self):
        with pytest.raises(ConfigurationError):
            NeighborReservoirBaseline(sample_size=0)

    def test_degree_product_uses_exact_degrees(self):
        baseline = loaded(NeighborReservoirBaseline(sample_size=1, seed=0))
        assert baseline.score(0, 4, "preferential_attachment") == 9.0

    def test_nominal_bytes_counts_held_samples(self):
        baseline = loaded(NeighborReservoirBaseline(sample_size=2, seed=0))
        # 5 vertices, degrees (3,2,2,2,3) -> held = min(deg,2) per vertex = 10.
        assert baseline.nominal_bytes() == 8 * 10 + 8 * 5

    def test_jaccard_clamped_to_unit_range(self):
        edges = erdos_renyi(50, 600, seed=9)
        baseline = NeighborReservoirBaseline(sample_size=3, seed=9)
        baseline.process(edges)
        oracle = ExactOracle()
        oracle.process(edges)
        for u in range(0, 20, 2):
            for v in range(1, 20, 2):
                score = baseline.score(u, v, "jaccard")
                assert 0.0 <= score <= 1.0
