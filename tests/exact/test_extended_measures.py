"""Tests for the extended overlap-ratio measures (hub-promoted,
hub-depressed, Leicht–Holme–Newman) — exact values and sketch support.

Toy graph (tests/conftest.py): N(0)={2,3,4} N(1)={2,4}; pair (0,1) has
|∩| = 2, degrees 3 and 2.
"""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.exact.measures import exact_score, measure_by_name
from repro.graph import from_pairs
from tests.conftest import TOY_EDGES


class TestExactValues:
    def test_hub_promoted(self, toy_graph):
        measure = measure_by_name("hub_promoted")
        assert exact_score(toy_graph, 0, 1, measure) == pytest.approx(2 / 2)

    def test_hub_depressed(self, toy_graph):
        measure = measure_by_name("hub_depressed")
        assert exact_score(toy_graph, 0, 1, measure) == pytest.approx(2 / 3)

    def test_leicht_holme_newman(self, toy_graph):
        measure = measure_by_name("leicht_holme_newman")
        assert exact_score(toy_graph, 0, 1, measure) == pytest.approx(2 / 6)

    def test_ordering_relations(self, toy_graph):
        # HP >= Jaccard >= HD always (denominators: min <= union <= max
        # ... union >= max, so HD >= J; and HP >= J since min <= union).
        hp = exact_score(toy_graph, 0, 1, measure_by_name("hub_promoted"))
        hd = exact_score(toy_graph, 0, 1, measure_by_name("hub_depressed"))
        j = exact_score(toy_graph, 0, 1, measure_by_name("jaccard"))
        assert hp >= hd
        assert hp >= j

    def test_zero_on_isolated(self, toy_graph):
        toy_graph.add_vertex(50)
        for name in ("hub_promoted", "hub_depressed", "leicht_holme_newman"):
            assert exact_score(toy_graph, 0, 50, measure_by_name(name)) == 0.0


class TestSketchSupport:
    def test_predictor_answers_extended_measures(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=1))
        predictor.process(from_pairs(TOY_EDGES))
        for name in ("hub_promoted", "hub_depressed", "leicht_holme_newman"):
            score = predictor.score(0, 1, name)
            assert score >= 0.0

    def test_identical_neighborhoods_hub_promoted_is_one(self):
        edges = [(0, 2), (0, 3), (1, 2), (1, 3)]
        predictor = MinHashLinkPredictor(SketchConfig(k=64, seed=2))
        predictor.process(from_pairs(edges))
        assert predictor.score(0, 1, "hub_promoted") == pytest.approx(1.0)

    def test_cold_vertices_zero(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=3))
        predictor.process(from_pairs(TOY_EDGES))
        for name in ("hub_promoted", "hub_depressed", "leicht_holme_newman"):
            assert predictor.score(0, 999, name) == 0.0
