"""Tests for the exact oracle (the reference LinkPredictor)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exact import ExactOracle, adamic_adar, jaccard
from repro.graph import from_pairs
from tests.conftest import TOY_EDGES


class TestProtocol:
    def test_matches_direct_measure_functions(self, toy_oracle, toy_graph):
        for u, v in ((0, 1), (2, 4), (0, 3)):
            assert toy_oracle.score(u, v, "jaccard") == jaccard(toy_graph, u, v)
            assert toy_oracle.score(u, v, "adamic_adar") == adamic_adar(
                toy_graph, u, v
            )

    def test_cold_vertices_score_zero(self, toy_oracle):
        assert toy_oracle.score(0, 12345, "jaccard") == 0.0
        assert toy_oracle.score(777, 888, "common_neighbors") == 0.0

    def test_unknown_measure_raises(self, toy_oracle):
        with pytest.raises(ConfigurationError):
            toy_oracle.score(0, 1, "page_rank")

    def test_degree(self, toy_oracle):
        assert toy_oracle.degree(0) == 3
        assert toy_oracle.degree(999) == 0

    def test_vertex_count(self, toy_oracle):
        assert toy_oracle.vertex_count == 5

    def test_duplicate_updates_collapse(self):
        oracle = ExactOracle()
        oracle.process(from_pairs(TOY_EDGES + TOY_EDGES))
        assert oracle.graph.edge_count == len(TOY_EDGES)
        assert oracle.degree(0) == 3

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            ExactOracle().update(1, 1)

    def test_nominal_bytes_tracks_graph(self, toy_oracle):
        assert toy_oracle.nominal_bytes() == toy_oracle.graph.nominal_bytes()


class TestConveniences:
    def test_scores_batch(self, toy_oracle):
        result = toy_oracle.scores(0, 1, ["jaccard", "common_neighbors"])
        assert result["common_neighbors"] == 2.0

    def test_rank_candidates_descending_and_deterministic(self, toy_oracle):
        candidates = [(0, 1), (2, 3), (0, 3)]
        ranked = toy_oracle.rank_candidates(candidates, "common_neighbors")
        # (2,3) and (0,3) tie at CN=1; ties break on the pair itself.
        assert [pair for pair, _ in ranked] == [(0, 1), (0, 3), (2, 3)]

    def test_rank_candidates_top_truncation(self, toy_oracle):
        ranked = toy_oracle.rank_candidates([(0, 1), (2, 3)], "jaccard", top=1)
        assert len(ranked) == 1
        assert ranked[0][0] == (0, 1)

    def test_process_returns_count(self):
        oracle = ExactOracle()
        assert oracle.process(from_pairs(TOY_EDGES)) == len(TOY_EDGES)
