"""Tests for exact neighborhood measures (hand-computed ground truth).

The toy graph (see tests/conftest.py) has:
N(0)={2,3,4} N(1)={2,4} N(2)={0,1} N(3)={0,4} N(4)={0,1,3};
degrees d = (3, 2, 2, 2, 3).
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.exact.measures import (
    ADAMIC_ADAR,
    COMMON_NEIGHBORS,
    JACCARD,
    MEASURES,
    Measure,
    adamic_adar,
    adamic_adar_weight,
    common_neighbors,
    cosine,
    exact_score,
    jaccard,
    measure_by_name,
    preferential_attachment,
    resource_allocation,
    resource_allocation_weight,
    sorensen,
    witness_sum,
)


class TestHandComputedValues:
    def test_common_neighbors(self, toy_graph):
        assert common_neighbors(toy_graph, 0, 1) == 2
        assert common_neighbors(toy_graph, 2, 4) == 2
        assert common_neighbors(toy_graph, 0, 3) == 1
        assert common_neighbors(toy_graph, 2, 3) == 1

    def test_jaccard(self, toy_graph):
        assert jaccard(toy_graph, 0, 1) == pytest.approx(2 / 3)
        assert jaccard(toy_graph, 2, 4) == pytest.approx(2 / 3)
        assert jaccard(toy_graph, 0, 3) == pytest.approx(1 / 4)
        assert jaccard(toy_graph, 2, 3) == pytest.approx(1 / 3)

    def test_adamic_adar(self, toy_graph):
        # Witnesses of (0,1) are {2,4} with degrees 2 and 3.
        expected = 1 / math.log(2) + 1 / math.log(3)
        assert adamic_adar(toy_graph, 0, 1) == pytest.approx(expected)
        assert adamic_adar(toy_graph, 0, 3) == pytest.approx(1 / math.log(3))

    def test_resource_allocation(self, toy_graph):
        assert resource_allocation(toy_graph, 0, 1) == pytest.approx(1 / 2 + 1 / 3)

    def test_preferential_attachment(self, toy_graph):
        assert preferential_attachment(toy_graph, 0, 1) == 6.0
        assert preferential_attachment(toy_graph, 0, 4) == 9.0

    def test_cosine(self, toy_graph):
        assert cosine(toy_graph, 0, 1) == pytest.approx(2 / math.sqrt(6))

    def test_sorensen(self, toy_graph):
        assert sorensen(toy_graph, 0, 1) == pytest.approx(4 / 5)

    def test_symmetry_of_all_measures(self, toy_graph):
        for measure in MEASURES.values():
            assert exact_score(toy_graph, 0, 1, measure) == exact_score(
                toy_graph, 1, 0, measure
            )


class TestEdgeCases:
    def test_unknown_vertices_score_zero(self, toy_graph):
        assert common_neighbors(toy_graph, 0, 99) == 0
        assert jaccard(toy_graph, 98, 99) == 0.0
        assert adamic_adar(toy_graph, 0, 99) == 0.0
        assert preferential_attachment(toy_graph, 0, 99) == 0.0

    def test_isolated_vertex_scores_zero(self, toy_graph):
        toy_graph.add_vertex(50)
        assert jaccard(toy_graph, 0, 50) == 0.0
        assert cosine(toy_graph, 0, 50) == 0.0
        assert sorensen(toy_graph, 50, 50) == 0.0

    def test_witness_sum_with_custom_weight(self, toy_graph):
        squared = witness_sum(toy_graph, 0, 1, lambda d: float(d * d))
        assert squared == pytest.approx(4 + 9)  # degrees 2 and 3


class TestWeights:
    def test_adamic_adar_weight_clamps_below_two(self):
        assert adamic_adar_weight(0) == adamic_adar_weight(2)
        assert adamic_adar_weight(1) == pytest.approx(1 / math.log(2))

    def test_adamic_adar_weight_decreasing(self):
        weights = [adamic_adar_weight(d) for d in range(2, 100)]
        assert weights == sorted(weights, reverse=True)

    def test_resource_allocation_weight(self):
        assert resource_allocation_weight(4) == 0.25
        assert resource_allocation_weight(0) == 1.0  # clamped


class TestRegistry:
    def test_all_paper_measures_registered(self):
        for name in ("jaccard", "common_neighbors", "adamic_adar"):
            assert measure_by_name(name).name == name

    def test_unknown_measure_lists_known(self):
        with pytest.raises(ConfigurationError, match="adamic_adar"):
            measure_by_name("katz")

    def test_measure_kind_validation(self):
        with pytest.raises(ConfigurationError):
            Measure("bad", "mystery_kind")
        with pytest.raises(ConfigurationError):
            Measure("needs_weight", "witness_sum")
        with pytest.raises(ConfigurationError):
            Measure("needs_ratio", "overlap_ratio")

    def test_exact_score_dispatches_all_kinds(self, toy_graph):
        assert exact_score(toy_graph, 0, 1, JACCARD) == pytest.approx(2 / 3)
        assert exact_score(toy_graph, 0, 1, COMMON_NEIGHBORS) == 2.0
        assert exact_score(toy_graph, 0, 1, ADAMIC_ADAR) == pytest.approx(
            adamic_adar(toy_graph, 0, 1)
        )
