"""Property-based tests (hypothesis) for the sketch invariants.

These pin the *algebraic* laws the estimator correctness arguments rely
on — merge semantics, idempotency, order-insensitivity, one-sidedness —
over adversarial inputs, complementing the statistical tests elsewhere.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import HashBank
from repro.sketches import BloomFilter, BottomK, CountMin, HyperLogLog, KMinHash, Reservoir

keys = st.integers(min_value=0, max_value=2**40)
key_lists = st.lists(keys, max_size=60)
small_k = st.integers(min_value=2, max_value=32)

_BANK = HashBank(seed=0xABCD, size=24)


def minhash_of(items):
    s = KMinHash(_BANK)
    s.update_many(items)
    return s


class TestMinHashLaws:
    @given(key_lists)
    def test_order_insensitive(self, items):
        assert minhash_of(items) == minhash_of(list(reversed(items)))

    @given(key_lists)
    def test_duplicate_insensitive(self, items):
        assert minhash_of(items) == minhash_of(items + items)

    @given(key_lists, key_lists)
    def test_merge_equals_union_pass(self, a, b):
        assert minhash_of(a).merge(minhash_of(b)) == minhash_of(a + b)

    @given(key_lists, key_lists, key_lists)
    def test_merge_associative(self, a, b, c):
        x, y, z = minhash_of(a), minhash_of(b), minhash_of(c)
        assert x.merge(y).merge(z) == x.merge(y.merge(z))

    @given(key_lists, key_lists)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        sa, sb = minhash_of(a), minhash_of(b)
        j = sa.jaccard(sb)
        assert 0.0 <= j <= 1.0
        assert j == sb.jaccard(sa)

    @given(st.lists(keys, min_size=1, max_size=60))
    def test_self_similarity_is_one(self, items):
        s = minhash_of(items)
        assert s.jaccard(s) == 1.0

    @given(key_lists, key_lists)
    def test_matching_witnesses_within_union(self, a, b):
        sa, sb = minhash_of(a), minhash_of(b)
        union = set(a) | set(b)
        for w in sa.matching_witnesses(sb):
            assert int(w) in union


class TestBottomKLaws:
    @given(key_lists, small_k)
    def test_distinct_count_exact_below_capacity(self, items, k):
        s = BottomK(k, seed=5)
        s.update_many(items)
        distinct = len(set(items))
        if distinct < k:
            assert s.distinct_count() == float(distinct)

    @given(key_lists, key_lists, small_k)
    def test_merge_values_equal_union_pass(self, a, b, k):
        sa, sb = BottomK(k, 7), BottomK(k, 7)
        sa.update_many(a)
        sb.update_many(b)
        combined = BottomK(k, 7)
        combined.update_many(a + b)
        assert sa.merge(sb).values() == combined.values()

    @given(key_lists, small_k)
    def test_holds_at_most_k(self, items, k):
        s = BottomK(k, 3)
        s.update_many(items)
        assert len(s.values()) <= k


class TestHyperLogLogLaws:
    @given(key_lists, key_lists)
    def test_merge_commutative_and_dominating(self, a, b):
        ha, hb = HyperLogLog(8, 1), HyperLogLog(8, 1)
        ha.update_many(a)
        hb.update_many(b)
        merged = ha.merge(hb)
        assert (merged.registers == hb.merge(ha).registers).all()
        assert (merged.registers >= ha.registers).all()
        assert (merged.registers >= hb.registers).all()

    @given(key_lists)
    def test_estimate_nonnegative(self, items):
        h = HyperLogLog(6, 2)
        h.update_many(items)
        assert h.cardinality() >= 0.0


class TestCountMinLaws:
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    def test_one_sided_error(self, items):
        sketch = CountMin(width=16, depth=3, seed=1)
        truth = {}
        for item in items:
            truth[item] = truth.get(item, 0) + 1
            sketch.update(item)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=150))
    def test_conservative_dominated_by_plain(self, items):
        plain = CountMin(width=16, depth=3, seed=2, conservative=False)
        conservative = CountMin(width=16, depth=3, seed=2, conservative=True)
        for item in items:
            plain.update(item)
            conservative.update(item)
        for item in set(items):
            assert conservative.estimate(item) <= plain.estimate(item)


class TestReservoirLaws:
    @given(st.lists(st.integers(), max_size=300), st.integers(1, 20), st.integers(0, 100))
    def test_size_and_subset_invariants(self, items, capacity, seed):
        r = Reservoir(capacity, seed)
        r.offer_many(items)
        sample = r.sample()
        assert len(sample) == min(capacity, len(items))
        assert all(item in items for item in sample)
        assert r.seen == len(items)


class TestBloomLaws:
    @settings(max_examples=40)
    @given(key_lists, key_lists)
    def test_no_false_negatives_ever(self, inserted, _probed):
        bf = BloomFilter(bits=512, hashes=3, seed=9)
        bf.update_many(inserted)
        assert all(key in bf for key in inserted)

    @settings(max_examples=40)
    @given(key_lists, key_lists)
    def test_merge_superset_of_both(self, a, b):
        fa = BloomFilter(bits=512, hashes=3, seed=9)
        fb = BloomFilter(bits=512, hashes=3, seed=9)
        fa.update_many(a)
        fb.update_many(b)
        merged = fa.merge(fb)
        assert all(key in merged for key in a + b)
