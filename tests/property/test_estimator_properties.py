"""Property-based tests for the estimator algebra and graph laws."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimators import (
    clamp_intersection,
    common_neighbors_from_jaccard,
    union_size_from_jaccard,
)
from repro.exact.measures import exact_score, MEASURES
from repro.graph import AdjacencyGraph
from repro.graph.stream import edge_key

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
degree = st.integers(min_value=0, max_value=10_000)

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda p: p[0] != p[1]),
    max_size=80,
)


class TestEstimatorAlgebra:
    @given(unit, degree, degree)
    def test_cn_estimate_always_feasible(self, j, du, dv):
        cn = common_neighbors_from_jaccard(j, du, dv)
        assert 0.0 <= cn <= min(du, dv)

    @given(unit, degree, degree)
    def test_union_estimate_bounds(self, j, du, dv):
        union = union_size_from_jaccard(j, du, dv)
        assert 0.0 <= union <= du + dv
        # A union can never be smaller than the larger side... unless
        # the (noisy) Ĵ overshoots; the bound that *always* holds is
        # union >= (du+dv)/2.
        assert union >= (du + dv) / 2.0 or du + dv == 0

    @given(unit, degree, degree)
    def test_identity_cn_plus_union(self, j, du, dv):
        # CN + union == du + dv by construction (before clamping).
        union = union_size_from_jaccard(j, du, dv)
        cn_unclamped = j * (du + dv) / (1 + j) if j > 0 else 0.0
        assert cn_unclamped + union == pytest.approx(du + dv, rel=1e-9, abs=1e-9)

    @given(st.floats(-100, 100, allow_nan=False), degree, degree)
    def test_clamp_idempotent(self, value, du, dv):
        once = clamp_intersection(value, du, dv)
        assert clamp_intersection(once, du, dv) == once


class TestGraphLaws:
    @given(edge_lists)
    def test_adjacency_symmetric(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        for u, v in graph.edges():
            assert graph.has_edge(v, u)
            assert u in graph.neighbors(v)
            assert v in graph.neighbors(u)

    @given(edge_lists)
    def test_handshake_lemma(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        degree_sum = sum(graph.degree(v) for v in graph.vertices())
        assert degree_sum == 2 * graph.edge_count

    @given(edge_lists)
    def test_measures_symmetric_and_nonnegative(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        vertices = list(graph.vertices())[:6]
        for u in vertices:
            for v in vertices:
                if u == v:
                    continue
                for measure in MEASURES.values():
                    score = exact_score(graph, u, v, measure)
                    assert score >= 0.0
                    assert score == exact_score(graph, v, u, measure)

    @given(edge_lists)
    def test_jaccard_at_most_one(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        vertices = list(graph.vertices())[:6]
        for u in vertices:
            for v in vertices:
                if u != v:
                    assert exact_score(graph, u, v, MEASURES["jaccard"]) <= 1.0

    @given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
    def test_edge_key_symmetric(self, u, v):
        assert edge_key(u, v) == edge_key(v, u)

    @given(
        st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)),
        st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)),
    )
    def test_edge_key_injective_on_canonical_pairs(self, p, q):
        pc = (min(p), max(p))
        qc = (min(q), max(q))
        if pc != qc:
            assert edge_key(*pc) != edge_key(*qc)
