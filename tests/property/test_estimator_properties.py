"""Property-based tests for the estimator algebra and graph laws."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimators import (
    clamp_intersection,
    common_neighbors_from_jaccard,
    union_size_from_jaccard,
)
from repro.exact.measures import exact_score, MEASURES
from repro.graph import AdjacencyGraph
from repro.graph.stream import edge_key

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
degree = st.integers(min_value=0, max_value=10_000)

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda p: p[0] != p[1]),
    max_size=80,
)


class TestEstimatorAlgebra:
    @given(unit, degree, degree)
    def test_cn_estimate_always_feasible(self, j, du, dv):
        cn = common_neighbors_from_jaccard(j, du, dv)
        assert 0.0 <= cn <= min(du, dv)

    @given(unit, degree, degree)
    def test_union_estimate_bounds(self, j, du, dv):
        union = union_size_from_jaccard(j, du, dv)
        assert 0.0 <= union <= du + dv
        # A union can never be smaller than the larger side... unless
        # the (noisy) Ĵ overshoots; the bound that *always* holds is
        # union >= (du+dv)/2.
        assert union >= (du + dv) / 2.0 or du + dv == 0

    @given(unit, degree, degree)
    def test_identity_cn_plus_union(self, j, du, dv):
        # CN + union == du + dv by construction (before clamping).
        union = union_size_from_jaccard(j, du, dv)
        cn_unclamped = j * (du + dv) / (1 + j) if j > 0 else 0.0
        assert cn_unclamped + union == pytest.approx(du + dv, rel=1e-9, abs=1e-9)

    @given(st.floats(-100, 100, allow_nan=False), degree, degree)
    def test_clamp_idempotent(self, value, du, dv):
        once = clamp_intersection(value, du, dv)
        assert clamp_intersection(once, du, dv) == once

    @given(degree, degree)
    def test_union_at_jaccard_zero_is_degree_sum(self, du, dv):
        # Ĵ == 0 means no observed overlap: the estimated union is the
        # whole degree sum, finite, no division surprises.
        assert union_size_from_jaccard(0.0, du, dv) == float(du + dv)

    @given(unit)
    def test_union_of_empty_pair_is_zero(self, j):
        assert union_size_from_jaccard(j, 0, 0) == 0.0

    @given(st.floats(-1e6, 1e6, allow_nan=False), degree, degree)
    def test_clamp_output_always_feasible(self, value, du, dv):
        clamped = clamp_intersection(value, du, dv)
        assert 0.0 <= clamped <= min(du, dv)

    @given(st.floats(0, 1e6, allow_nan=False), degree, st.integers(1, 1000))
    def test_clamp_under_countmin_overestimates(self, value, true_degree, slack):
        # Count-Min never under-estimates: the tracker may report
        # degree + slack.  An inflated ceiling must widen (or keep) the
        # clamp window, never invert it below the true-feasible value.
        honest = clamp_intersection(value, true_degree, true_degree)
        inflated = clamp_intersection(
            value, true_degree + slack, true_degree + slack
        )
        assert inflated >= honest
        assert inflated <= true_degree + slack


class TestCountMinFeasibility:
    """End-to-end feasibility under approximate degrees: with a tiny
    (collision-heavy) Count-Min table the tracked degrees over-estimate,
    yet every overlap estimate must stay inside the feasible interval
    ``[0, min(du, dv)]`` of the *tracked* degrees."""

    @given(edge_lists, st.integers(2, 64))
    def test_cn_estimates_feasible_under_countmin(self, pairs, width):
        from repro.core import MinHashLinkPredictor, SketchConfig

        predictor = MinHashLinkPredictor(
            SketchConfig(
                k=16, seed=1, degree_mode="countmin",
                countmin_width=width, countmin_depth=2,
            )
        )
        for u, v in pairs:
            predictor.update(u, v)
        vertices = sorted({x for pair in pairs for x in pair})[:8]
        for u in vertices:
            for v in vertices:
                if u == v:
                    continue
                ceiling = min(predictor.degree(u), predictor.degree(v))
                cn = predictor.score(u, v, "common_neighbors")
                assert 0.0 <= cn <= ceiling
                assert predictor.score(u, v, "jaccard") <= 1.0


class TestGraphLaws:
    @given(edge_lists)
    def test_adjacency_symmetric(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        for u, v in graph.edges():
            assert graph.has_edge(v, u)
            assert u in graph.neighbors(v)
            assert v in graph.neighbors(u)

    @given(edge_lists)
    def test_handshake_lemma(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        degree_sum = sum(graph.degree(v) for v in graph.vertices())
        assert degree_sum == 2 * graph.edge_count

    @given(edge_lists)
    def test_measures_symmetric_and_nonnegative(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        vertices = list(graph.vertices())[:6]
        for u in vertices:
            for v in vertices:
                if u == v:
                    continue
                for measure in MEASURES.values():
                    score = exact_score(graph, u, v, measure)
                    assert score >= 0.0
                    assert score == exact_score(graph, v, u, measure)

    @given(edge_lists)
    def test_jaccard_at_most_one(self, pairs):
        graph = AdjacencyGraph.from_edges(pairs)
        vertices = list(graph.vertices())[:6]
        for u in vertices:
            for v in vertices:
                if u != v:
                    assert exact_score(graph, u, v, MEASURES["jaccard"]) <= 1.0

    @given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
    def test_edge_key_symmetric(self, u, v):
        assert edge_key(u, v) == edge_key(v, u)

    @given(
        st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)),
        st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)),
    )
    def test_edge_key_injective_on_canonical_pairs(self, p, q):
        pc = (min(p), max(p))
        qc = (min(q), max(q))
        if pc != qc:
            assert edge_key(*pc) != edge_key(*qc)
