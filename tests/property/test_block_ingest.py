"""Property-based bit-identity pins for the block-ingest kernel.

The entire value of :mod:`repro.core.block` rests on one law:

    ``predictor.update_block(us, vs)`` leaves *exactly* the state that
    ``for u, v in zip(us, vs): predictor.update(u, v)`` would have —
    sketch values, witnesses, update counts, and degrees, bit for bit.

Hypothesis drives the adversarial corners the scalar semantics make
subtle: duplicate edges inside one batch (idempotent slots, counted
arrivals), hash ties at tiny ``k`` over tiny key universes (the
earliest-arrival witness rule), batches straddling seen and unseen
vertices, pre-seeded predictors (equal batch minima must *not* steal
the pre-batch witness), empty batches, and both degree modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError
from repro.hashing import HashBank

# Tiny vertex universe: duplicates and shared endpoints are the norm,
# and at k=2..4 equal slot minima across keys actually happen.
edge_batches = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda p: p[0] != p[1]),
    max_size=50,
)


def _state(predictor):
    """Every bit of predictor state the scalar law quantifies over."""
    sketches = {}
    for vertex, sketch in predictor._sketches.items():
        sketches[vertex] = (
            sketch.values.tobytes(),
            None if sketch.witnesses is None else sketch.witnesses.tobytes(),
            sketch.update_count,
        )
    degrees = {v: predictor.degree(v) for v in range(12)}
    return sketches, degrees


def _pair(config, prefix, batch):
    """Two predictors with identical scalar history; one then takes the
    batch scalar, the other through the kernel."""
    scalar = MinHashLinkPredictor(config)
    block = MinHashLinkPredictor(config)
    for u, v in prefix:
        scalar.update(u, v)
        block.update(u, v)
    for u, v in batch:
        scalar.update(u, v)
    applied = block.update_block(
        [u for u, _ in batch], [v for _, v in batch]
    )
    assert applied == len(batch)
    return scalar, block


class TestBlockEqualsSequential:
    @settings(max_examples=60, deadline=None)
    @given(edge_batches, edge_batches, st.sampled_from([2, 3, 16]))
    def test_fresh_and_preseeded(self, prefix, batch, k):
        scalar, block = _pair(SketchConfig(k=k, seed=3), prefix, batch)
        assert _state(scalar) == _state(block)

    @settings(max_examples=40, deadline=None)
    @given(edge_batches, st.integers(0, 2**31 - 1))
    def test_seed_invariance(self, batch, seed):
        scalar, block = _pair(SketchConfig(k=4, seed=seed), [], batch)
        assert _state(scalar) == _state(block)

    @settings(max_examples=40, deadline=None)
    @given(edge_batches, edge_batches)
    def test_without_witness_tracking(self, prefix, batch):
        config = SketchConfig(k=3, seed=7, track_witnesses=False)
        scalar, block = _pair(config, prefix, batch)
        assert _state(scalar) == _state(block)

    @settings(max_examples=30, deadline=None)
    @given(edge_batches, edge_batches)
    def test_countmin_degree_mode(self, prefix, batch):
        config = SketchConfig(k=3, seed=5, degree_mode="countmin")
        scalar, block = _pair(config, prefix, batch)
        assert _state(scalar) == _state(block)

    @settings(max_examples=30, deadline=None)
    @given(edge_batches, st.lists(st.integers(1, 7), min_size=1, max_size=4))
    def test_any_batch_split_is_equivalent(self, batch, splits):
        """Chopping one stream into arbitrary update_block spans cannot
        change the result (the StreamRunner/worker batching law)."""
        whole, chopped = _pair(SketchConfig(k=3, seed=11), [], batch)
        resplit = MinHashLinkPredictor(SketchConfig(k=3, seed=11))
        position = 0
        while position < len(batch):
            size = splits[position % len(splits)]
            span = batch[position : position + size]
            resplit.update_block([u for u, _ in span], [v for _, v in span])
            position += size
        assert _state(whole) == _state(resplit)

    def test_empty_batch_is_a_noop(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=4, seed=1))
        predictor.update(1, 2)
        before = _state(predictor)
        assert predictor.update_block([], []) == 0
        assert predictor.update_block(np.array([]), np.array([])) == 0
        assert _state(predictor) == before


class TestBatchRejection:
    """A rejected batch must leave the predictor untouched."""

    @pytest.mark.parametrize(
        "us, vs",
        [
            ([1, -2, 3], [4, 5, 6]),  # negative id mid-batch
            ([1, 2], [4, 2]),  # self-loop mid-batch
            ([1, 2, 3], [4, 5]),  # length mismatch
            ([[1, 2]], [[3, 4]]),  # wrong rank
            (["a", "b"], [1, 2]),  # non-integer
        ],
    )
    def test_rejects_before_any_mutation(self, us, vs):
        predictor = MinHashLinkPredictor(SketchConfig(k=4, seed=2))
        predictor.update(1, 4)
        before = _state(predictor)
        with pytest.raises(ConfigurationError):
            predictor.update_block(us, vs)
        assert _state(predictor) == before

    def test_error_names_first_offending_index(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=4, seed=2))
        with pytest.raises(ConfigurationError, match="batch index 1"):
            predictor.update_block([1, 2, 3], [4, -1, -6])


class TestValuesBlock:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 2**63 - 1), max_size=30),
        st.integers(0, 2**31 - 1),
        st.sampled_from([1, 3, 17]),
    )
    def test_matches_per_key_values(self, keys, seed, k):
        bank = HashBank(seed, k)
        block = bank.values_block(np.array(keys, dtype=np.uint64))
        assert block.shape == (len(keys), k)
        for row, key in enumerate(keys):
            assert np.array_equal(block[row], bank.values(key))

    def test_negative_keys_wrap(self):
        bank = HashBank(9, 5)
        wrapped = bank.values_block(np.array([-1, -2], dtype=np.int64))
        direct = bank.values_block(
            np.array([2**64 - 1, 2**64 - 2], dtype=np.uint64)
        )
        assert np.array_equal(wrapped, direct)

    def test_rejects_non_1d(self):
        with pytest.raises(ConfigurationError):
            HashBank(0, 2).values_block(np.zeros((2, 2), dtype=np.uint64))
