"""Property tests for the merge algebra behind sharded ingestion.

Parallel ingestion is correct *iff* every summary it shards over forms
a commutative monoid under ``merge`` whose fold over any partition of a
stream equals the serial summary.  These tests pin that algebra for
each mergeable sketch (k-mins MinHash, bottom-k, HyperLogLog, Bloom,
non-conservative Count-Min) and for the full predictor, plus the
designed *failure* of the algebra: conservative Count-Min is not
linear, and every layer must refuse to merge it rather than silently
corrupt counts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.degrees import CountMinDegrees, ExactDegrees
from repro.core.predictor import merge_shards
from repro.errors import ConfigurationError
from repro.hashing import HashBank
from repro.sketches import BloomFilter, BottomK, CountMin, HyperLogLog, KMinHash

# Keys tagged with a shard in [0, 4]: one drawn list defines both the
# serial stream (tags ignored) and its partition into up to 5 shards.
sharded_keys = st.lists(
    st.tuples(st.integers(0, 5_000), st.integers(0, 4)), max_size=80
)

sharded_edges = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25), st.integers(0, 4)).filter(
        lambda t: t[0] != t[1]
    ),
    max_size=80,
)


def _fresh(factory_name: str):
    if factory_name == "kminhash":
        return KMinHash(HashBank(7, 16))
    if factory_name == "bottomk":
        return BottomK(k=16, seed=7)
    if factory_name == "hll":
        return HyperLogLog(precision=6, seed=7)
    if factory_name == "bloom":
        return BloomFilter(bits=256, hashes=3, seed=7)
    if factory_name == "countmin":
        return CountMin(width=64, depth=3, seed=7, conservative=False)
    raise AssertionError(factory_name)


def _state(sketch):
    """Comparable full state per sketch kind."""
    if isinstance(sketch, KMinHash):
        return (sketch.values.tolist(), sketch.witnesses.tolist(), sketch.update_count)
    if isinstance(sketch, BottomK):
        return sorted(sketch.values())
    if isinstance(sketch, HyperLogLog):
        return sketch.registers.tolist()
    if isinstance(sketch, BloomFilter):
        return (sketch._array.tolist(), sketch.insertions)
    if isinstance(sketch, CountMin):
        return (sketch.table.tolist(), sketch.total)
    raise AssertionError(type(sketch))


SKETCH_KINDS = ["kminhash", "bottomk", "hll", "bloom", "countmin"]


@pytest.mark.parametrize("kind", SKETCH_KINDS)
class TestMergeIsAPartitionFold:
    @settings(max_examples=40)
    @given(tagged=sharded_keys)
    def test_any_partition_merges_to_the_serial_sketch(self, kind, tagged):
        serial = _fresh(kind)
        shards = [_fresh(kind) for _ in range(5)]
        for key, shard in tagged:
            serial.update(key)
            shards[shard].update(key)
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert _state(merged) == _state(serial)

    @settings(max_examples=25)
    @given(tagged=sharded_keys)
    def test_merge_is_commutative(self, kind, tagged):
        a, b = _fresh(kind), _fresh(kind)
        for key, shard in tagged:
            (a if shard % 2 else b).update(key)
        assert _state(a.merge(b)) == _state(b.merge(a))

    @settings(max_examples=25)
    @given(tagged=sharded_keys)
    def test_merge_is_associative(self, kind, tagged):
        a, b, c = _fresh(kind), _fresh(kind), _fresh(kind)
        for key, shard in tagged:
            (a, b, c)[shard % 3].update(key)
        assert _state(a.merge(b).merge(c)) == _state(a.merge(b.merge(c)))

    @settings(max_examples=25)
    @given(tagged=sharded_keys)
    def test_update_order_is_irrelevant(self, kind, tagged):
        forward, backward = _fresh(kind), _fresh(kind)
        for key, _ in tagged:
            forward.update(key)
        for key, _ in reversed(tagged):
            backward.update(key)
        assert _state(forward) == _state(backward)


class TestPredictorPartitionFold:
    @settings(max_examples=25, deadline=None)
    @given(tagged=sharded_edges)
    def test_random_partition_merges_bit_identical_to_serial(self, tagged):
        config = SketchConfig(k=16, seed=3, degree_mode="exact")
        serial = MinHashLinkPredictor(config)
        shards = [MinHashLinkPredictor(config) for _ in range(5)]
        for u, v, shard in tagged:
            serial.update(u, v)
            shards[shard].update(u, v)
        merged = merge_shards(shards)
        ours, theirs = merged.export_arrays(), serial.export_arrays()
        for name in ("vertex_ids", "values", "witnesses", "update_counts", "degrees"):
            assert np.array_equal(getattr(ours, name), getattr(theirs, name)), name
        assert merged.nominal_bytes() == serial.nominal_bytes()


class TestConservativeCountMinRefusesToMerge:
    """The one summary that is *not* a monoid must fail loudly everywhere."""

    def test_sketch_merge_raises(self):
        a = CountMin(width=32, depth=2, seed=1, conservative=True)
        b = CountMin(width=32, depth=2, seed=1, conservative=True)
        a.update(4)
        b.update(4)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_degree_tracker_merge_from_raises(self):
        a = CountMinDegrees(width=32, depth=2, seed=1)
        b = CountMinDegrees(width=32, depth=2, seed=1)
        with pytest.raises(ConfigurationError, match="not mergeable"):
            a.merge_from(b)

    def test_exact_degrees_refuse_a_countmin_donor(self):
        with pytest.raises(ConfigurationError):
            ExactDegrees().merge_from(CountMinDegrees(width=32, depth=2, seed=1))

    def test_config_require_mergeable_raises(self):
        with pytest.raises(ConfigurationError, match="exact"):
            SketchConfig(k=8, degree_mode="countmin").require_mergeable()
        SketchConfig(k=8, degree_mode="exact").require_mergeable()  # no raise

    def test_predictor_merge_raises_for_countmin_degrees(self):
        config = SketchConfig(k=8, degree_mode="countmin")
        a, b = MinHashLinkPredictor(config), MinHashLinkPredictor(config)
        a.update(1, 2)
        b.update(2, 3)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_shards_needs_at_least_one(self):
        with pytest.raises(ConfigurationError):
            merge_shards([])
