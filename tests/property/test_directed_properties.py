"""Property-based tests for the directed substrate and predictor."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DirectedExactOracle, DirectedMinHashPredictor, SketchConfig
from repro.graph.digraph import DirectedGraph

arc_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda p: p[0] != p[1]),
    max_size=60,
)


class TestDigraphLaws:
    @given(arc_lists)
    def test_successor_predecessor_duality(self, arcs):
        graph = DirectedGraph.from_arcs(arcs)
        for source, target in graph.arcs():
            assert target in graph.successors(source)
            assert source in graph.predecessors(target)

    @given(arc_lists)
    def test_degree_sums_equal_arc_count(self, arcs):
        graph = DirectedGraph.from_arcs(arcs)
        out_total = sum(graph.out_degree(v) for v in graph.vertices())
        in_total = sum(graph.in_degree(v) for v in graph.vertices())
        assert out_total == in_total == graph.arc_count

    @given(arc_lists)
    def test_fold_never_gains_edges(self, arcs):
        graph = DirectedGraph.from_arcs(arcs)
        undirected = graph.as_undirected()
        assert undirected.edge_count <= graph.arc_count
        for u, v in undirected.edges():
            assert graph.has_arc(u, v) or graph.has_arc(v, u)


class TestDirectedPredictorLaws:
    @settings(max_examples=30)
    @given(arc_lists)
    def test_degrees_match_exact(self, arcs):
        seen = set()
        simple = []
        for arc in arcs:
            if arc not in seen:
                seen.add(arc)
                simple.append(arc)
        sketch = DirectedMinHashPredictor(SketchConfig(k=16, seed=1))
        oracle = DirectedExactOracle()
        for u, v in simple:
            sketch.update(u, v)
            oracle.update(u, v)
        for vertex in {x for arc in simple for x in arc}:
            for direction in ("out", "in"):
                assert sketch.degree_directed(vertex, direction) == (
                    oracle.degree_directed(vertex, direction)
                )

    @settings(max_examples=30)
    @given(arc_lists)
    def test_scores_nonnegative_and_symmetric(self, arcs):
        sketch = DirectedMinHashPredictor(SketchConfig(k=16, seed=2))
        for u, v in arcs:
            sketch.update(u, v)
        vertices = sorted({x for arc in arcs for x in arc})[:5]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                for direction in ("out", "in"):
                    score = sketch.score_directed(u, v, "jaccard", direction)
                    assert 0.0 <= score <= 1.0
                    assert score == sketch.score_directed(v, u, "jaccard", direction)

    @settings(max_examples=30)
    @given(arc_lists)
    def test_jaccard_exact_on_identical_neighborhoods(self, arcs):
        # Append two fresh vertices following the same targets: their
        # out-jaccard must be exactly 1.
        targets = sorted({x for arc in arcs for x in arc})[:3] or [100, 101]
        sketch = DirectedMinHashPredictor(SketchConfig(k=16, seed=3))
        for u, v in arcs:
            sketch.update(u, v)
        a, b = 900, 901
        for t in targets:
            sketch.update(a, t)
            sketch.update(b, t)
        assert sketch.score_directed(a, b, "jaccard", "out") == 1.0
