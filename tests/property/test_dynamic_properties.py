"""Property tests for the fully dynamic (deletion-tolerant) algebra.

The deletion-mode contract mirrors the append-only one, but over a
richer carrier: per-vertex sketches are ℤ-modules (signed key counts
plus a last-seen time), so the whole pipeline must stay exact under
*any* interleaving of adds and deletes:

* sharding any op sequence and merging the shard predictors equals
  applying it serially (the bit-identical guarantee sharded ingestion
  rests on),
* ``merge`` is commutative and associative,
* the batched kernel (``update_block``/``delete_block``) equals the
  scalar loop,
* a checkpoint written mid-stream and resumed reproduces the
  uninterrupted run exactly — deletes included,
* deleting everything that was added returns to the empty state.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicMinHashPredictor, SketchConfig, merge_dynamic_shards
from repro.core.persistence import load_predictor, save_predictor
from repro.stream.casebook import sketch_fingerprint

CONFIG = SketchConfig(k=16, seed=7, dynamic_mode=True)

# One drawn list defines everything: each element is (u, v, shard tag,
# delete?).  Deletes are applied only when the edge is currently live,
# which keeps every sequence valid without the guard's help.
tagged_ops = st.lists(
    st.tuples(
        st.integers(0, 12),
        st.integers(0, 12),
        st.integers(0, 3),
        st.booleans(),
    ).filter(lambda t: t[0] != t[1]),
    max_size=60,
)


def _materialize_ops(raw):
    """Turn drawn tuples into a valid (op, u, v, t, shard) sequence.

    A drawn delete retracts the oldest still-live edge incident to the
    drawn pair's shard-agnostic multiset; if nothing is live it becomes
    an add.  Timestamps are the sequence index: strictly increasing.
    """
    live = []
    ops = []
    for index, (u, v, shard, is_delete) in enumerate(raw):
        key = (u, v) if u <= v else (v, u)
        if is_delete and live:
            del_key, del_shard = live.pop(0)
            ops.append(("delete", del_key[0], del_key[1], float(index), del_shard))
        else:
            live.append((key, shard))
            ops.append(("add", key[0], key[1], float(index), shard))
    return ops


def _apply_serial(ops, config=CONFIG):
    predictor = DynamicMinHashPredictor(config)
    for op, u, v, t, _ in ops:
        if op == "add":
            predictor.update(u, v, t)
        else:
            predictor.delete(u, v, t)
    return predictor


def _state(predictor):
    """Comparable full logical state: fingerprint + raw CSR arrays."""
    arrays = predictor.export_dynamic_arrays()
    return (
        sketch_fingerprint(predictor),
        [array.tolist() for array in arrays[:-1]],
        arrays.high_water,
    )


class TestShardingEqualsSerial:
    @settings(max_examples=60, deadline=None)
    @given(tagged_ops)
    def test_merge_fold_of_shards_equals_serial(self, raw):
        ops = _materialize_ops(raw)
        serial = _apply_serial(ops)
        shards = [DynamicMinHashPredictor(CONFIG) for _ in range(4)]
        for op, u, v, t, shard in ops:
            if op == "add":
                shards[shard].update(u, v, t)
            else:
                shards[shard].delete(u, v, t)
        merged = merge_dynamic_shards(shards)
        assert _state(merged) == _state(serial)

    @settings(max_examples=40, deadline=None)
    @given(tagged_ops)
    def test_merge_commutes(self, raw):
        ops = _materialize_ops(raw)
        left = [DynamicMinHashPredictor(CONFIG) for _ in range(2)]
        right = [DynamicMinHashPredictor(CONFIG) for _ in range(2)]
        for op, u, v, t, shard in ops:
            for pair in (left, right):
                target = pair[shard % 2]
                if op == "add":
                    target.update(u, v, t)
                else:
                    target.delete(u, v, t)
        ab = left[0].merge(left[1])
        ba = right[1].merge(right[0])
        assert _state(ab) == _state(ba)

    @settings(max_examples=40, deadline=None)
    @given(tagged_ops)
    def test_merge_associates(self, raw):
        ops = _materialize_ops(raw)

        def build():
            shards = [DynamicMinHashPredictor(CONFIG) for _ in range(3)]
            for op, u, v, t, shard in ops:
                target = shards[shard % 3]
                if op == "add":
                    target.update(u, v, t)
                else:
                    target.delete(u, v, t)
            return shards

        a, b, c = build()
        grouped_left = a.merge(b).merge(c)
        a2, b2, c2 = build()
        grouped_right = a2.merge(b2.merge(c2))
        assert _state(grouped_left) == _state(grouped_right)


class TestBlockEqualsScalar:
    @settings(max_examples=40, deadline=None)
    @given(tagged_ops)
    def test_homogeneous_runs_through_kernel_match_scalar(self, raw):
        ops = _materialize_ops(raw)
        scalar = _apply_serial(ops)
        batched = DynamicMinHashPredictor(CONFIG)
        index = 0
        while index < len(ops):
            run = index + 1
            while run < len(ops) and ops[run][0] == ops[index][0]:
                run += 1
            span = ops[index:run]
            us = [entry[1] for entry in span]
            vs = [entry[2] for entry in span]
            ts = [entry[3] for entry in span]
            if span[0][0] == "add":
                batched.update_block(us, vs, ts)
            else:
                batched.delete_block(us, vs, ts)
            index = run
        assert _state(batched) == _state(scalar)


class TestCheckpointKillAndResume:
    @settings(max_examples=40, deadline=None)
    @given(tagged_ops, st.integers(0, 59))
    def test_resume_mid_stream_reproduces_uninterrupted_run(self, raw, cut_at):
        ops = _materialize_ops(raw)
        cut = min(cut_at, len(ops))
        uninterrupted = _apply_serial(ops)

        first_leg = _apply_serial(ops[:cut])
        buffer = io.BytesIO()
        save_predictor(first_leg, buffer, metadata={"stream_offset": cut})
        buffer.seek(0)
        resumed = load_predictor(buffer)
        assert isinstance(resumed, DynamicMinHashPredictor)
        for op, u, v, t, _ in ops[cut:]:
            if op == "add":
                resumed.update(u, v, t)
            else:
                resumed.delete(u, v, t)
        assert _state(resumed) == _state(uninterrupted)


class TestDeletionInverts:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=30,
        )
    )
    def test_deleting_everything_added_returns_to_empty(self, pairs):
        predictor = DynamicMinHashPredictor(CONFIG)
        for index, (u, v) in enumerate(pairs):
            predictor.update(u, v, float(index))
        for index, (u, v) in enumerate(pairs):
            predictor.delete(u, v, float(len(pairs) + index))
        predictor.compact()
        empty = DynamicMinHashPredictor(CONFIG)
        assert sketch_fingerprint(predictor) == sketch_fingerprint(empty)
        for u, v in pairs:
            assert predictor.degree(u) == 0
            assert predictor.score(u, v, "jaccard") == pytest.approx(0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda t: t[0] != t[1]
            ),
            min_size=1,
            max_size=30,
        ),
        st.data(),
    )
    def test_delete_then_readd_equals_plain_add_history(self, pairs, data):
        """Retracting an edge and re-adding it matches never retracting
        it, up to op counts (which deliberately record churn)."""
        victim = data.draw(st.sampled_from(pairs))
        churned = DynamicMinHashPredictor(CONFIG)
        plain = DynamicMinHashPredictor(CONFIG)
        t = 0.0
        for u, v in pairs:
            churned.update(u, v, t)
            plain.update(u, v, t)
            t += 1.0
        churned.delete(victim[0], victim[1], t)
        churned.update(victim[0], victim[1], t + 1.0)
        for u, v in set(pairs):
            assert churned.score(u, v, "jaccard") == pytest.approx(
                plain.score(u, v, "jaccard")
            )
            assert churned.degree(u) == plain.degree(u)

    def test_ttl_expires_stale_edges(self):
        config = SketchConfig(k=16, seed=7, dynamic_mode=True, ttl=10.0)
        predictor = DynamicMinHashPredictor(config)
        predictor.update(1, 2, 0.0)  # expires once the clock passes 10.0
        predictor.update(1, 4, 100.0)
        predictor.update(3, 4, 100.0)
        assert predictor.degree(1) == 1
        assert predictor.score(1, 2, "common_neighbors") == pytest.approx(0.0)
        assert predictor.score(1, 3, "common_neighbors") > 0.0  # share 4
