"""Property-based tests for predictor-level invariants.

These exercise the LinkPredictor implementations with
hypothesis-generated streams, pinning the conventions every experiment
relies on: symmetry, feasible ranges, cold-vertex behaviour, and the
windowed/full-history equivalence while the window covers the stream.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.windowed import WindowedMinHashPredictor
from repro.exact import ExactOracle
from repro.graph import from_pairs

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=60,
)

MEASURE_NAMES = [
    "jaccard",
    "common_neighbors",
    "adamic_adar",
    "resource_allocation",
    "cosine",
    "sorensen",
    "hub_promoted",
    "hub_depressed",
    "leicht_holme_newman",
    "preferential_attachment",
]


def fresh_predictor(pairs):
    predictor = MinHashLinkPredictor(SketchConfig(k=32, seed=0xF00D))
    predictor.process(from_pairs(pairs))
    return predictor


class TestPredictorInvariants:
    @settings(max_examples=40)
    @given(edge_lists)
    def test_scores_symmetric_and_nonnegative(self, pairs):
        predictor = fresh_predictor(pairs)
        vertices = sorted({v for pair in pairs for v in pair})[:6]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                for measure in MEASURE_NAMES:
                    score = predictor.score(u, v, measure)
                    assert score >= 0.0, measure
                    assert score == predictor.score(v, u, measure), measure

    @settings(max_examples=40)
    @given(edge_lists)
    def test_feasible_ranges(self, pairs):
        predictor = fresh_predictor(pairs)
        vertices = sorted({v for pair in pairs for v in pair})[:6]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                assert predictor.score(u, v, "jaccard") <= 1.0
                assert predictor.score(u, v, "hub_promoted") <= 1.0 + 1e-9
                cn = predictor.score(u, v, "common_neighbors")
                assert cn <= min(predictor.degree(u), predictor.degree(v))

    @settings(max_examples=40)
    @given(edge_lists)
    def test_cold_vertex_scores_zero(self, pairs):
        predictor = fresh_predictor(pairs)
        known = next(iter({v for pair in pairs for v in pair}))
        for measure in MEASURE_NAMES:
            assert predictor.score(known, 10_000, measure) == 0.0

    @settings(max_examples=40)
    @given(edge_lists)
    def test_degrees_match_exact_on_simple_streams(self, pairs):
        # Deduplicate pairs (the generator may repeat undirected edges).
        seen = set()
        simple = []
        for u, v in pairs:
            key = (min(u, v), max(u, v))
            if key not in seen:
                seen.add(key)
                simple.append((u, v))
        predictor = fresh_predictor(simple)
        oracle = ExactOracle()
        oracle.process(from_pairs(simple))
        for vertex in {v for pair in simple for v in pair}:
            assert predictor.degree(vertex) == oracle.degree(vertex)

    @settings(max_examples=25)
    @given(edge_lists)
    def test_windowed_equals_plain_while_window_covers(self, pairs):
        config = SketchConfig(k=16, seed=0xCAFE)
        plain = MinHashLinkPredictor(config)
        windowed = WindowedMinHashPredictor(
            config, pane_edges=len(pairs), panes=3
        )
        plain.process(from_pairs(pairs))
        windowed.process(from_pairs(pairs))
        vertices = sorted({v for pair in pairs for v in pair})[:5]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                    assert windowed.score(u, v, measure) == plain.score(
                        u, v, measure
                    )
