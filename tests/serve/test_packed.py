"""Tests for the packed sketch store (layout + lookup semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import SketchStateError
from repro.graph import from_pairs
from repro.serve import PackedSketches

EDGES = [(0, 2), (1, 2), (0, 3), (1, 3), (4, 5), (2, 7)]


def warm_predictor(k=32, seed=9, **overrides):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed, **overrides))
    predictor.process(from_pairs(EDGES))
    return predictor


class TestPacking:
    def test_rows_match_predictor_sketches(self):
        predictor = warm_predictor()
        store = PackedSketches.from_predictor(predictor)
        assert store.n_vertices == predictor.vertex_count
        for vertex, sketch in predictor._sketches.items():
            row = store.row_of(vertex)
            assert row >= 0
            assert np.array_equal(store.values[row], sketch.values)
            assert np.array_equal(store.witnesses[row], sketch.witnesses)
            assert store.degrees[row] == predictor.degree(vertex)

    def test_vertex_ids_sorted(self):
        store = PackedSketches.from_predictor(warm_predictor())
        assert np.array_equal(store.vertex_ids, np.sort(store.vertex_ids))

    def test_pack_is_a_frozen_snapshot(self):
        predictor = warm_predictor()
        store = PackedSketches.from_predictor(predictor)
        before = store.values.copy()
        predictor.update(0, 99)  # stream keeps moving
        assert np.array_equal(store.values, before)
        assert store.row_of(99) == -1

    def test_witnessless_predictor_packs_without_witnesses(self):
        store = PackedSketches.from_predictor(
            warm_predictor(track_witnesses=False)
        )
        assert store.witnesses is None
        assert store.nominal_bytes() > 0

    def test_empty_predictor_packs_empty(self):
        store = PackedSketches.from_predictor(
            MinHashLinkPredictor(SketchConfig(k=8, seed=1))
        )
        assert store.n_vertices == 0
        assert np.array_equal(store.rows_of([1, 2, 3]), [-1, -1, -1])
        assert np.array_equal(store.degrees_of([1, 2]), [0, 0])

    def test_shape_validation(self):
        predictor = warm_predictor(k=16)
        exported = predictor.export_arrays()
        with pytest.raises(SketchStateError):
            PackedSketches(
                exported.vertex_ids,
                exported.values[:, :8],  # wrong width
                exported.witnesses,
                exported.degrees,
                exported.update_counts,
                k=16,
                seed=9,
            )


class TestLookup:
    def test_rows_of_mixed_batch(self):
        store = PackedSketches.from_predictor(warm_predictor())
        rows = store.rows_of([0, 42, 5, -3, 7])
        assert rows[0] >= 0 and rows[2] >= 0 and rows[4] >= 0
        assert rows[1] == -1 and rows[3] == -1

    def test_degrees_of_unseen_is_zero(self):
        predictor = warm_predictor()
        store = PackedSketches.from_predictor(predictor)
        degs = store.degrees_of([2, 1234, 4])
        assert degs[0] == predictor.degree(2)
        assert degs[1] == 0
        assert degs[2] == predictor.degree(4)

    def test_pack_time_recorded(self):
        store = PackedSketches.from_predictor(warm_predictor())
        assert store.pack_seconds >= 0.0


class TestExportApi:
    def test_export_arrays_round_trips_through_from_arrays(self):
        from repro.sketches.minhash import KMinHash

        predictor = warm_predictor(k=16)
        exported = predictor.export_arrays()
        for row, vertex in enumerate(exported.vertex_ids.tolist()):
            rebuilt = KMinHash.from_arrays(
                predictor.bank,
                exported.values[row],
                exported.witnesses[row],
                update_count=int(exported.update_counts[row]),
            )
            assert rebuilt == predictor._sketches[vertex]

    def test_export_copies_do_not_alias_live_state(self):
        predictor = warm_predictor(k=16)
        exported = predictor.export_arrays()
        exported.values.fill(0)
        assert predictor.score(0, 1, "jaccard") >= 0.0  # live state intact
        fresh = predictor.export_arrays()
        assert not np.array_equal(fresh.values, exported.values)

    def test_from_arrays_rejects_wrong_length(self):
        from repro.hashing import HashBank
        from repro.sketches.minhash import KMinHash

        bank = HashBank(seed=3, size=8)
        with pytest.raises(SketchStateError):
            KMinHash.from_arrays(bank, np.zeros(5, dtype=np.uint64))
        with pytest.raises(SketchStateError):
            KMinHash.from_arrays(
                bank, np.zeros(8, dtype=np.uint64), np.zeros(5, dtype=np.int64)
            )
