"""Regression tests for the scoring edge-case policy.

Every measure in the registry must obey the same contract on both the
per-pair path (``predictor.score``) and the batch path
(``engine.score_many``):

* **unseen vertex** — score 0.0, never a ``KeyError``, even under
  Count-Min degrees (where a colliding counter may claim a positive
  degree for a vertex that never appeared),
* **self-pair** — finite, no division blow-ups,
* **zero-degree pair** — 0.0 for every overlap measure (a degree
  product is trivially 0 there too).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.exact.measures import MEASURES
from repro.graph import from_pairs
from repro.serve import QueryEngine

ALL_MEASURES = sorted(MEASURES)
EDGES = [(0, 2), (1, 2), (0, 3), (1, 3), (4, 5), (2, 7)]
NEVER_SEEN = 9_999


def warm_predictor(**overrides):
    predictor = MinHashLinkPredictor(SketchConfig(k=32, seed=9, **overrides))
    predictor.process(from_pairs(EDGES))
    return predictor


@pytest.fixture(scope="module")
def predictor():
    return warm_predictor()


@pytest.fixture(scope="module")
def engine(predictor):
    return QueryEngine(predictor)


class TestUnseenVertexPolicy:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_scalar_path_returns_zero(self, predictor, measure):
        assert predictor.score(NEVER_SEEN, 0, measure) == 0.0
        assert predictor.score(0, NEVER_SEEN, measure) == 0.0
        assert predictor.score(NEVER_SEEN, NEVER_SEEN + 1, measure) == 0.0

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_batch_path_returns_zero(self, engine, measure):
        pairs = [(NEVER_SEEN, 0), (0, NEVER_SEEN), (NEVER_SEEN, NEVER_SEEN + 1)]
        assert np.array_equal(engine.score_many(pairs, measure), [0.0, 0.0, 0.0])

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_countmin_degrees_cannot_resurrect_unseen(self, measure):
        # A tiny Count-Min table guarantees collisions: the tracker may
        # report a positive degree for NEVER_SEEN.  The policy decides
        # on sketch presence first, so the score is still 0.0 — notably
        # for preferential_attachment, which is a pure degree product.
        predictor = warm_predictor(
            degree_mode="countmin", countmin_width=2, countmin_depth=1
        )
        assert predictor.score(NEVER_SEEN, 0, measure) == 0.0
        engine = QueryEngine(predictor)
        assert engine.score(NEVER_SEEN, 0, measure) == 0.0

    def test_estimate_agrees_with_policy(self, predictor):
        # The analytic estimate() surface follows the same policy:
        # unseen pairs report zero everywhere, never a KeyError.
        estimate = predictor.estimate(NEVER_SEEN, 0)
        assert estimate.jaccard == 0.0
        assert estimate.common_neighbors == 0.0
        assert estimate.adamic_adar == 0.0
        assert estimate.degree_u == 0


class TestSelfPairPolicy:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_scalar_path_is_finite(self, predictor, measure):
        value = predictor.score(2, 2, measure)
        assert np.isfinite(value)
        assert value >= 0.0

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_batch_path_matches_scalar(self, engine, predictor, measure):
        vertices = [0, 2, 4]
        batch = engine.score_many([(v, v) for v in vertices], measure)
        scalar = [predictor.score(v, v, measure) for v in vertices]
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12)


class TestZeroDegreePolicy:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_unseen_pairs_have_zero_degree_and_zero_score(self, predictor, measure):
        assert predictor.degree(NEVER_SEEN) == 0
        assert predictor.score(NEVER_SEEN, NEVER_SEEN, measure) == 0.0

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_disconnected_pair_scores_zero_overlap(self, engine, measure):
        # 4 and 7 share no neighbours: overlap and witness measures are
        # exactly 0; the degree product is positive but finite.
        score = float(engine.score_many([(4, 7)], measure)[0])
        if MEASURES[measure].kind == "degree_product":
            assert score > 0.0
        else:
            assert score == 0.0

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_no_nans_anywhere(self, engine, measure):
        rng = np.random.default_rng(7)
        pairs = rng.integers(0, 12, size=(64, 2))
        scores = engine.score_many(pairs, measure)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0.0)
