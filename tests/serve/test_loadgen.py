"""The closed-loop load generator: auditing, sampling, failure paths.

``run_load`` is itself a measurement instrument — the E17 benchmark
gates on what it reports — so these tests pin its accounting: every
response audited against the torn-read ledger, samples that re-score
bit-identically offline, and honest failure counts when the target is
down.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.engine import QueryEngine
from repro.serve.loadgen import LoadReport, run_load, _Audit
from repro.serve.server import SketchServer

from .test_server import ServerHarness, warm_predictor


@pytest.fixture(scope="module")
def live_server():
    harness = ServerHarness(SketchServer(warm_predictor(), port=0, keep_history=4))
    yield harness
    harness.shutdown()


class TestRunLoad:
    def test_clean_run_against_live_server(self, live_server):
        pool = np.random.default_rng(0).integers(0, 50, size=(256, 2))
        report = run_load(
            "127.0.0.1",
            live_server.server.port,
            pool,
            workers=2,
            duration=0.6,
            batch_pairs=4,
            record_samples=2,
            seed=1,
        )
        assert report.requests > 0
        assert report.failures == 0
        assert report.torn_reads == 0
        assert report.status_counts == {200: report.requests}
        assert report.pairs_scored == report.requests * 4
        assert len(report.latencies) == report.requests
        assert report.qps > 0
        # One static generation, one fingerprint.
        generation = live_server.server.generation
        assert report.generations == {generation.number: generation.fingerprint}

    def test_samples_rescore_bit_identically(self, live_server):
        pool = np.random.default_rng(1).integers(0, 50, size=(64, 2))
        report = run_load(
            "127.0.0.1",
            live_server.server.port,
            pool,
            workers=1,
            duration=0.4,
            batch_pairs=8,
            record_samples=3,
            seed=2,
        )
        assert 0 < len(report.samples) <= 3
        engine = QueryEngine(live_server.server.predictor)
        for sample in report.samples:
            assert sample.measure == "jaccard"
            offline = engine.score_many(sample.pairs, sample.measure)
            assert np.array_equal(offline, sample.scores)

    def test_summary_has_gate_fields(self, live_server):
        pool = np.asarray([[1, 2], [3, 4]])
        report = run_load(
            "127.0.0.1", live_server.server.port, pool,
            workers=1, duration=0.2, batch_pairs=2,
        )
        summary = report.summary()
        for key in (
            "requests", "failures", "torn_reads", "qps",
            "latency_p99_ms", "status_counts", "generations_observed",
        ):
            assert key in summary

    def test_unreachable_target_counts_failures(self):
        # Bind-then-close gives a port with nothing listening.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        report = run_load(
            "127.0.0.1",
            dead_port,
            np.asarray([[1, 2]]),
            workers=1,
            duration=0.2,
            batch_pairs=1,
            timeout=0.5,
        )
        assert report.requests > 0
        assert report.failures == report.requests
        assert report.errors  # the failure reason is surfaced, not swallowed

    def test_rejects_bad_pool(self):
        # ConfigurationError subclasses ValueError, so pre-taxonomy
        # callers that caught ValueError keep working (RL002 sweep).
        with pytest.raises(ConfigurationError, match=r"non-empty \(n, 2\)"):
            run_load("127.0.0.1", 1, np.zeros((0, 2)))
        with pytest.raises(ConfigurationError, match=r"non-empty \(n, 2\)"):
            run_load("127.0.0.1", 1, np.zeros((4, 3)))
        assert issubclass(ConfigurationError, ValueError)


class TestAudit:
    def test_detects_torn_generation(self):
        audit = _Audit()
        audit.observe(1, "aaa")
        audit.observe(1, "aaa")
        audit.observe(2, "bbb")
        assert audit.torn == 0
        audit.observe(1, "bbb")  # same generation, different pack: torn
        assert audit.torn == 1

    def test_ledger_is_thread_safe(self):
        audit = _Audit()

        def hammer(fingerprint):
            for _ in range(500):
                audit.observe(7, fingerprint)

        threads = [
            threading.Thread(target=hammer, args=(fp,)) for fp in ("x", "x", "x")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert audit.torn == 0
        assert audit.generations == {7: "x"}


class TestLoadReport:
    def test_empty_latencies_quantile_is_zero(self):
        report = LoadReport(
            requests=0, failures=0, torn_reads=0, pairs_scored=0,
            elapsed=0.0, status_counts={}, generations={},
            latencies=np.array([]), samples=[], errors=[],
        )
        assert report.latency_quantile(0.99) == 0.0
        assert report.qps == 0.0
        assert report.pairs_per_second == 0.0
