"""Tests for the batch query engine: scalar/batch parity, top-k
pruning equivalence, chunking, and the stats surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError, SketchStateError
from repro.exact.measures import MEASURES
from repro.graph.generators import erdos_renyi
from repro.serve import QueryEngine

ALL_MEASURES = sorted(MEASURES)


def warm_predictor(k=48, seed=11, n=70, m=320, **overrides):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed, **overrides))
    predictor.process(erdos_renyi(n, m, seed=seed))
    return predictor


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(warm_predictor())


@pytest.fixture(scope="module")
def query_pairs():
    rng = np.random.default_rng(42)
    pairs = rng.integers(0, 80, size=(300, 2))  # includes unseen ids + self-pairs
    return [(int(u), int(v)) for u, v in pairs]


class TestScoreManyParity:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_matches_per_pair_scoring(self, engine, query_pairs, measure):
        batch = engine.score_many(query_pairs, measure)
        scalar = np.array(
            [engine.predictor.score(u, v, measure) for u, v in query_pairs]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12)

    def test_accepts_ndarray_input(self, engine, query_pairs):
        as_list = engine.score_many(query_pairs, "jaccard")
        as_array = engine.score_many(np.asarray(query_pairs), "jaccard")
        assert np.array_equal(as_list, as_array)

    def test_chunking_does_not_change_answers(self, query_pairs):
        whole = QueryEngine(warm_predictor())
        chunked = QueryEngine(warm_predictor(), batch_size=7)
        assert np.array_equal(
            whole.score_many(query_pairs, "adamic_adar"),
            chunked.score_many(query_pairs, "adamic_adar"),
        )

    def test_empty_batch(self, engine):
        assert len(engine.score_many([], "jaccard")) == 0
        assert len(engine.score_many(np.empty((0, 2), dtype=np.int64), "jaccard")) == 0

    def test_bad_shapes_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.score_many([(1, 2, 3)], "jaccard")

    def test_unknown_measure_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.score_many([(0, 1)], "nonsense")

    def test_scalar_convenience(self, engine):
        assert engine.score(0, 1, "jaccard") == pytest.approx(
            engine.predictor.score(0, 1, "jaccard")
        )

    def test_witness_measures_need_witness_tracking(self):
        engine = QueryEngine(warm_predictor(track_witnesses=False))
        with pytest.raises(SketchStateError):
            engine.score_many([(0, 1)], "adamic_adar")
        # Closed-form and ratio measures still work without witnesses.
        assert engine.score_many([(0, 1)], "common_neighbors") is not None


class TestTopK:
    @pytest.mark.parametrize(
        "measure",
        [m for m in ALL_MEASURES if MEASURES[m].kind != "degree_product"],
    )
    def test_pruned_equals_brute_force(self, engine, measure):
        # The default rows=1 banding has exact recall: pruning changes
        # the work, never the answer.
        for u in (0, 7, 33):
            assert engine.top_k(u, measure, k=12, prune=True) == engine.top_k(
                u, measure, k=12, prune=False
            )

    def test_pruning_scores_strictly_fewer_candidates(self):
        engine = QueryEngine(warm_predictor())
        engine.top_k(3, "jaccard", k=5, prune=False)
        brute = engine.stats()["candidates_scored"]
        engine.refresh()
        engine.top_k(3, "jaccard", k=5, prune=True)
        pruned = engine.stats()["candidates_scored"]
        assert 0 < pruned < brute

    def test_results_sorted_and_positive(self, engine):
        ranked = engine.top_k(0, "adamic_adar", k=10)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(score > 0 for score in scores)
        assert len(ranked) <= 10

    def test_ties_break_on_ascending_vertex(self, engine):
        ranked = engine.top_k(0, "jaccard", k=30)
        for (va, sa), (vb, sb) in zip(ranked, ranked[1:]):
            assert sa > sb or (sa == sb and va < vb)

    def test_unseen_vertex_returns_empty(self, engine):
        assert engine.top_k(10_000, "jaccard", k=5) == []

    def test_degree_product_auto_brute_forces(self, engine):
        ranked = engine.top_k(0, "preferential_attachment", k=5)
        assert len(ranked) == 5  # every warm partner scores positive
        with pytest.raises(ConfigurationError):
            engine.top_k(0, "preferential_attachment", k=5, prune=True)

    def test_custom_banding_still_subset_of_brute(self):
        # An aggressive shape may lose recall but must never invent
        # candidates or misscore the survivors.
        engine = QueryEngine(warm_predictor(), bands=8, rows=6)
        brute = dict(engine.top_k(0, "jaccard", k=50, prune=False))
        for vertex, score in engine.top_k(0, "jaccard", k=50, prune=True):
            assert brute[vertex] == score

    def test_bad_k_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.top_k(0, "jaccard", k=0)


class TestLifecycle:
    def test_refresh_picks_up_new_edges(self):
        predictor = warm_predictor()
        engine = QueryEngine(predictor)
        assert engine.score(500, 501, "jaccard") == 0.0
        for w in (502, 503, 504):
            predictor.update(500, w)
            predictor.update(501, w)
        assert engine.score(500, 501, "jaccard") == 0.0  # frozen snapshot
        engine.refresh()
        assert engine.score(500, 501, "jaccard") > 0.0

    def test_mismatched_band_args_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryEngine(warm_predictor(), bands=4)

    def test_stats_surface(self):
        engine = QueryEngine(warm_predictor(), clock=iter(range(100)).__next__)
        engine.score_many([(0, 1), (1, 2)], "jaccard")
        engine.top_k(0, "jaccard", k=3)
        stats = engine.stats()
        assert stats["vertices"] == engine.store.n_vertices
        assert stats["pairs_scored"] >= 2
        assert stats["batches"] >= 2
        assert stats["topk_queries"] == 1
        assert stats["index_built"] is True
        assert stats["index_buckets"] > 0
        assert stats["scores_per_second"] > 0
        assert stats["candidates_pruned"] >= 0
        # Flat dict: every value is a scalar (the monitoring contract).
        assert all(not isinstance(v, (dict, list)) for v in stats.values())
