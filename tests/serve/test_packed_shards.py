"""Tests for building the packed serving store straight from shards.

``PackedSketches.from_shards`` must equal the two-step path — merge the
shard predictors, then ``from_predictor`` — bit for bit, without
materialising the merged predictor.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.predictor import merge_shards
from repro.errors import ConfigurationError, SketchStateError
from repro.parallel import shard_of
from repro.serve import PackedSketches


def build_shards(workers=3, k=16, seed=4, edges=600, vertices=80, **overrides):
    config = SketchConfig(k=k, seed=seed, degree_mode="exact", **overrides)
    shards = [MinHashLinkPredictor(config) for _ in range(workers)]
    rng = random.Random(seed)
    for _ in range(edges):
        u, v = rng.randrange(vertices), rng.randrange(vertices)
        if u != v:
            shards[shard_of(u, v, workers, config.seed)].update(u, v)
    return shards


class TestFromShards:
    def test_equals_merge_then_pack(self):
        shards = build_shards()
        direct = PackedSketches.from_shards(shards)
        merged = PackedSketches.from_predictor(merge_shards(list(shards)))
        assert np.array_equal(direct.vertex_ids, merged.vertex_ids)
        assert np.array_equal(direct.values, merged.values)
        assert np.array_equal(direct.witnesses, merged.witnesses)
        assert np.array_equal(direct.update_counts, merged.update_counts)
        assert np.array_equal(direct.degrees, merged.degrees)
        assert direct.k == merged.k and direct.seed == merged.seed

    def test_disjoint_vertex_sets_union(self):
        config = SketchConfig(k=8, seed=2, degree_mode="exact")
        a, b = MinHashLinkPredictor(config), MinHashLinkPredictor(config)
        a.update(1, 2)
        b.update(10, 20)
        store = PackedSketches.from_shards([a, b])
        assert store.vertex_ids.tolist() == [1, 2, 10, 20]
        assert store.n_vertices == 4

    def test_single_shard_equals_from_predictor(self):
        (shard,) = build_shards(workers=1)
        direct = PackedSketches.from_shards([shard])
        alone = PackedSketches.from_predictor(shard)
        assert np.array_equal(direct.values, alone.values)
        assert np.array_equal(direct.degrees, alone.degrees)

    def test_witnessless_shards_pack_without_witnesses(self):
        shards = build_shards(track_witnesses=False)
        store = PackedSketches.from_shards(shards)
        assert store.witnesses is None

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ConfigurationError):
            PackedSketches.from_shards([])

    def test_mismatched_configs_rejected(self):
        a = MinHashLinkPredictor(SketchConfig(k=8, seed=1, degree_mode="exact"))
        b = MinHashLinkPredictor(SketchConfig(k=8, seed=2, degree_mode="exact"))
        with pytest.raises(SketchStateError):
            PackedSketches.from_shards([a, b])

    def test_countmin_degree_shards_rejected(self):
        config = SketchConfig(k=8, seed=1, degree_mode="countmin")
        a, b = MinHashLinkPredictor(config), MinHashLinkPredictor(config)
        with pytest.raises(ConfigurationError):
            PackedSketches.from_shards([a, b])
