"""The versioned HTTP surface: /v1 paths, aliases, and the version header.

The redesign's contract: ``/v1/...`` spellings are canonical, the
unprefixed paths are permanent aliases answered by the same handlers,
and *every* response — success, client error, 404 — names the API
version in ``X-Repro-Api-Version``.
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.core.predictor import MinHashLinkPredictor
from repro.serve.server import SketchServer


def warm_predictor(edges=400, vertices=40, seed=3, k=16):
    predictor = MinHashLinkPredictor(
        SketchConfig(k=k, seed=seed, track_witnesses=True)
    )
    rng = np.random.default_rng(seed)
    for u, v in rng.integers(0, vertices, size=(edges, 2)).tolist():
        if u != v:
            predictor.update(u, v)
    return predictor


@pytest.fixture(scope="module")
def harness():
    server = SketchServer(predictor=warm_predictor(), host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=lambda: server.run(install_signals=False), daemon=True
    )
    thread.start()
    assert server.wait_ready(10), "server never became ready"

    def request(method, path, body=None, headers=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()

    yield request
    server.request_shutdown()
    assert server.wait_finished(15), "drain hung"


SCORE_BODY = json.dumps({"pairs": [[0, 7], [1, 8]], "measure": "jaccard"})
JSON_HEADERS = {"Content-Type": "application/json"}


class TestVersionedPaths:
    def test_v1_score_works(self, harness):
        status, headers, payload = harness("POST", "/v1/score", SCORE_BODY, JSON_HEADERS)
        assert status == 200
        assert len(json.loads(payload)["results"]) == 2

    def test_unprefixed_score_is_a_bit_identical_alias(self, harness):
        v1 = harness("POST", "/v1/score", SCORE_BODY, JSON_HEADERS)
        legacy = harness("POST", "/score", SCORE_BODY, JSON_HEADERS)
        assert v1[0] == legacy[0] == 200
        assert v1[2] == legacy[2]

    def test_v1_topk_aliases_unprefixed(self, harness):
        v1 = harness("GET", "/v1/topk/0?measure=jaccard&k=3")
        legacy = harness("GET", "/topk/0?measure=jaccard&k=3")
        assert v1[0] == legacy[0] == 200
        assert v1[2] == legacy[2]

    @pytest.mark.parametrize("probe", ["healthz", "readyz", "metrics"])
    def test_v1_probes_work(self, harness, probe):
        status, headers, _ = harness("GET", f"/v1/{probe}")
        assert status == 200

    def test_unknown_v1_route_is_404(self, harness):
        assert harness("GET", "/v1/nope")[0] == 404

    def test_bare_v1_is_404_not_500(self, harness):
        assert harness("GET", "/v1")[0] == 404


class TestVersionHeader:
    def test_success_carries_version(self, harness):
        _, headers, _ = harness("POST", "/v1/score", SCORE_BODY, JSON_HEADERS)
        assert headers["X-Repro-Api-Version"] == "1"

    def test_legacy_alias_carries_version_too(self, harness):
        _, headers, _ = harness("GET", "/healthz")
        assert headers["X-Repro-Api-Version"] == "1"

    def test_errors_carry_version(self, harness):
        status, headers, _ = harness("GET", "/no-such-route")
        assert status == 404
        assert headers["X-Repro-Api-Version"] == "1"

    def test_method_errors_carry_version_and_v1_hint(self, harness):
        status, headers, payload = harness("GET", "/v1/score")
        assert status == 405
        assert headers["X-Repro-Api-Version"] == "1"
        assert "/v1/score" in json.loads(payload)["error"]
