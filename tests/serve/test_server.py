"""The serving tier: endpoints, hot-swap atomicity, drain, batching.

The hot-swap and drain suites are the PR's load-bearing tests: N
reader threads hammer ``/score`` across ≥3 live ``refresh()`` swaps
and assert no response ever mixes generations (a generation number
must map to exactly one pack fingerprint, and the headers must agree
with the body), and a drain must not return while a request is still
in flight.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError
from repro.serve.engine import QueryEngine
from repro.serve.server import Generation, SketchServer, _ScoreBatcher
from repro.stream.runner import StreamRunner
from repro.stream.sources import FileEdgeSource


def warm_predictor(edges=500, vertices=50, seed=3, k=16):
    predictor = MinHashLinkPredictor(
        SketchConfig(k=k, seed=seed, track_witnesses=True)
    )
    rng = np.random.default_rng(seed)
    for u, v in rng.integers(0, vertices, size=(edges, 2)).tolist():
        if u != v:
            predictor.update(u, v)
    return predictor


class ServerHarness:
    """A SketchServer on a background thread with an HTTP helper."""

    def __init__(self, server: SketchServer) -> None:
        self.server = server
        self.thread = threading.Thread(
            target=lambda: server.run(install_signals=False), daemon=True
        )
        self.thread.start()
        assert server.wait_ready(10), "server never became ready"

    def request(self, method, path, body=None, headers=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=10
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()

    def get_json(self, path):
        status, headers, payload = self.request("GET", path)
        return status, headers, json.loads(payload)

    def score(self, pairs, measure="jaccard", query=""):
        status, headers, payload = self.request(
            "POST",
            f"/score{query}",
            body=json.dumps({"pairs": pairs, "measure": measure}),
            headers={"Content-Type": "application/json"},
        )
        return status, headers, json.loads(payload)

    def shutdown(self):
        self.server.request_shutdown()
        assert self.server.wait_finished(15), "drain hung"
        self.thread.join(timeout=5)


@pytest.fixture()
def harness():
    harness = ServerHarness(SketchServer(warm_predictor(), port=0, keep_history=4))
    yield harness
    harness.shutdown()


class TestScoreEndpoint:
    def test_scores_bit_identical_to_engine(self, harness):
        pairs = [[1, 2], [3, 4], [1, 49], [7, 7]]
        status, _, body = harness.score(pairs, "adamic_adar")
        assert status == 200
        engine = QueryEngine(harness.server.predictor)
        expected = engine.score_many(np.asarray(pairs), "adamic_adar")
        assert [row["score"] for row in body["results"]] == expected.tolist()
        assert [[row["u"], row["v"]] for row in body["results"]] == pairs

    def test_response_carries_generation_and_fingerprint(self, harness):
        status, headers, body = harness.score([[1, 2]])
        generation = harness.server.generation
        assert status == 200
        assert body["generation"] == generation.number
        assert body["fingerprint"] == generation.fingerprint
        assert headers["X-Repro-Generation"] == str(generation.number)
        assert headers["X-Repro-Fingerprint"] == generation.fingerprint

    def test_measure_from_query_string(self, harness):
        status, _, payload = harness.request(
            "POST", "/score?measure=common_neighbors",
            body=json.dumps({"pairs": [[1, 2]]}),
        )
        assert status == 200
        assert json.loads(payload)["measure"] == "common_neighbors"

    def test_text_pair_body_matches_cli_format(self, harness):
        status, _, payload = harness.request(
            "POST", "/score", body="# comment\n1 2\n\n3 4\n"
        )
        assert status == 200
        body = json.loads(payload)
        assert [[row["u"], row["v"]] for row in body["results"]] == [[1, 2], [3, 4]]

    def test_csv_format(self, harness):
        status, _, payload = harness.request(
            "POST", "/score?format=csv", body=json.dumps({"pairs": [[1, 2]]})
        )
        lines = payload.decode().splitlines()
        assert status == 200
        assert lines[0] == "u,v,jaccard"
        u, v, score = lines[1].split(",")
        assert (u, v) == ("1", "2")
        # repr round-trip: the CSV float is bit-exact.
        engine = QueryEngine(harness.server.predictor)
        assert float(score) == engine.score_many([(1, 2)], "jaccard")[0]

    def test_empty_batch(self, harness):
        status, _, body = harness.score([])
        assert status == 200
        assert body["results"] == []

    def test_unknown_measure_is_400(self, harness):
        status, _, body = harness.score([[1, 2]], "nope")
        assert status == 400
        assert "unknown measure" in body["error"]

    def test_malformed_json_is_400(self, harness):
        status, _, payload = harness.request(
            "POST", "/score", body="{not json", headers={"Content-Type": "application/json"}
        )
        assert status == 400

    def test_bad_pair_shape_is_400(self, harness):
        status, _, body = harness.score([[1, 2, 3]])
        assert status == 400
        assert "pairs" in body["error"]

    def test_bad_text_line_is_400_with_line_number(self, harness):
        status, _, payload = harness.request("POST", "/score", body="1 2\n1 x\n")
        assert status == 400
        assert "line 2" in json.loads(payload)["error"]

    def test_oversized_batch_is_413(self, harness):
        harness.server.max_request_pairs = 4
        try:
            status, _, body = harness.score([[1, 2]] * 5)
        finally:
            harness.server.max_request_pairs = 100_000
        assert status == 413
        assert "limit" in body["error"]

    def test_get_score_is_405(self, harness):
        status, _, _ = harness.request("GET", "/score")
        assert status == 405


class TestOtherEndpoints:
    def test_topk_matches_engine(self, harness):
        status, headers, body = harness.get_json("/topk/1?measure=jaccard&k=5")
        assert status == 200
        engine = QueryEngine(harness.server.predictor)
        expected = [
            {"v": int(v), "score": float(s)}
            for v, s in engine.top_k(1, "jaccard", k=5)
        ]
        assert body["results"] == expected
        assert headers["X-Repro-Fingerprint"] == body["fingerprint"]

    def test_topk_unseen_vertex_is_empty(self, harness):
        status, _, body = harness.get_json("/topk/99999")
        assert status == 200
        assert body["results"] == []

    def test_topk_bad_vertex_is_400(self, harness):
        status, _, body = harness.get_json("/topk/abc")
        assert status == 400

    def test_healthz(self, harness):
        status, _, body = harness.get_json("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["generation"] == 1
        assert body["engine"]["vertices"] == harness.server.predictor.vertex_count

    def test_readyz(self, harness):
        status, _, body = harness.get_json("/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["generation_age_seconds"] >= 0

    def test_metrics_prometheus(self, harness):
        harness.score([[1, 2]])
        status, _, payload = harness.request("GET", "/metrics")
        text = payload.decode()
        assert status == 200
        assert "# TYPE http_requests_total counter" in text
        assert "serve_generation 1" in text
        assert 'http_requests_total{endpoint="score",code="200"}' in text

    def test_metrics_json_snapshot(self, harness):
        status, _, payload = harness.request(
            "GET", "/metrics", headers={"Accept": "application/json"}
        )
        body = json.loads(payload)
        assert status == 200
        assert body["schema"] == "repro.obs/v1"
        assert any(i["name"] == "http_requests_total" for i in body["instruments"])

    def test_unknown_route_is_404(self, harness):
        status, _, _ = harness.request("GET", "/nope")
        assert status == 404

    def test_keep_alive_reuses_connection(self, harness):
        connection = http.client.HTTPConnection(
            "127.0.0.1", harness.server.port, timeout=10
        )
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                response.read()
                assert response.status == 200
        finally:
            connection.close()


class TestConstruction:
    def test_needs_exactly_one_of_predictor_or_runner(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SketchServer()
        feed = tmp_path / "f.txt"
        feed.write_text("1 2\n")
        runner = StreamRunner(FileEdgeSource(feed), config=SketchConfig(k=8))
        with pytest.raises(ConfigurationError):
            SketchServer(warm_predictor(50), runner=runner)

    def test_negative_cadences_rejected(self):
        with pytest.raises(ConfigurationError):
            SketchServer(warm_predictor(50), refresh_every=-1)
        with pytest.raises(ConfigurationError):
            SketchServer(warm_predictor(50), drain_timeout=-1)
        with pytest.raises(ConfigurationError):
            SketchServer(warm_predictor(50), max_batch_pairs=0)


class TestHotSwapAtomicity:
    """Satellite 4, first half: concurrent readers across >=3 swaps
    never observe a mixed generation."""

    def test_concurrent_readers_never_see_torn_generation(self):
        predictor = warm_predictor(300)
        server = SketchServer(predictor, port=0, keep_history=16)
        harness = ServerHarness(server)
        try:
            ledger: dict = {}
            ledger_lock = threading.Lock()
            problems: list = []
            stop = threading.Event()

            def reader(seed):
                rng = np.random.default_rng(seed)
                while not stop.is_set():
                    pairs = rng.integers(0, 60, size=(4, 2)).tolist()
                    status, headers, body = harness.score(pairs)
                    if status != 200:
                        problems.append(f"status {status}")
                        continue
                    generation = body["generation"]
                    fingerprint = body["fingerprint"]
                    if headers["X-Repro-Generation"] != str(generation):
                        problems.append("header/body generation mismatch")
                    if headers["X-Repro-Fingerprint"] != fingerprint:
                        problems.append("header/body fingerprint mismatch")
                    with ledger_lock:
                        known = ledger.setdefault(generation, fingerprint)
                    if known != fingerprint:
                        problems.append(
                            f"TORN: generation {generation} seen with two fingerprints"
                        )

            readers = [
                threading.Thread(target=reader, args=(i,), daemon=True)
                for i in range(4)
            ]
            for thread in readers:
                thread.start()
            # >=3 live swaps while the readers hammer /score.  Each
            # swap really changes the pack (new edges), so all
            # fingerprints are distinct.
            rng = np.random.default_rng(99)
            for _ in range(4):
                time.sleep(0.05)
                for u, v in rng.integers(0, 60, size=(50, 2)).tolist():
                    if u != v:
                        predictor.update(u, v)
                server.refresh()  # static predictor: publish is safe anywhere
            time.sleep(0.1)
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
            assert problems == []
            assert len(ledger) >= 3, f"readers only saw generations {sorted(ledger)}"
            assert len(set(ledger.values())) == len(ledger), "fingerprints collided"
        finally:
            harness.shutdown()

    def test_inflight_request_finishes_on_its_own_generation(self):
        # A request that started on generation N must answer from N's
        # pack even if a swap lands mid-request; the dispatch delay
        # guarantees a swap happens while it is in flight.
        predictor = warm_predictor(300)
        server = SketchServer(
            predictor, port=0, keep_history=8, debug_dispatch_delay=0.3
        )
        harness = ServerHarness(server)
        try:
            first = server.generation
            result: dict = {}

            def slow_request():
                result["response"] = harness.score([[1, 2]])

            thread = threading.Thread(target=slow_request, daemon=True)
            thread.start()
            time.sleep(0.1)  # request is parked in its dispatch delay
            for u, v in [(1, 59), (2, 58), (3, 57)]:
                predictor.update(u, v)
            swapped = server.refresh()
            assert swapped.fingerprint != first.fingerprint
            thread.join(timeout=10)
            status, _, body = result["response"]
            assert status == 200
            assert body["generation"] == first.number
            assert body["fingerprint"] == first.fingerprint
        finally:
            harness.shutdown()

    def test_refresh_publishes_new_immutable_generation(self):
        predictor = warm_predictor(200)
        server = SketchServer(predictor, port=0, keep_history=4)
        harness = ServerHarness(server)
        try:
            first = server.generation
            predictor.update(0, 49)
            second = server.refresh()
            assert isinstance(second, Generation)
            assert second.number == first.number + 1
            assert second.fingerprint != first.fingerprint
            # The old generation object is untouched (immutable pack).
            assert first.engine.store.fingerprint() == first.fingerprint
            assert server.history[-2:] == [first, second]
        finally:
            harness.shutdown()


class TestPublicationContract:
    """RL004 regression: the one cross-boundary attribute is the
    published generation reference — numbering and refresh cadence are
    derived from it, not from extra shared counters/timestamps."""

    def test_publication_set_is_exactly_the_generation_reference(self):
        from repro.serve import server as server_module

        assert server_module._PUBLICATION_ATTRS == frozenset({"_generation"})
        # The attributes the old design shared across the boundary are
        # gone for good — numbering and cadence ride on the Generation.
        server = SketchServer(warm_predictor(50), port=0)
        assert not hasattr(server, "_generation_count")
        assert not hasattr(server, "_last_refresh")

    def test_generation_numbers_stay_monotonic_under_concurrent_readers(self):
        predictor = warm_predictor(200)
        server = SketchServer(predictor, port=0, keep_history=32)
        harness = ServerHarness(server)
        try:
            stop = threading.Event()
            problems: list = []
            ledger: dict = {}
            ledger_lock = threading.Lock()

            def reader():
                last_number = 0
                while not stop.is_set():
                    generation = server.generation
                    if generation is None:
                        continue
                    number, fingerprint = generation.number, generation.fingerprint
                    if number < last_number:
                        problems.append(f"number regressed {last_number}->{number}")
                    last_number = number
                    with ledger_lock:
                        known = ledger.setdefault(number, fingerprint)
                    if known != fingerprint:
                        problems.append(f"number {number} has two fingerprints")

            readers = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
            for thread in readers:
                thread.start()
            rng = np.random.default_rng(5)
            for _ in range(6):
                for u, v in rng.integers(0, 50, size=(30, 2)).tolist():
                    if u != v:
                        predictor.update(u, v)
                server.refresh()
                time.sleep(0.01)
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
            assert problems == []
            # Derived numbering: start() published 1, six refreshes follow.
            assert server.generation.number == 7
            assert sorted(ledger) == list(range(min(ledger), 8))
        finally:
            harness.shutdown()


class TestGracefulDrain:
    """Satellite 4, second half: drain returns only after in-flight
    requests complete."""

    def test_drain_waits_for_inflight_requests(self):
        server = SketchServer(
            warm_predictor(200), port=0, debug_dispatch_delay=0.5, drain_timeout=10
        )
        harness = ServerHarness(server)
        responses: list = []

        def slow_request():
            responses.append(harness.score([[1, 2]]))

        thread = threading.Thread(target=slow_request, daemon=True)
        thread.start()
        time.sleep(0.15)  # request is in flight (parked in its delay)
        started = time.monotonic()
        server.request_shutdown()
        assert server.wait_finished(15)
        drained_after = time.monotonic() - started
        thread.join(timeout=10)
        # The drain outlasted the in-flight request, and the request
        # completed successfully rather than being dropped.
        assert drained_after >= 0.25
        assert len(responses) == 1
        status, _, body = responses[0]
        assert status == 200
        assert body["results"][0]["score"] >= 0.0
        harness.thread.join(timeout=5)

    def test_draining_readyz_is_503_and_new_connections_refused(self):
        server = SketchServer(
            warm_predictor(200), port=0, debug_dispatch_delay=0.6, drain_timeout=10
        )
        harness = ServerHarness(server)
        holder = threading.Thread(
            target=lambda: harness.score([[1, 2]]), daemon=True
        )
        holder.start()
        time.sleep(0.15)
        server.request_shutdown()
        time.sleep(0.15)  # drain has started, held open by the request
        with pytest.raises(OSError):
            harness.request("GET", "/healthz")  # listener is closed
        holder.join(timeout=10)
        assert server.wait_finished(15)
        harness.thread.join(timeout=5)

    def test_drain_with_no_traffic_is_fast(self):
        server = SketchServer(warm_predictor(100), port=0, drain_timeout=30)
        harness = ServerHarness(server)
        started = time.monotonic()
        harness.shutdown()
        assert time.monotonic() - started < 5


class TestLiveIngest:
    def test_generations_advance_with_the_stream_and_drain_checkpoints(
        self, tmp_path
    ):
        from repro.stream.checkpoint import CheckpointManager

        feed = tmp_path / "feed.txt"
        rng = np.random.default_rng(5)
        feed.write_text(
            "".join(f"{u} {v}\n" for u, v in rng.integers(0, 40, size=(300, 2)).tolist())
        )
        runner = StreamRunner(
            FileEdgeSource(feed),
            config=SketchConfig(k=8, seed=2),
            checkpoint_manager=CheckpointManager(tmp_path / "ck"),
            checkpoint_every=10_000,
        )
        server = SketchServer(
            runner=runner,
            port=0,
            refresh_every=0.05,
            ingest_chunk=64,
            idle_wait=0.02,
            keep_history=16,
        )
        harness = ServerHarness(server)
        try:
            deadline = time.monotonic() + 10
            seen = set()
            while time.monotonic() < deadline:
                status, _, body = harness.score([[1, 2]])
                assert status == 200
                seen.add(body["generation"])
                if len(seen) >= 3 and runner.offset >= 300:
                    break
                with feed.open("a") as handle:
                    for u, v in rng.integers(0, 40, size=(40, 2)).tolist():
                        handle.write(f"{u} {v}\n")
                time.sleep(0.05)
            assert len(seen) >= 3
            status, _, ready = harness.get_json("/readyz")
            assert status == 200 and ready["ready"]
        finally:
            harness.shutdown()
        # The drain wrote a final checkpoint at the committed offset.
        restored = CheckpointManager(tmp_path / "ck").load_latest()
        assert restored is not None
        assert restored.offset == runner.offset

    def test_worker_error_surfaces_in_probes(self, tmp_path):
        feed = tmp_path / "feed.txt"
        feed.write_text("1 2\n3 4\n")
        runner = StreamRunner(
            FileEdgeSource(feed), config=SketchConfig(k=8), policy="strict"
        )
        server = SketchServer(
            runner=runner, port=0, refresh_every=0.05, ingest_chunk=8, idle_wait=0.02
        )
        harness = ServerHarness(server)
        try:
            with feed.open("a") as handle:
                handle.write("oops not an edge\n")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, _, ready = harness.get_json("/readyz")
                if status == 503 and "ingest worker failed" in ready["reason"]:
                    break
                time.sleep(0.05)
            assert status == 503
            assert "ingest worker failed" in ready["reason"]
            _, _, health = harness.get_json("/healthz")
            assert "ingest_error" in health
            # Serving continues on the last good generation.
            score_status, _, _ = harness.score([[1, 2]])
            assert score_status == 200
        finally:
            harness.shutdown()


class TestMicroBatching:
    def test_batcher_coalesces_queued_requests(self):
        # Direct asyncio test: requests that queue while the kernel is
        # busy are dispatched together, grouped by generation.
        engine = QueryEngine(warm_predictor(200))
        generation = Generation(
            engine, 1, 0, published_at=0.0, wall_time=0.0
        )
        from repro.obs.registry import MetricsRegistry
        import concurrent.futures

        registry = MetricsRegistry()

        async def scenario():
            executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
            batcher = _ScoreBatcher(executor, registry, max_batch_pairs=65536)
            batcher.start()
            # Enqueue everything before the worker task first runs: one
            # coalesced dispatch must serve all eight.
            futures = [
                asyncio.ensure_future(
                    batcher.score(
                        generation, np.array([[i, i + 1]], dtype=np.int64), "jaccard"
                    )
                )
                for i in range(8)
            ]
            results = await asyncio.gather(*futures)
            await batcher.stop()
            executor.shutdown()
            return results

        results = asyncio.run(scenario())
        dispatches = registry.counter("serve_kernel_dispatches_total").value
        coalesced = registry.counter("serve_coalesced_requests_total").value
        assert dispatches < 8
        assert coalesced >= 2
        expected = engine.score_many(
            np.array([[i, i + 1] for i in range(8)], dtype=np.int64), "jaccard"
        )
        for index, result in enumerate(results):
            assert result.tolist() == [expected[index]]

    def test_batch_split_respects_request_boundaries(self, harness):
        # Concurrent requests of different sizes each get exactly their
        # own scores back.
        engine = QueryEngine(harness.server.predictor)
        batches = [[[i, j] for j in range(2, 2 + size)] for i, size in enumerate([1, 3, 2, 5])]
        results: dict = {}

        def call(index, pairs):
            results[index] = harness.score(pairs)

        threads = [
            threading.Thread(target=call, args=(i, b), daemon=True)
            for i, b in enumerate(batches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        for index, pairs in enumerate(batches):
            status, _, body = results[index]
            assert status == 200
            expected = engine.score_many(np.asarray(pairs), "jaccard")
            assert [row["score"] for row in body["results"]] == expected.tolist()
            assert [[row["u"], row["v"]] for row in body["results"]] == pairs
