"""Serving from recovered state: a query engine built over a
checkpoint-restored predictor must answer bit-identically to one built
over the uninterrupted run.  Extends the crash/recovery suite in
``tests/integration/test_failure_injection.py`` to the read path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.persistence import load_predictor, save_predictor
from repro.exact.measures import MEASURES
from repro.graph.generators import erdos_renyi
from repro.serve import QueryEngine
from repro.stream import CheckpointManager, IteratorEdgeSource, StreamRunner

ALL_MEASURES = sorted(MEASURES)


def _stream(n=400, seed=13):
    return [(e.u, e.v) for e in erdos_renyi(60, n, seed=seed)]


def _reference_predictor(stream, k=32, seed=5):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed))
    for u, v in stream:
        predictor.update(u, v)
    return predictor


@pytest.fixture(scope="module")
def query_batch():
    rng = np.random.default_rng(99)
    pairs = rng.integers(0, 70, size=(500, 2))  # includes unseen + self-pairs
    return pairs.astype(np.int64)


class TestCheckpointRoundTripServing:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_saved_and_loaded_engine_is_bit_identical(
        self, tmp_path, query_batch, measure
    ):
        stream = _stream()
        reference = _reference_predictor(stream)
        save_predictor(reference, tmp_path / "state.npz")
        restored = load_predictor(tmp_path / "state.npz")

        live = QueryEngine(reference).score_many(query_batch, measure)
        recovered = QueryEngine(restored).score_many(query_batch, measure)
        assert np.array_equal(live, recovered)  # bit-identical, not approx


class TestKillAndResumeServing:
    @pytest.mark.parametrize("kill_at", [57, 100, 250])
    def test_resumed_run_serves_identical_scores(
        self, tmp_path, query_batch, kill_at
    ):
        stream = _stream()
        manager = CheckpointManager(tmp_path / f"kill{kill_at}", keep=3)
        victim = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=32, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        victim.run(max_records=kill_at)  # killed without a final checkpoint

        survivor = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=32, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        survivor.resume()
        survivor.run()

        reference = _reference_predictor(stream)
        ref_engine = QueryEngine(reference)
        srv_engine = QueryEngine(survivor.predictor)
        for measure in ("jaccard", "common_neighbors", "adamic_adar"):
            assert np.array_equal(
                ref_engine.score_many(query_batch, measure),
                srv_engine.score_many(query_batch, measure),
            )
        # The pruned top-k rides on the same state, so it agrees too.
        for u in (0, 17, 42):
            assert ref_engine.top_k(u, "jaccard", k=8) == srv_engine.top_k(
                u, "jaccard", k=8
            )
