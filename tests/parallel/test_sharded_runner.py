"""Integration tests for the sharded parallel ingestion pipeline.

The headline contracts:

* a ``workers=N`` run produces a predictor **bit-identical** to serial
  ingestion of the same stream (quarantine and self-loop handling
  included),
* killing a worker mid-run raises
  :class:`~repro.errors.WorkerCrashError`, and a fresh runner resumed
  over the same checkpoint directory completes to the same
  bit-identical predictor,
* a ``max_records`` halt writes no final checkpoints (crash double)
  and resume finishes the stream exactly once.
"""

from __future__ import annotations

import os
import random
import signal

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError, DeadLetterError, WorkerCrashError
from repro.parallel import ShardedRunner
from repro.parallel.worker import shard_directory
from repro.stream import FileEdgeSource, StreamRunner
from repro.stream.sources import EdgeSource

ARRAYS = ("vertex_ids", "values", "witnesses", "update_counts", "degrees")

CONFIG = SketchConfig(k=16, seed=11, degree_mode="exact")


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    """A messy stream: duplicates, self-loops, and malformed lines."""
    path = tmp_path_factory.mktemp("stream") / "edges.txt"
    rng = random.Random(5)
    with open(path, "w") as handle:
        for index in range(4000):
            u, v = rng.randrange(250), rng.randrange(250)
            handle.write(f"{u} {v}\n")
            if index % 500 == 0:
                handle.write(f"{u} {v}\n")  # duplicate arrival
        handle.write("not an edge at all\n")
        handle.write("7 7\n")  # self-loop
        handle.write("-3 4\n")  # negative vertex
    return path


@pytest.fixture(scope="module")
def serial_arrays(edge_file):
    runner = StreamRunner(FileEdgeSource(edge_file), config=CONFIG)
    runner.run()
    return runner.predictor.export_arrays(), runner


def assert_bit_identical(predictor, serial_arrays):
    ours = predictor.export_arrays()
    for name in ARRAYS:
        assert np.array_equal(getattr(ours, name), getattr(serial_arrays, name)), name


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_equals_serial(self, edge_file, serial_arrays, workers):
        arrays, serial = serial_arrays
        runner = ShardedRunner(FileEdgeSource(edge_file), workers=workers, config=CONFIG)
        stats = runner.run()
        assert_bit_identical(runner.predictor, arrays)
        assert runner.predictor.nominal_bytes() == serial.predictor.nominal_bytes()
        assert stats["records_ok"] == serial.records_ok
        assert stats["dead_lettered"] == serial.stats()["dead_lettered"]
        assert stats["source_exhausted"] is True
        assert sum(stats["shard_records"]) == stats["records_ok"]

    def test_quarantine_counters_match_serial(self, edge_file, serial_arrays):
        _, serial = serial_arrays
        runner = ShardedRunner(FileEdgeSource(edge_file), workers=3, config=CONFIG)
        runner.run()
        assert runner.dead_letter_reasons() == serial.dead_letter_reasons()

    def test_shard_label_on_metrics(self, edge_file):
        runner = ShardedRunner(FileEdgeSource(edge_file), workers=2, config=CONFIG)
        runner.run()
        counter = runner.metrics.get("ingest_records_total")
        per_shard = {
            labels["shard"]: series.value
            for labels, series in counter.series()
            if labels["outcome"] == "ok"
        }
        assert set(per_shard) == {"0", "1"}
        assert sum(per_shard.values()) == runner.records_ok
        assert runner.metrics.get("shard_merge_seconds").count == 1
        assert runner.metrics.get("ingest_workers").value == 2


class TestValidation:
    def test_countmin_degrees_rejected_eagerly(self, edge_file):
        with pytest.raises(ConfigurationError, match="exact"):
            ShardedRunner(
                FileEdgeSource(edge_file),
                workers=2,
                config=SketchConfig(k=8, degree_mode="countmin"),
            )

    def test_checkpoint_every_needs_directory(self, edge_file):
        with pytest.raises(ConfigurationError):
            ShardedRunner(
                FileEdgeSource(edge_file), workers=2, config=CONFIG, checkpoint_every=10
            )

    def test_workers_must_be_positive(self, edge_file):
        with pytest.raises(ConfigurationError):
            ShardedRunner(FileEdgeSource(edge_file), workers=0, config=CONFIG)

    def test_run_is_single_shot(self, edge_file):
        runner = ShardedRunner(FileEdgeSource(edge_file), workers=2, config=CONFIG)
        runner.run()
        with pytest.raises(ConfigurationError):
            runner.run()

    def test_strict_policy_raises_on_first_violation(self, edge_file):
        runner = ShardedRunner(
            FileEdgeSource(edge_file), workers=2, config=CONFIG, policy="strict"
        )
        with pytest.raises(DeadLetterError):
            runner.run()


class TestHaltAndResume:
    def test_max_records_halt_writes_no_final_checkpoint_then_resume(
        self, edge_file, serial_arrays, tmp_path
    ):
        arrays, _ = serial_arrays
        ckpt = tmp_path / "ck"
        first = ShardedRunner(
            FileEdgeSource(edge_file),
            workers=3,
            config=CONFIG,
            checkpoint_dir=str(ckpt),
            checkpoint_every=100,
        )
        stats = first.run(max_records=2000)
        assert stats["source_exhausted"] is False
        # Halt is crash-shaped: every shard's checkpointed offset trails
        # what it actually applied (no final checkpoint flushed).
        assert first.offset == 2000

        second = ShardedRunner(
            FileEdgeSource(edge_file),
            workers=3,
            config=CONFIG,
            checkpoint_dir=str(ckpt),
            checkpoint_every=100,
        )
        assert second.resume() is True
        stats = second.run()
        assert stats["source_exhausted"] is True
        assert stats["replayed"] > 0  # the uncheckpointed suffix re-routed
        assert_bit_identical(second.predictor, arrays)

    def test_resume_with_no_checkpoints_returns_false(self, edge_file, tmp_path):
        runner = ShardedRunner(
            FileEdgeSource(edge_file),
            workers=2,
            config=CONFIG,
            checkpoint_dir=str(tmp_path / "empty"),
        )
        assert runner.resume() is False

    def test_resume_needs_checkpoint_dir(self, edge_file):
        runner = ShardedRunner(FileEdgeSource(edge_file), workers=2, config=CONFIG)
        with pytest.raises(ConfigurationError):
            runner.resume()


class _KillOneWorker(EdgeSource):
    """Wrap a source; SIGKILL one shard worker after ``after`` records.

    The kill happens inside the coordinator's routing loop (sources are
    consumed coordinator-side), which is exactly when a real worker
    OOM-kill would land.
    """

    def __init__(self, inner, after: int, victim) -> None:
        self.inner = inner
        self.after = after
        self.victim = victim  # () -> Process
        self.name = f"kill-after-{after}:{inner.name}"

    def records(self, start_offset: int = 0):
        for count, record in enumerate(self.inner.records(start_offset)):
            if count == self.after:
                process = self.victim()
                os.kill(process.pid, signal.SIGKILL)
                process.join()  # make the death visible, not racy
            yield record


class TestWorkerCrashRecovery:
    def test_killed_worker_raises_and_resume_completes_bit_identical(
        self, edge_file, serial_arrays, tmp_path
    ):
        arrays, _ = serial_arrays
        ckpt = tmp_path / "ck"
        holder = {}
        source = _KillOneWorker(
            FileEdgeSource(edge_file), after=2500, victim=lambda: holder["runner"].processes[0]
        )
        runner = ShardedRunner(
            source,
            workers=3,
            config=CONFIG,
            checkpoint_dir=str(ckpt),
            checkpoint_every=50,
            chunk_records=64,
            queue_depth=4,
        )
        holder["runner"] = runner
        with pytest.raises(WorkerCrashError) as crashed:
            runner.run()
        assert crashed.value.shard == 0
        # No zombie workers survive the abort.
        for process in runner.processes:
            process.join(timeout=5.0)
            assert not process.is_alive()
        # Shard 0 checkpointed before dying; its directory is usable.
        assert list(shard_directory(ckpt, 0).glob("checkpoint-*.npz"))

        recovered = ShardedRunner(
            FileEdgeSource(edge_file),
            workers=3,
            config=CONFIG,
            checkpoint_dir=str(ckpt),
            checkpoint_every=50,
        )
        assert recovered.resume() is True
        stats = recovered.run()
        assert stats["source_exhausted"] is True
        assert_bit_identical(recovered.predictor, arrays)

    def test_worker_exception_surfaces_with_traceback(self, edge_file, tmp_path):
        # A plain file squatting on shard 0's checkpoint directory makes
        # that worker's CheckpointManager constructor raise; the
        # coordinator must forward the remote traceback.
        ckpt = tmp_path / "ck"
        ckpt.mkdir()
        shard_directory(ckpt, 0).write_text("not a directory")
        runner = ShardedRunner(
            FileEdgeSource(edge_file),
            workers=2,
            config=CONFIG,
            checkpoint_dir=str(ckpt),
            checkpoint_every=10,
        )
        with pytest.raises(WorkerCrashError) as crashed:
            runner.run()
        assert crashed.value.shard == 0
        assert crashed.value.traceback  # remote format_exc forwarded

    def test_protocol_misuse_forwards_worker_crash_error(self):
        # RL002 sweep: the worker's unknown-message guard raises
        # WorkerCrashError (not bare RuntimeError); the in-worker
        # except still forwards it to the coordinator as a traceback.
        import queue

        from repro.parallel import shard_worker_main

        task_queue: "queue.Queue" = queue.Queue()
        result_queue: "queue.Queue" = queue.Queue()
        task_queue.put(("bogus-kind",))
        shard_worker_main(
            shard=3,
            task_queue=task_queue,
            result_queue=result_queue,
            config=CONFIG,
            checkpoint_dir="",
            checkpoint_every=0,
            keep=1,
            resume=False,
        )
        assert result_queue.get(timeout=1)[0] == "ready"
        kind, shard, forwarded = result_queue.get(timeout=1)
        assert (kind, shard) == ("error", 3)
        assert "WorkerCrashError" in forwarded
        assert "unknown worker message" in forwarded
