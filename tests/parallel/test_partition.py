"""Tests for the deterministic edge→shard hash partition."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.parallel import shard_counts, shard_of


class TestShardOf:
    def test_deterministic_across_calls(self):
        assert shard_of(3, 9, 8, seed=1) == shard_of(3, 9, 8, seed=1)

    def test_endpoint_order_is_canonicalised(self):
        for _ in range(200):
            u, v = random.randrange(10_000), random.randrange(10_000)
            assert shard_of(u, v, 7, seed=3) == shard_of(v, u, 7, seed=3)

    def test_stays_in_range(self):
        for shards in (1, 2, 3, 5, 8):
            for u in range(50):
                assert 0 <= shard_of(u, u + 1, shards) < shards

    def test_single_shard_owns_everything(self):
        assert shard_of(123, 456, 1) == 0

    def test_seed_changes_the_assignment(self):
        pairs = [(u, u + 1) for u in range(300)]
        a = [shard_of(u, v, 4, seed=0) for u, v in pairs]
        b = [shard_of(u, v, 4, seed=1) for u, v in pairs]
        assert a != b

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            shard_of(1, 2, 0)

    def test_hub_vertex_spreads_across_shards(self):
        # A star graph must not starve all but one worker: u % shards
        # style partitions would put every edge of vertex 0 on shard 0.
        counts = shard_counts([(0, v) for v in range(1, 2001)], 4, seed=0)
        assert min(counts) > 0
        assert max(counts) < 2000 * 0.5  # roughly balanced, not captured

    def test_shard_counts_total(self):
        edges = [(u, v) for u in range(30) for v in range(u + 1, 30)]
        assert sum(shard_counts(edges, 5)) == len(edges)
