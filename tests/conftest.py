"""Shared fixtures for the test-suite.

Fixtures build *small, hand-checkable* structures; statistical tests
construct their own larger populations locally so their sample sizes
are visible at the assertion site.
"""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.exact import ExactOracle
from repro.graph import AdjacencyGraph, from_pairs
from repro.hashing import HashBank


@pytest.fixture
def bank() -> HashBank:
    """A mid-size shared hash bank (k=128, fixed seed)."""
    return HashBank(seed=0xFEED, size=128)


@pytest.fixture
def small_bank() -> HashBank:
    """A small bank for tests that inspect slots individually."""
    return HashBank(seed=0xBEEF, size=8)


# The "paper figure 1"-style toy graph used across exact-measure tests:
#
#        0 --- 2 --- 1
#        |  \     /  |
#        |   \   /   |
#        3 --- 4 ----+
#
# Edges: (0,2) (1,2) (0,3) (0,4) (1,4) (3,4)
# Neighborhoods: N(0)={2,3,4} N(1)={2,4} N(2)={0,1} N(3)={0,4} N(4)={0,1,3}
TOY_EDGES = [(0, 2), (1, 2), (0, 3), (0, 4), (1, 4), (3, 4)]


@pytest.fixture
def toy_graph() -> AdjacencyGraph:
    """The documented 5-vertex toy graph (see conftest source)."""
    return AdjacencyGraph.from_edges(TOY_EDGES)


@pytest.fixture
def toy_oracle() -> ExactOracle:
    """Exact oracle loaded with the toy graph's stream."""
    oracle = ExactOracle()
    oracle.process(from_pairs(TOY_EDGES))
    return oracle


@pytest.fixture
def toy_predictor() -> MinHashLinkPredictor:
    """MinHash predictor (k=256) loaded with the toy stream."""
    predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=11))
    predictor.process(from_pairs(TOY_EDGES))
    return predictor
