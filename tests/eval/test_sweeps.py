"""Tests for the declarative sweep runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.eval.sweeps import Sweep, SweepResults


class TestGrid:
    def test_cartesian_product_row_major(self):
        sweep = Sweep({"a": [1, 2], "b": ["x", "y"]})
        assert sweep.grid() == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        assert len(sweep) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Sweep({})
        with pytest.raises(ConfigurationError):
            Sweep({"a": []})


class TestRun:
    def test_scalar_results_stored_under_value(self):
        sweep = Sweep({"k": [1, 2, 3]})
        results = sweep.run(lambda k: k * 10.0)
        assert results.values == ({"value": 10.0}, {"value": 20.0}, {"value": 30.0})

    def test_dict_results_keep_names(self):
        sweep = Sweep({"k": [2]})
        results = sweep.run(lambda k: {"mre": 0.5, "mae": 0.1})
        assert results.value_names() == ["mre", "mae"]

    def test_procedure_receives_keyword_factors(self):
        sweep = Sweep({"k": [4], "dataset": ["d"]})
        seen = {}

        def procedure(k, dataset):
            seen["k"], seen["dataset"] = k, dataset
            return 0.0

        sweep.run(procedure)
        assert seen == {"k": 4, "dataset": "d"}

    def test_progress_hook_called_per_point(self):
        calls = []
        Sweep({"k": [1, 2]}).run(lambda k: 0.0, progress=calls.append)
        assert calls == [{"k": 1}, {"k": 2}]


class TestRendering:
    @pytest.fixture
    def results(self) -> SweepResults:
        sweep = Sweep({"k": [16, 64], "dataset": ["a", "b"]})
        return sweep.run(lambda k, dataset: {"mre": 1.0 / k, "cost": float(k)})

    def test_table_contains_all_points(self, results):
        table = results.table()
        # header + rule + 4 rows = 6 lines (5 newlines, no trailing one).
        assert len(table.splitlines()) == 6
        assert "mre" in table and "cost" in table

    def test_table_with_selected_values(self, results):
        table = results.table(value_names=["mre"])
        assert "cost" not in table

    def test_series_one_curve_per_other_combo(self, results):
        series = results.series(x="k", value="mre")
        assert "dataset=a" in series and "dataset=b" in series

    def test_series_single_factor_uses_value_label(self):
        results = Sweep({"k": [1, 2]}).run(lambda k: float(k))
        series = results.series(x="k", value="value")
        assert "value" in series.splitlines()[0]

    def test_series_unknown_factor_rejected(self, results):
        with pytest.raises(EvaluationError):
            results.series(x="gamma", value="mre")

    def test_best_minimize_and_maximize(self, results):
        factors, score = results.best("mre", minimize=True)
        assert factors["k"] == 64
        assert score == pytest.approx(1 / 64)
        factors, score = results.best("cost", minimize=False)
        assert factors["k"] == 64

    def test_best_missing_value_rejected(self, results):
        with pytest.raises(EvaluationError):
            results.best("latency")


class TestEndToEndSweep:
    def test_real_accuracy_sweep(self):
        """A miniature version of the E3 study, via the Sweep API."""
        from repro.core import MinHashLinkPredictor, SketchConfig
        from repro.eval.candidates import sample_two_hop_pairs
        from repro.eval.experiments import accuracy_profile
        from repro.exact import ExactOracle
        from repro.graph.generators import erdos_renyi

        edges = erdos_renyi(150, 1200, seed=1)
        oracle = ExactOracle()
        oracle.process(edges)
        pairs = sample_two_hop_pairs(oracle.graph, 60, seed=2)

        def study(k):
            predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=3))
            predictor.process(edges)
            return accuracy_profile(predictor, oracle, pairs, ["jaccard"])["jaccard"]

        results = Sweep({"k": [16, 256]}).run(study)
        best, _ = results.best("mre")
        assert best["k"] == 256
