"""Tests for candidate-pair samplers."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval import sample_negative_pairs, sample_random_pairs, sample_two_hop_pairs
from repro.exact import common_neighbors
from repro.graph import AdjacencyGraph
from repro.graph.generators import erdos_renyi


@pytest.fixture
def er_graph():
    return AdjacencyGraph.from_edges(erdos_renyi(300, 1500, seed=1))


class TestTwoHopPairs:
    def test_all_pairs_share_a_neighbor(self, er_graph):
        pairs = sample_two_hop_pairs(er_graph, 100, seed=2)
        assert len(pairs) == 100
        for u, v in pairs:
            assert common_neighbors(er_graph, u, v) >= 1

    def test_non_adjacent_by_default(self, er_graph):
        pairs = sample_two_hop_pairs(er_graph, 100, seed=3)
        assert all(not er_graph.has_edge(u, v) for u, v in pairs)

    def test_adjacent_allowed_when_requested(self):
        triangle = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        pairs = sample_two_hop_pairs(
            triangle, 3, seed=0, require_non_adjacent=False
        )
        assert len(pairs) == 3

    def test_canonical_sorted_distinct(self, er_graph):
        pairs = sample_two_hop_pairs(er_graph, 50, seed=4)
        assert pairs == sorted(set(pairs))
        assert all(u < v for u, v in pairs)

    def test_deterministic(self, er_graph):
        assert sample_two_hop_pairs(er_graph, 20, seed=5) == sample_two_hop_pairs(
            er_graph, 20, seed=5
        )

    def test_impossible_population_raises(self):
        path = AdjacencyGraph.from_edges([(0, 1), (1, 2)])
        # Only one two-hop non-adjacent pair exists: (0, 2).
        with pytest.raises(EvaluationError):
            sample_two_hop_pairs(path, 10, seed=0)

    def test_tiny_graph_rejected(self):
        g = AdjacencyGraph.from_edges([(0, 1)])
        with pytest.raises(EvaluationError):
            sample_two_hop_pairs(g, 1, seed=0)


class TestRandomPairs:
    def test_non_adjacent_distinct(self, er_graph):
        pairs = sample_random_pairs(er_graph, 100, seed=1)
        assert len(pairs) == 100
        assert all(not er_graph.has_edge(u, v) for u, v in pairs)

    def test_too_small_graph_rejected(self):
        with pytest.raises(EvaluationError):
            sample_random_pairs(AdjacencyGraph(), 1, seed=0)


class TestNegativePairs:
    def test_disjoint_from_positives(self, er_graph):
        positives = sample_two_hop_pairs(er_graph, 50, seed=6)
        negatives = sample_negative_pairs(er_graph, positives, ratio=2.0, seed=7)
        assert len(negatives) == 100
        assert not set(negatives) & set(positives)

    def test_hard_negatives_share_neighbors(self, er_graph):
        positives = sample_two_hop_pairs(er_graph, 20, seed=8)
        negatives = sample_negative_pairs(er_graph, positives, seed=9, hard=True)
        for u, v in negatives:
            assert common_neighbors(er_graph, u, v) >= 1

    def test_easy_negatives_allowed(self, er_graph):
        positives = sample_two_hop_pairs(er_graph, 20, seed=10)
        negatives = sample_negative_pairs(er_graph, positives, seed=11, hard=False)
        assert len(negatives) == 20

    def test_ratio_validation(self, er_graph):
        with pytest.raises(EvaluationError):
            sample_negative_pairs(er_graph, [(0, 1)], ratio=0.0)
