"""Tests for the shared experiment machinery."""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import EvaluationError
from repro.eval.experiments import (
    accuracy_profile,
    progressive_accuracy,
    rank_agreement,
    ranking_quality,
    score_pairs,
    temporal_ranking_task,
    timed_ingest,
    timed_queries,
)
from repro.exact import ExactOracle
from repro.graph.generators import chung_lu, planted_partition


@pytest.fixture(scope="module")
def workload():
    edges = chung_lu(n=300, edges=2000, exponent=2.5, seed=1)
    oracle = ExactOracle()
    oracle.process(edges)
    predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=2))
    predictor.process(edges)
    return edges, oracle, predictor


class TestScoringHelpers:
    def test_score_pairs(self, workload):
        _, oracle, _ = workload
        scores = score_pairs(oracle, [(0, 1), (1, 2)], "common_neighbors")
        assert len(scores) == 2
        assert all(s >= 0 for s in scores)

    def test_accuracy_profile_keys(self, workload):
        _, oracle, predictor = workload
        from repro.eval.candidates import sample_two_hop_pairs

        pairs = sample_two_hop_pairs(oracle.graph, 50, seed=3)
        profile = accuracy_profile(predictor, oracle, pairs, ["jaccard", "adamic_adar"])
        assert set(profile) == {"jaccard", "adamic_adar"}
        assert set(profile["jaccard"]) == {"mae", "rmse", "mre"}
        assert profile["jaccard"]["mre"] < 1.0  # k=256 is plenty here


class TestTiming:
    def test_timed_ingest(self, workload):
        edges, _, _ = workload
        result = timed_ingest(MinHashLinkPredictor(SketchConfig(k=16)), edges)
        assert result.edges == len(edges)
        assert result.seconds > 0
        assert result.edges_per_second > 100

    def test_timed_queries(self, workload):
        _, _, predictor = workload
        latency = timed_queries(predictor, [(0, 1)] * 50, "jaccard")
        assert latency > 0

    def test_timed_queries_needs_pairs(self, workload):
        _, _, predictor = workload
        with pytest.raises(EvaluationError):
            timed_queries(predictor, [], "jaccard")


class TestRanking:
    def test_exact_oracle_separates_planted_communities(self):
        edges = planted_partition(
            n=400, communities=8, internal_edges=3600, external_edges=400, seed=4
        )
        train, positives, negatives = temporal_ranking_task(
            edges, train_fraction=0.7, max_positives=200, seed=5
        )
        oracle = ExactOracle()
        oracle.process(train)
        result = ranking_quality(oracle, positives, negatives, "common_neighbors")
        assert result.auc > 0.6  # community structure is predictable
        assert result.method == "exact"
        assert 10 in result.precision

    def test_rank_agreement_high_for_large_k(self, workload):
        _, oracle, predictor = workload
        from repro.eval.candidates import sample_two_hop_pairs

        pairs = sample_two_hop_pairs(oracle.graph, 80, seed=6)
        agreement = rank_agreement(predictor, oracle, pairs, "common_neighbors")
        assert agreement["kendall_tau"] > 0.3
        assert agreement["spearman_rho"] > 0.4

    def test_temporal_ranking_task_shapes(self):
        edges = planted_partition(
            n=300, communities=6, internal_edges=2500, external_edges=300, seed=7
        )
        train, positives, negatives = temporal_ranking_task(
            edges, train_fraction=0.8, negative_ratio=2.0, max_positives=50, seed=8
        )
        assert len(train) == int(len(edges) * 0.8)
        assert 0 < len(positives) <= 50
        assert len(negatives) == 2 * len(positives)


class TestProgressive:
    def test_rows_cover_stream(self):
        edges = chung_lu(n=200, edges=1200, exponent=2.5, seed=9)
        rows = progressive_accuracy(
            lambda: MinHashLinkPredictor(SketchConfig(k=128, seed=10)),
            edges,
            checkpoint_count=4,
            pairs_per_checkpoint=40,
            measures=["jaccard"],
            seed=11,
        )
        assert [row["edges"] for row in rows][-1] == len(edges)
        assert len(rows) >= 4
        assert all(0 <= row["jaccard"] for row in rows)

    def test_checkpoint_validation(self):
        with pytest.raises(EvaluationError):
            progressive_accuracy(
                MinHashLinkPredictor, [], 0, 10, ["jaccard"]
            )
