"""Tests for error-bar calibration and the seed-sweep utility."""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import EvaluationError
from repro.eval.calibration import CoverageReport, coverage_report, seed_sweep
from repro.eval.candidates import sample_two_hop_pairs
from repro.exact import ExactOracle
from repro.graph.generators import chung_lu


@pytest.fixture(scope="module")
def calibration_setup():
    edges = chung_lu(n=400, edges=3000, exponent=2.5, seed=1)
    oracle = ExactOracle()
    oracle.process(edges)
    predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=2))
    predictor.process(edges)
    pairs = sample_two_hop_pairs(oracle.graph, 200, seed=3)
    return edges, oracle, predictor, pairs


class TestCoverage:
    def test_report_structure(self, calibration_setup):
        _, oracle, predictor, pairs = calibration_setup
        report = coverage_report(predictor, oracle, pairs)
        assert isinstance(report, CoverageReport)
        assert report.pairs == len(pairs)
        assert set(report.by_z) == {1.0, 1.96, 3.0}

    def test_coverage_monotone_in_z(self, calibration_setup):
        _, oracle, predictor, pairs = calibration_setup
        report = coverage_report(predictor, oracle, pairs)
        assert report.by_z[1.0] <= report.by_z[1.96] <= report.by_z[3.0]

    def test_wide_intervals_cover_almost_always(self, calibration_setup):
        _, oracle, predictor, pairs = calibration_setup
        report = coverage_report(predictor, oracle, pairs)
        # The z=3 interval should cover the bulk of pairs even with the
        # small-kJ skew (normal would give 99.7%; allow the binomial
        # skew to eat some of it).
        assert report.by_z[3.0] > 0.8

    def test_magnitude_buckets_partition_pairs(self, calibration_setup):
        _, oracle, predictor, pairs = calibration_setup
        report = coverage_report(predictor, oracle, pairs)
        assert report.by_magnitude  # at least one bucket
        assert all(0.0 <= c <= 1.0 for c in report.by_magnitude.values())

    def test_empty_pairs_rejected(self, calibration_setup):
        _, oracle, predictor, _ = calibration_setup
        with pytest.raises(EvaluationError):
            coverage_report(predictor, oracle, [])


class TestSeedSweep:
    def test_reports_mean_and_std_per_pair(self, calibration_setup):
        edges, oracle, _, pairs = calibration_setup
        subset = pairs[:10]
        sweep = seed_sweep(
            lambda seed: MinHashLinkPredictor(SketchConfig(k=64, seed=seed)),
            edges,
            subset,
            "jaccard",
            seeds=range(6),
        )
        assert set(sweep) == set(subset)
        for u, v in subset:
            mean, std = sweep[(u, v)]
            truth = oracle.score(u, v, "jaccard")
            assert std >= 0.0
            # The across-seed mean should bracket the truth loosely.
            assert abs(mean - truth) < 0.3

    def test_std_decreases_with_k(self, calibration_setup):
        edges, _, _, pairs = calibration_setup
        subset = pairs[:8]

        def total_std(k):
            sweep = seed_sweep(
                lambda seed: MinHashLinkPredictor(SketchConfig(k=k, seed=seed)),
                edges,
                subset,
                "jaccard",
                seeds=range(6),
            )
            return sum(std for _, std in sweep.values())

        assert total_std(256) < total_std(16)

    def test_empirical_variance_matches_binomial_formula(self, calibration_setup):
        """Var(Ĵ) = J(1-J)/k — the identity behind every error bar.

        Averaged across pairs, the measured across-seed std must track
        sqrt(J(1-J)/k) evaluated at the exact J.
        """
        edges, oracle, _, pairs = calibration_setup
        subset = [p for p in pairs if oracle.score(p[0], p[1], "jaccard") > 0.02][:12]
        k = 128
        sweep = seed_sweep(
            lambda seed: MinHashLinkPredictor(SketchConfig(k=k, seed=seed)),
            edges,
            subset,
            "jaccard",
            seeds=range(12),
        )
        measured = sum(std for _, std in sweep.values())
        predicted = sum(
            (oracle.score(u, v, "jaccard")
             * (1 - oracle.score(u, v, "jaccard")) / k) ** 0.5
            for u, v in subset
        )
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_needs_two_seeds(self, calibration_setup):
        edges, _, _, pairs = calibration_setup
        with pytest.raises(EvaluationError):
            seed_sweep(
                lambda seed: MinHashLinkPredictor(SketchConfig(k=16, seed=seed)),
                edges,
                pairs[:2],
                "jaccard",
                seeds=[1],
            )
