"""Tests for temporal splitting."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval import prediction_positives, temporal_split
from repro.graph import AdjacencyGraph, Edge, from_pairs


class TestTemporalSplit:
    def test_split_at_fraction(self):
        edges = list(from_pairs([(i, i + 1) for i in range(10)]))
        train, test = temporal_split(edges, 0.7)
        assert len(train) == 7 and len(test) == 3
        assert train + test == edges  # order preserved

    def test_both_sides_non_empty_at_extremes(self):
        edges = list(from_pairs([(0, 1), (1, 2)]))
        train, test = temporal_split(edges, 0.01)
        assert len(train) == 1 and len(test) == 1
        train, test = temporal_split(edges, 0.99)
        assert len(train) == 1 and len(test) == 1

    def test_fraction_validation(self):
        edges = list(from_pairs([(0, 1), (1, 2)]))
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(EvaluationError):
                temporal_split(edges, bad)

    def test_empty_stream_rejected(self):
        with pytest.raises(EvaluationError):
            temporal_split([], 0.5)


class TestPredictionPositives:
    def test_filters_to_legal_pairs(self):
        train_graph = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        test = [
            Edge(0, 2),    # legal: both known, not a train edge
            Edge(0, 1),    # already a train edge
            Edge(0, 99),   # endpoint unknown in training
            Edge(5, 5),    # self loop
            Edge(2, 0),    # duplicate of (0, 2) in other orientation
        ]
        assert prediction_positives(train_graph, test) == [(0, 2)]

    def test_output_canonical_and_sorted(self):
        train_graph = AdjacencyGraph.from_edges([(0, 1), (2, 3), (4, 5)])
        test = [Edge(3, 0), Edge(2, 0), Edge(5, 1)]
        positives = prediction_positives(train_graph, test)
        assert positives == [(0, 2), (0, 3), (1, 5)]

    def test_empty_future(self):
        train_graph = AdjacencyGraph.from_edges([(0, 1)])
        assert prediction_positives(train_graph, []) == []
