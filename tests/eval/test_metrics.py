"""Tests for evaluation metrics, cross-checked against scipy/sklearn
formulas where available."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import EvaluationError
from repro.eval import (
    average_precision,
    error_summary,
    kendall_tau,
    mean_absolute_error,
    mean_relative_error,
    precision_at,
    recall_at,
    roc_auc,
    root_mean_square_error,
    spearman_rho,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestErrorMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [1, 4, 1]) == pytest.approx(4 / 3)

    def test_rmse(self):
        assert root_mean_square_error([0, 0], [3, 4]) == pytest.approx(
            math.sqrt(12.5)
        )

    def test_mre_skips_zero_truths(self):
        assert mean_relative_error([2, 5, 9], [1, 0, 10]) == pytest.approx(
            (1.0 + 0.1) / 2
        )

    def test_mre_all_zero_truths_raises(self):
        with pytest.raises(EvaluationError):
            mean_relative_error([1, 2], [0, 0])

    def test_length_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            mean_absolute_error([1], [1, 2])

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            root_mean_square_error([], [])

    def test_error_summary_nan_on_zero_truths(self):
        summary = error_summary([1.0], [0.0])
        assert summary["mae"] == 1.0
        assert math.isnan(summary["mre"])


class TestAuc:
    def test_perfect_separation(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0]) == 1.0

    def test_inverted_separation(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_random_scores_near_half(self):
        rng = random.Random(0)
        scores = [rng.random() for _ in range(2000)]
        labels = [rng.randrange(2) for _ in range(2000)]
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_count_half(self):
        assert roc_auc([0.5, 0.5], [1, 0]) == 0.5

    def test_matches_mannwhitney(self):
        rng = random.Random(1)
        scores = [rng.gauss(label, 1.0) for label in [0, 1] * 100]
        labels = [0, 1] * 100
        positives = [s for s, l in zip(scores, labels) if l]
        negatives = [s for s, l in zip(scores, labels) if not l]
        u, _ = scipy_stats.mannwhitneyu(positives, negatives)
        assert roc_auc(scores, labels) == pytest.approx(
            u / (len(positives) * len(negatives))
        )

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError):
            roc_auc([0.1, 0.2], [1, 1])


class TestTopN:
    def test_precision_at(self):
        scores = [0.9, 0.8, 0.7, 0.6]
        labels = [1, 0, 1, 0]
        assert precision_at(scores, labels, 1) == 1.0
        assert precision_at(scores, labels, 2) == 0.5
        assert precision_at(scores, labels, 4) == 0.5

    def test_recall_at(self):
        scores = [0.9, 0.8, 0.7, 0.6]
        labels = [1, 0, 1, 0]
        assert recall_at(scores, labels, 1) == 0.5
        assert recall_at(scores, labels, 3) == 1.0

    def test_recall_needs_positives(self):
        with pytest.raises(EvaluationError):
            recall_at([0.5], [0], 1)

    def test_average_precision_perfect(self):
        assert average_precision([0.9, 0.8, 0.1], [1, 1, 0]) == 1.0

    def test_average_precision_textbook_case(self):
        # Positives at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision([0.9, 0.8, 0.7], [1, 0, 1]) == pytest.approx(
            (1 + 2 / 3) / 2
        )

    def test_n_validation(self):
        with pytest.raises(EvaluationError):
            precision_at([0.5], [1], 0)


class TestRankAgreement:
    def test_kendall_matches_scipy(self):
        rng = random.Random(2)
        a = [rng.random() for _ in range(80)]
        b = [x + rng.gauss(0, 0.3) for x in a]
        expected = scipy_stats.kendalltau(a, b).statistic
        assert kendall_tau(a, b) == pytest.approx(expected, abs=1e-9)

    def test_kendall_with_ties_matches_scipy(self):
        rng = random.Random(3)
        a = [rng.randrange(5) for _ in range(60)]
        b = [rng.randrange(5) for _ in range(60)]
        expected = scipy_stats.kendalltau(a, b).statistic
        assert kendall_tau(a, b) == pytest.approx(expected, abs=1e-9)

    def test_spearman_matches_scipy(self):
        rng = random.Random(4)
        a = [rng.random() for _ in range(80)]
        b = [x * x + rng.gauss(0, 0.1) for x in a]
        expected = scipy_stats.spearmanr(a, b).statistic
        assert spearman_rho(a, b) == pytest.approx(expected, abs=1e-9)

    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == 1.0

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == -1.0

    def test_constant_list_raises(self):
        with pytest.raises(EvaluationError):
            kendall_tau([1, 1, 1], [1, 2, 3])
        with pytest.raises(EvaluationError):
            spearman_rho([1, 1, 1], [1, 2, 3])

    def test_too_short_raises(self):
        with pytest.raises(EvaluationError):
            kendall_tau([1], [1])
