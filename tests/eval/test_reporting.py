"""Tests for the plain-text reporters."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval import format_cell, format_series, format_table, sparkline


class TestFormatCell:
    def test_integer_thousands(self):
        assert format_cell(1234567) == "1,234,567"

    def test_float_fixed_precision(self):
        assert format_cell(0.123456) == "0.1235"

    def test_float_scientific_for_extremes(self):
        assert "e" in format_cell(1.5e-7)
        assert format_cell(123456.789) == "1.235e+05"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_string_verbatim(self):
        assert format_cell("minhash") == "minhash"

    def test_bool_not_treated_as_int(self):
        assert format_cell(True) == "True"


class TestFormatTable:
    def test_alignment_and_header(self):
        table = format_table(
            ["name", "count"], [["alpha", 10], ["b", 2000]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "count" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_numeric_columns_right_aligned(self):
        table = format_table(["x"], [[1], [100]])
        rows = table.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_ragged_rows_rejected(self):
        with pytest.raises(EvaluationError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestFormatSeries:
    def test_curves_share_grid(self):
        series = format_series(
            "Fig", "k",
            {"minhash": [(16, 0.3), (32, 0.2)], "exact": [(16, 0.0), (32, 0.0)]},
        )
        lines = series.splitlines()
        assert lines[0] == "Fig"
        assert "minhash" in lines[1] and "exact" in lines[1]
        assert len(lines) == 5

    def test_grid_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            format_series(
                "Fig", "k",
                {"a": [(16, 0.3)], "b": [(32, 0.1)]},
            )

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            format_series("Fig", "k", {})


class TestSparkline:
    def test_shape(self):
        assert sparkline([1, 2, 3, 2, 1]) == "▁▄█▄▁"

    def test_monotone_sequence_monotone_blocks(self):
        line = sparkline(list(range(8)))
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_sequence_mid_height(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_nan_rendered_as_space(self):
        assert sparkline([1.0, float("nan"), 2.0]) == "▁ █"

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_single_value(self):
        assert len(sparkline([3.0])) == 1

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            sparkline([])
