"""Run the doctests embedded in the library's docstrings.

Docstring examples are part of the documentation deliverable; this
test keeps them executable so they cannot rot.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.config
import repro.core.lshindex
import repro.core.predictor
import repro.graph.datasets
import repro.hashing.mixers

MODULES = [
    repro.hashing.mixers,
    repro.core.config,
    repro.core.lshindex,
    repro.core.predictor,
    repro.graph.datasets,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
