"""Integration tests: the full pipeline across modules.

Each test exercises a complete user journey — ingest a dataset stream,
query/rank/evaluate — at a scale small enough for CI but large enough
that the statistics are meaningful.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BiasedMinHashLinkPredictor,
    MinHashLinkPredictor,
    SketchConfig,
    build_predictor,
    memory_report,
)
from repro.eval.candidates import sample_two_hop_pairs
from repro.eval.experiments import (
    accuracy_profile,
    rank_agreement,
    ranking_quality,
    temporal_ranking_task,
)
from repro.exact import ExactOracle
from repro.graph import datasets, deduplicated, from_pairs, shuffled
from repro.graph.generators import chung_lu, planted_partition


@pytest.fixture(scope="module")
def grqc_setup():
    edges = datasets.load("synth-grqc")
    oracle = ExactOracle()
    oracle.process(edges)
    predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=42))
    predictor.process(edges)
    return edges, oracle, predictor


class TestAccuracyPipeline:
    def test_paper_measures_within_sane_error(self, grqc_setup):
        _, oracle, predictor = grqc_setup
        pairs = sample_two_hop_pairs(oracle.graph, 250, seed=1)
        profile = accuracy_profile(
            predictor, oracle, pairs,
            ["jaccard", "common_neighbors", "adamic_adar"],
        )
        for measure, summary in profile.items():
            assert summary["mre"] < 0.6, measure

    def test_ranking_agreement_with_exact(self, grqc_setup):
        _, oracle, predictor = grqc_setup
        # Two-hop pairs on a sparse graph have small, heavily tied CN
        # values (mostly 1), which caps achievable rank agreement; the
        # estimated ranking must still correlate clearly.
        pairs = sample_two_hop_pairs(oracle.graph, 150, seed=2)
        agreement = rank_agreement(predictor, oracle, pairs, "common_neighbors")
        assert agreement["spearman_rho"] > 0.35
        assert agreement["kendall_tau"] > 0.25

    def test_sketch_is_constant_space_per_vertex(self, grqc_setup):
        _, _, predictor = grqc_setup
        report = memory_report(predictor)
        expected = predictor.config.bytes_per_vertex() + 8
        assert report.nominal_bytes_per_vertex == pytest.approx(expected, rel=0.01)


class TestTemporalPrediction:
    def test_sketch_tracks_exact_on_future_links(self):
        edges = planted_partition(
            n=600, communities=10, internal_edges=5400, external_edges=600, seed=3
        )
        train, positives, negatives = temporal_ranking_task(
            edges, train_fraction=0.75, max_positives=250, seed=4
        )
        oracle = ExactOracle()
        oracle.process(train)
        predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=5))
        predictor.process(train)
        exact_result = ranking_quality(oracle, positives, negatives, "common_neighbors")
        sketch_result = ranking_quality(
            predictor, positives, negatives, "common_neighbors"
        )
        assert exact_result.auc > 0.8  # community structure predicts well
        # The sketch should recover most of the exact method's AUC.
        assert sketch_result.auc > exact_result.auc - 0.1


class TestMethodsAgreeAtLargeBudgets:
    def test_all_methods_converge_on_easy_instance(self):
        edges = chung_lu(n=300, edges=1800, exponent=2.5, seed=6)
        oracle = ExactOracle()
        oracle.process(edges)
        pairs = sample_two_hop_pairs(oracle.graph, 60, seed=7)
        config = SketchConfig(k=1024, seed=8)
        methods = {
            "minhash": build_predictor("minhash", config),
            "neighbor_reservoir": build_predictor("neighbor_reservoir", config),
            "edge_reservoir": build_predictor(
                "edge_reservoir", config, expected_vertices=300
            ),
        }
        for predictor in methods.values():
            predictor.process(edges)
        for u, v in pairs[:20]:
            truth = oracle.score(u, v, "common_neighbors")
            for name, predictor in methods.items():
                estimate = predictor.score(u, v, "common_neighbors")
                assert estimate == pytest.approx(truth, abs=max(2.5, truth)), name


class TestStreamHygiene:
    def test_dedup_makes_multi_edge_stream_safe(self):
        base = datasets.load("synth-grqc")[:4000]
        noisy = shuffled(list(base) * 3, seed=9)  # every edge thrice
        clean_predictor = MinHashLinkPredictor(SketchConfig(k=128, seed=10))
        clean_predictor.process(from_pairs([(e.u, e.v) for e in base]))
        dedup_predictor = MinHashLinkPredictor(SketchConfig(k=128, seed=10))
        dedup_predictor.process(deduplicated(noisy, expected_edges=10000))
        # Degrees (and hence CN estimates) must agree on almost all
        # vertices (Bloom dedup has a tiny false-positive drop rate).
        sample_vertices = [e.u for e in base[:200]]
        disagreements = sum(
            1
            for v in sample_vertices
            if clean_predictor.degree(v) != dedup_predictor.degree(v)
        )
        assert disagreements <= 4

    def test_biased_and_uniform_predictors_coexist(self):
        edges = datasets.load("synth-grqc")[:3000]
        uniform = MinHashLinkPredictor(SketchConfig(k=128, seed=11))
        biased = BiasedMinHashLinkPredictor(SketchConfig(k=128, seed=11))
        oracle = ExactOracle()
        for predictor in (uniform, biased, oracle):
            predictor.process(edges)
        pairs = sample_two_hop_pairs(oracle.graph, 40, seed=12)
        for u, v in pairs:
            truth = oracle.score(u, v, "adamic_adar")
            assert uniform.score(u, v, "adamic_adar") >= 0.0
            assert biased.score(u, v, "adamic_adar") >= 0.0
            if truth == 0:
                continue
