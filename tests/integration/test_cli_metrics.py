"""The CLI's observability surface: ``--metrics-out``, ``--metrics-every``
and the ``monitor`` subcommand, end to end through ``main()``."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi
from repro.obs import MetricsRegistry, snapshot
from repro.obs.export import SNAPSHOT_SCHEMA


def write_stream(path, n_vertices=30, n_edges=80, seed=3):
    write_edge_list(path, erdos_renyi(n_vertices, n_edges, seed=seed))


class TestParser:
    def test_metrics_flags_on_ingest_and_query(self):
        args = build_parser().parse_args(
            ["ingest", "synth-grqc", "--metrics-out", "m.jsonl", "--metrics-every", "5"]
        )
        assert args.metrics_out == "m.jsonl"
        assert args.metrics_every == 5
        args = build_parser().parse_args(
            ["query", "synth-grqc", "--vertex", "0", "--metrics-out", "m.jsonl"]
        )
        assert args.metrics_out == "m.jsonl"

    def test_monitor_takes_a_metrics_file(self):
        args = build_parser().parse_args(["monitor", "m.jsonl"])
        assert args.metrics_file == "m.jsonl"


class TestIngestMetrics:
    def test_metrics_out_writes_samples(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path)
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            [
                "ingest",
                str(path),
                "--k",
                "16",
                "--metrics-out",
                str(metrics),
                "--metrics-every",
                "20",
            ]
        )
        assert code == 0
        lines = [json.loads(line) for line in metrics.read_text().splitlines()]
        assert len(lines) >= 2  # periodic samples plus the final one
        assert all(line["schema"] == SNAPSHOT_SCHEMA for line in lines)
        final = {i["name"]: i for i in lines[-1]["instruments"]}
        records = {
            tuple(s["labels"].items()): s["value"]
            for s in final["ingest_records_total"]["series"]
        }
        assert records[(("outcome", "ok"),)] == 80
        assert "metrics:" in capsys.readouterr().out

    def test_metrics_every_requires_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path)
        assert main(["ingest", str(path), "--metrics-every", "5"]) == 2
        assert "--metrics-out" in capsys.readouterr().err


class TestQueryMetrics:
    def test_query_metrics_round_trip_through_monitor(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path)
        metrics = tmp_path / "metrics.jsonl"
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n1 2\n2 3\n")
        code = main(
            [
                "query",
                str(path),
                "--pairs-file",
                str(pairs),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["monitor", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "query_pairs_scored_total" in out

    def test_query_table_prints_trace_tree(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path)
        assert main(["query", str(path), "--vertex", "0", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "score" in out


class TestMonitor:
    def test_renders_scalar_and_histogram_tables(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events").inc(3)
        registry.histogram("latency_seconds", "Latency", buckets=(0.1, 1.0)).observe(0.05)
        snap_path = tmp_path / "snap.json"
        snap_path.write_text(json.dumps(snapshot(registry, timestamp=0.0)))
        assert main(["monitor", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "events_total" in out
        assert "latency_seconds" in out
        assert "p95" in out

    def test_reads_last_line_of_jsonl(self, tmp_path, capsys):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        lines = []
        for total in (1, 5):
            counter.inc(total - counter.value)
            lines.append(json.dumps(snapshot(registry, timestamp=0.0)))
        path = tmp_path / "m.jsonl"
        path.write_text("\n".join(lines) + "\n")
        assert main(["monitor", str(path)]) == 0
        assert "5" in capsys.readouterr().out

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "absent.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_non_snapshot_json_errors(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a snapshot"}')
        assert main(["monitor", str(path)]) == 2
        assert "snapshot" in capsys.readouterr().err

    def test_non_json_errors(self, tmp_path, capsys):
        path = tmp_path / "junk.txt"
        path.write_text("definitely not json\n")
        assert main(["monitor", str(path)]) == 2
        assert "not JSON" in capsys.readouterr().err


class TestMonitorUrl:
    """``monitor --url`` — scraping a live server instead of a file."""

    def test_scrapes_live_server(self, capsys):
        from repro.serve.server import SketchServer
        from tests.serve.test_server import ServerHarness, warm_predictor

        harness = ServerHarness(SketchServer(warm_predictor(), port=0))
        try:
            # One scored request so the counters are non-trivial.
            harness.score([[1, 2]])
            url = f"http://127.0.0.1:{harness.server.port}/metrics"
            assert main(["monitor", "--url", url]) == 0
            out = capsys.readouterr().out
            assert url in out  # the table is titled with its source
            assert "http_requests_total" in out
            assert "serve_generation" in out
        finally:
            harness.shutdown()

    def test_file_and_url_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot(MetricsRegistry(), timestamp=0.0)))
        assert main(["monitor", str(path), "--url", "http://127.0.0.1:1/metrics"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_neither_file_nor_url_is_an_error(self, capsys):
        assert main(["monitor"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreachable_url_is_rc2_not_traceback(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        assert main(["monitor", "--url", f"http://127.0.0.1:{dead_port}/metrics"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
