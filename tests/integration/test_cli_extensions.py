"""Tests for the extension CLI commands (discover, triangles,
checkpointing through predict)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi, planted_partition


@pytest.fixture
def community_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(
        path,
        planted_partition(
            n=200, communities=4, internal_edges=2500, external_edges=100, seed=1
        ),
    )
    return str(path)


class TestDiscover:
    def test_runs_and_prints_pairs(self, community_file, capsys):
        assert main(["discover", community_file, "--k", "64", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Most similar vertex pairs" in out

    def test_threshold_changes_banding(self, community_file, capsys):
        assert (
            main(["discover", community_file, "--k", "64", "--threshold", "0.3"]) == 0
        )
        low = capsys.readouterr().out
        assert main(["discover", community_file, "--k", "64", "--threshold", "0.9"]) == 0
        high = capsys.readouterr().out
        assert low.splitlines()[0] != high.splitlines()[0]


class TestTriangles:
    def test_estimate_only(self, community_file, capsys):
        assert main(["triangles", community_file, "--k", "128"]) == 0
        out = capsys.readouterr().out
        assert "streaming triangle estimate" in out
        assert "exact" not in out

    def test_with_exact_comparison(self, community_file, capsys):
        assert main(["triangles", community_file, "--k", "128", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "exact triangles" in out
        assert "relative error" in out


class TestCheckpointFlow:
    def test_save_then_resume(self, tmp_path, capsys):
        first = tmp_path / "phase1.txt"
        second = tmp_path / "phase2.txt"
        stream = erdos_renyi(60, 400, seed=2)
        write_edge_list(first, stream[:200])
        write_edge_list(second, stream[200:])
        checkpoint = str(tmp_path / "state.npz")

        code = main(
            [
                "predict",
                str(first),
                "--k",
                "64",
                "--candidates",
                "30",
                "--top",
                "3",
                "--save-checkpoint",
                checkpoint,
            ]
        )
        assert code == 0
        assert "checkpoint:" in capsys.readouterr().out

        code = main(
            [
                "predict",
                str(second),
                "--candidates",
                "30",
                "--top",
                "3",
                "--load-checkpoint",
                checkpoint,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top 3 predicted links" in out
