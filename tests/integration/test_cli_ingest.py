"""Tests for the ``ingest`` subcommand: the CLI face of the
fault-tolerant ingestion runtime."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import Edge, write_edge_list
from repro.graph.generators import erdos_renyi


def write_stream(path, n_vertices=30, n_edges=80, seed=3):
    edges = erdos_renyi(n_vertices, n_edges, seed=seed)
    write_edge_list(path, edges)
    return edges


class TestParser:
    def test_ingest_defaults(self):
        args = build_parser().parse_args(["ingest", "synth-grqc"])
        assert args.checkpoint_every == 1000
        assert args.policy == "quarantine"
        assert args.max_retries == 5
        assert not args.resume


class TestIngest:
    def test_clean_file_reports_stats(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path)
        assert main(["ingest", str(path), "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "records_in" in out
        assert "dead_lettered" in out

    def test_dirty_file_quarantines_and_reports_reasons(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nbad line here\n2 2\n3 4\n")
        dead = tmp_path / "dead.jsonl"
        code = main(
            ["ingest", str(path), "--k", "8", "--dead-letter", str(dead)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dead_letter[non_integer_vertex]" in out
        assert "dead_letter[self_loop]" in out
        entries = [json.loads(line) for line in dead.read_text().splitlines()]
        assert {e["reason"] for e in entries} == {"non_integer_vertex", "self_loop"}

    def test_strict_policy_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nnot parseable\n")
        code = main(["ingest", str(path), "--k", "8", "--policy", "strict"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_resume_cycle(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path, n_edges=60)
        ckpt = tmp_path / "ckpt"
        # First run: consume 40 records with cadence 20 -> checkpoints.
        code = main(
            [
                "ingest", str(path), "--k", "16",
                "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "20",
                "--max-records", "40",
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert list(ckpt.glob("checkpoint-*.npz"))
        # Second run resumes and finishes the stream.
        code = main(
            [
                "ingest", str(path), "--k", "16",
                "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "20",
                "--resume",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from generation" in out

    def test_resume_without_dir_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_stream(path)
        assert main(["ingest", str(path), "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_unknown_source_is_an_error(self, capsys):
        assert main(["ingest", "no-such-dataset"]) == 2
        assert "neither" in capsys.readouterr().err

    def test_dataset_source_works(self, capsys):
        assert main(["ingest", "synth-grqc", "--k", "16"]) == 0
        assert "source_exhausted" in capsys.readouterr().out
