"""Tests for the ``casebook`` subcommand and the ingest policy flags."""

from __future__ import annotations

from repro.cli import build_parser, main


class TestParser:
    def test_casebook_defaults(self):
        args = build_parser().parse_args(["casebook"])
        assert not args.check
        assert args.per_case == 2
        assert args.hub_degree_limit == 6
        assert args.check_workers == 0
        assert not args.write_corpus

    def test_ingest_gains_policy_flags(self):
        args = build_parser().parse_args(
            ["ingest", "synth-grqc", "--case-policy", "normalize",
             "--hub-degree-limit", "10"]
        )
        assert args.case_policy == "normalize"
        assert args.hub_degree_limit == 10


class TestCasebookCommand:
    def test_taxonomy_table_lists_all_cases(self, capsys):
        assert main(["casebook"]) == 0
        out = capsys.readouterr().out
        for reason in ("bad_arity", "duplicate_edge", "hub_anomaly",
                       "mixed_delimiter", "nonfinite_timestamp"):
            assert reason in out

    def test_check_passes_serially(self, capsys):
        assert main(["casebook", "--check"]) == 0
        out = capsys.readouterr().out
        assert "casebook check OK" in out
        assert "PASS" in out and "FAIL" not in out
        assert "MISMATCH" not in out

    def test_check_passes_sharded(self, capsys):
        assert main(
            ["casebook", "--check", "--check-workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "casebook check OK" in out
        assert out.count("PASS") == 4  # serial + sharded, x2 convergences

    def test_write_corpus_emits_hostile_lines(self, tmp_path, capsys):
        target = tmp_path / "hostile.txt"
        assert main(["casebook", "--write-corpus", str(target)]) == 0
        lines = target.read_text(encoding="utf-8").splitlines()
        assert len(lines) > 40  # backbone + injections
        assert any("," in line for line in lines)  # mixed delimiters present

    def test_written_corpus_round_trips_through_ingest(self, tmp_path, capsys):
        target = tmp_path / "hostile.txt"
        assert main(["casebook", "--write-corpus", str(target)]) == 0
        capsys.readouterr()
        assert main(
            ["ingest", str(target), "--k", "16",
             "--case-policy", "normalize", "--hub-degree-limit", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "normalized[duplicate_edge]" in out
        assert "normalized[mixed_delimiter]" in out
        assert "dead_letter[bad_arity]" in out  # unrepairable fallback


class TestIngestPolicyFlags:
    def test_bad_case_policy_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        assert main(
            ["ingest", str(path), "--case-policy", "bogus_case=normalize"]
        ) == 2
        err = capsys.readouterr().err
        assert "bogus_case" in err

    def test_bad_mode_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert main(["ingest", str(path), "--case-policy", "retry"]) == 2

    def test_strict_policy_fails_fast_with_reason(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n")
        assert main(
            ["ingest", str(path), "--k", "16", "--case-policy", "strict"]
        ) == 2
        assert "already accepted earlier" in capsys.readouterr().err

    def test_legacy_ingest_output_unchanged_without_flags(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n1 2\n")  # duplicate passes: no guard
        assert main(["ingest", str(path), "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "records_ok" in out
        assert "normalized[" not in out

    def test_hub_degree_limit_alone_arms_the_guard(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("".join(f"0 {v}\n" for v in range(1, 6)))
        assert main(
            ["ingest", str(path), "--k", "16", "--hub-degree-limit", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "dead_letter[hub_anomaly]" in out
