"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph import Edge, write_edge_list


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate", "synth-grqc"])
        assert args.method == "minhash"
        assert args.k == 128


class TestCommands:
    def test_datasets_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "synth-facebook" in out
        assert "ego-Facebook" in out

    def test_stats_on_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(path, [Edge(0, 1), Edge(1, 2), Edge(0, 1)])
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out

    def test_predict_on_small_file(self, tmp_path, capsys):
        from repro.graph.generators import erdos_renyi

        path = tmp_path / "g.txt"
        write_edge_list(path, erdos_renyi(40, 100, seed=1))
        code = main(
            ["predict", str(path), "--candidates", "20", "--top", "5", "--k", "32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adamic_adar" in out

    def test_evaluate_on_dataset(self, capsys):
        code = main(
            [
                "evaluate",
                "synth-grqc",
                "--k",
                "64",
                "--pairs",
                "100",
                "--measures",
                "jaccard",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean rel err" in out

    def test_unknown_source_reports_error(self, capsys):
        assert main(["stats", "no-such-dataset"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_exact_method_supported(self, tmp_path, capsys):
        from repro.graph.generators import erdos_renyi

        path = tmp_path / "g.txt"
        write_edge_list(path, erdos_renyi(40, 100, seed=2))
        assert (
            main(["evaluate", str(path), "--method", "exact", "--pairs", "5"]) == 0
        )
        out = capsys.readouterr().out
        assert "0.0000" in out  # exact method has zero error
