"""Failure-injection tests: corrupted inputs, hostile values, truncated
state.  A streaming system runs unattended; every failure here must be
a *loud, typed* error (or a documented graceful behaviour), never a
silent wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.persistence import load_predictor, save_predictor
from repro.errors import ConfigurationError, ReproError, StreamFormatError
from repro.graph import from_pairs, read_edge_list
from tests.conftest import TOY_EDGES


class TestCorruptedCheckpoints:
    def test_truncated_file_raises(self, tmp_path):
        predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=1))
        predictor.process(from_pairs(TOY_EDGES))
        path = tmp_path / "state.npz"
        save_predictor(predictor, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):  # zipfile/numpy corruption error
            load_predictor(path)

    def test_wrong_file_type_raises(self, tmp_path):
        path = tmp_path / "state.npz"
        path.write_text("this is not a checkpoint")
        with pytest.raises(Exception):
            load_predictor(path)

    def test_missing_field_raises(self, tmp_path):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=2))
        predictor.process(from_pairs(TOY_EDGES))
        path = tmp_path / "state.npz"
        save_predictor(predictor, path)
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        del fields["values"]
        np.savez_compressed(path, **fields)
        with pytest.raises(KeyError):
            load_predictor(path)


class TestHostileStreamFiles:
    def test_binary_garbage_mid_file(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_bytes(b"0 1\n\xff\xfe garbage \x00\n2 3\n")
        with pytest.raises((StreamFormatError, UnicodeDecodeError)):
            read_edge_list(path)

    def test_huge_field_count(self, tmp_path):
        path = tmp_path / "wide.txt"
        path.write_text("0 1 2 3 4 5 6 7 8 9\n")
        with pytest.raises(StreamFormatError):
            read_edge_list(path)

    def test_float_vertex_ids_rejected(self, tmp_path):
        path = tmp_path / "floats.txt"
        path.write_text("1.5 2.5\n")
        with pytest.raises(StreamFormatError):
            read_edge_list(path)

    def test_empty_file_is_empty_stream(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_edge_list(path) == []

    def test_comment_only_file(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# nothing\n# here\n")
        assert read_edge_list(path) == []


class TestHostileUpdates:
    def test_negative_vertex_rejected_everywhere(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=3))
        with pytest.raises(ConfigurationError):
            predictor.update(-1, 2)
        with pytest.raises(ConfigurationError):
            predictor.update(1, -2)

    def test_huge_vertex_ids_work(self):
        # Ids up to 2**62 survive the int64 witness storage; queries
        # behave normally.
        predictor = MinHashLinkPredictor(SketchConfig(k=32, seed=4))
        big = 2**62
        predictor.update(big, big - 1)
        predictor.update(big, big - 2)
        predictor.update(big - 3, big - 1)
        predictor.update(big - 3, big - 2)
        assert predictor.score(big, big - 3, "common_neighbors") >= 0.0
        assert predictor.degree(big) == 2

    def test_errors_are_catchable_as_repro_error(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=5))
        with pytest.raises(ReproError):
            predictor.update(3, 3)
        with pytest.raises(ReproError):
            predictor.score(0, 1, "nonsense_measure")


class TestQueryUnderWeirdStates:
    def test_query_before_any_update(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=6))
        assert predictor.score(1, 2, "adamic_adar") == 0.0
        assert predictor.nominal_bytes() == 0
        assert predictor.bytes_per_vertex() == 0.0

    def test_query_pair_with_self(self):
        # Self-pairs are degenerate but must not crash: J(u,u)=1 by
        # sketch identity; CN clamps to the degree.
        predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=7))
        predictor.process(from_pairs(TOY_EDGES))
        assert predictor.score(0, 0, "jaccard") == 1.0
        assert predictor.score(0, 0, "common_neighbors") <= predictor.degree(0)
