"""Failure-injection tests: corrupted inputs, hostile values, truncated
state.  A streaming system runs unattended; every failure here must be
a *loud, typed* error (or a documented graceful behaviour), never a
silent wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.persistence import load_predictor, save_predictor
from repro.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    ReproError,
    SketchStateError,
    StreamFormatError,
)
from repro.graph import from_pairs, read_edge_list
from tests.conftest import TOY_EDGES


class TestCorruptedCheckpoints:
    def test_truncated_file_raises(self, tmp_path):
        predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=1))
        predictor.process(from_pairs(TOY_EDGES))
        path = tmp_path / "state.npz"
        save_predictor(predictor, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_predictor(path)

    def test_wrong_file_type_raises(self, tmp_path):
        path = tmp_path / "state.npz"
        path.write_text("this is not a checkpoint")
        with pytest.raises(CheckpointCorruptError):
            load_predictor(path)

    def test_missing_field_raises(self, tmp_path):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=2))
        predictor.process(from_pairs(TOY_EDGES))
        path = tmp_path / "state.npz"
        save_predictor(predictor, path)
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        del fields["values"]
        np.savez_compressed(path, **fields)
        # Deleting a payload field invalidates the embedded checksum, so
        # the tamper surfaces as typed corruption, never a deep KeyError.
        with pytest.raises(SketchStateError):
            load_predictor(path)


class TestHostileStreamFiles:
    def test_binary_garbage_mid_file(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_bytes(b"0 1\n\xff\xfe garbage \x00\n2 3\n")
        with pytest.raises((StreamFormatError, UnicodeDecodeError)):
            read_edge_list(path)

    def test_huge_field_count(self, tmp_path):
        path = tmp_path / "wide.txt"
        path.write_text("0 1 2 3 4 5 6 7 8 9\n")
        with pytest.raises(StreamFormatError):
            read_edge_list(path)

    def test_float_vertex_ids_rejected(self, tmp_path):
        path = tmp_path / "floats.txt"
        path.write_text("1.5 2.5\n")
        with pytest.raises(StreamFormatError):
            read_edge_list(path)

    def test_empty_file_is_empty_stream(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_edge_list(path) == []

    def test_comment_only_file(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# nothing\n# here\n")
        assert read_edge_list(path) == []


class TestHostileUpdates:
    def test_negative_vertex_rejected_everywhere(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=3))
        with pytest.raises(ConfigurationError):
            predictor.update(-1, 2)
        with pytest.raises(ConfigurationError):
            predictor.update(1, -2)

    def test_huge_vertex_ids_work(self):
        # Ids up to 2**62 survive the int64 witness storage; queries
        # behave normally.
        predictor = MinHashLinkPredictor(SketchConfig(k=32, seed=4))
        big = 2**62
        predictor.update(big, big - 1)
        predictor.update(big, big - 2)
        predictor.update(big - 3, big - 1)
        predictor.update(big - 3, big - 2)
        assert predictor.score(big, big - 3, "common_neighbors") >= 0.0
        assert predictor.degree(big) == 2

    def test_errors_are_catchable_as_repro_error(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=5))
        with pytest.raises(ReproError):
            predictor.update(3, 3)
        with pytest.raises(ReproError):
            predictor.score(0, 1, "nonsense_measure")


class TestKillAndResume:
    """SIGKILL-equivalent scenarios for the checkpointed runtime: a
    crash at the worst possible moment must never lose the last good
    checkpoint, and the resumed run must equal a sequential reference.
    """

    @staticmethod
    def _stream(n=400, seed=13):
        from repro.graph.generators import erdos_renyi

        return [(e.u, e.v) for e in erdos_renyi(60, n, seed=seed)]

    @staticmethod
    def _reference_scores(pairs_stream, k=32, seed=5):
        predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed))
        for u, v in pairs_stream:
            predictor.update(u, v)
        return predictor

    def test_torn_temp_file_mid_checkpoint_is_harmless(self, tmp_path):
        """Simulate a kill mid-write: a truncated temp file sits beside
        the good generations.  Resume must ignore it, use the newest
        durable generation, and the next save must sweep the stray."""
        from repro.stream import CheckpointManager, IteratorEdgeSource, StreamRunner

        stream = self._stream()
        manager = CheckpointManager(tmp_path, keep=3)
        runner = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=32, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        runner.run(max_records=250)  # generations 1 and 2 written

        # The torn write: a half-copied temp file from a killed writer.
        good = manager.directory / "checkpoint-2.npz"
        torn = manager.directory / f".checkpoint-3.npz.tmp-{99999}"
        torn.write_bytes(good.read_bytes()[:100])

        resumed = StreamRunner(
            IteratorEdgeSource(stream),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        assert resumed.resume()
        assert resumed.resumed_from == 2
        assert resumed.offset == 200
        resumed.run()

        reference = self._reference_scores(stream)
        for vertex, sketch in reference._sketches.items():
            assert np.array_equal(sketch.values, resumed.predictor._sketches[vertex].values)
        assert not torn.exists()  # swept by the post-resume checkpoints

    def test_resume_falls_back_to_generation_n_minus_1(self, tmp_path):
        """Truncate the newest finished generation: load_latest must
        fall back to generation N-1 and the finished run must still
        equal the sequential reference."""
        from repro.stream import CheckpointManager, IteratorEdgeSource, StreamRunner

        stream = self._stream()
        manager = CheckpointManager(tmp_path, keep=5)
        runner = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=32, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        runner.run(max_records=310)  # generations 1..3

        newest = manager.directory / "checkpoint-3.npz"
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) // 3])

        resumed = StreamRunner(
            IteratorEdgeSource(stream),
            checkpoint_manager=manager,
        )
        assert resumed.resume()
        assert resumed.resumed_from == 2
        assert resumed.offset == 200
        resumed.run()

        reference = self._reference_scores(stream)
        assert resumed.predictor.vertex_count == reference.vertex_count
        for vertex, sketch in reference._sketches.items():
            restored = resumed.predictor._sketches[vertex]
            assert np.array_equal(sketch.values, restored.values)
            assert np.array_equal(sketch.witnesses, restored.witnesses)
            assert resumed.predictor.degree(vertex) == reference.degree(vertex)

    def test_all_generations_corrupt_raises(self, tmp_path):
        from repro.stream import CheckpointManager, IteratorEdgeSource, StreamRunner

        stream = self._stream(n=150)
        manager = CheckpointManager(tmp_path, keep=4)
        runner = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=16, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=50,
        )
        runner.run()
        for path in manager.directory.glob("checkpoint-*.npz"):
            path.write_bytes(path.read_bytes()[:64])
        fresh = StreamRunner(IteratorEdgeSource(stream), checkpoint_manager=manager)
        with pytest.raises(CheckpointCorruptError):
            fresh.resume()

    @pytest.mark.parametrize("kill_at", [1, 99, 100, 101, 399])
    def test_kill_at_any_point_scores_equal_reference(self, tmp_path, kill_at):
        """The acceptance property: kill after any number of consumed
        records, resume from the latest checkpoint, and final scores are
        bit-identical to the uninterrupted run."""
        from repro.stream import CheckpointManager, IteratorEdgeSource, StreamRunner

        stream = self._stream()
        manager = CheckpointManager(tmp_path / f"kill{kill_at}", keep=3)
        victim = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=32, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        victim.run(max_records=kill_at)  # stops without a final checkpoint

        survivor = StreamRunner(
            IteratorEdgeSource(stream),
            config=SketchConfig(k=32, seed=5),
            checkpoint_manager=manager,
            checkpoint_every=100,
        )
        survivor.resume()  # False (fresh start) below the first cadence
        survivor.run()

        reference = self._reference_scores(stream)
        for u, v in ((0, 1), (2, 5), (10, 20), (30, 40)):
            for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                assert survivor.predictor.score(u, v, measure) == reference.score(
                    u, v, measure
                )


class TestQueryUnderWeirdStates:
    def test_query_before_any_update(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=6))
        assert predictor.score(1, 2, "adamic_adar") == 0.0
        assert predictor.nominal_bytes() == 0
        assert predictor.bytes_per_vertex() == 0.0

    def test_query_pair_with_self(self):
        # Self-pairs are degenerate but must not crash: J(u,u)=1 by
        # sketch identity; CN clamps to the degree.
        predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=7))
        predictor.process(from_pairs(TOY_EDGES))
        assert predictor.score(0, 0, "jaccard") == 1.0
        assert predictor.score(0, 0, "common_neighbors") <= predictor.degree(0)
