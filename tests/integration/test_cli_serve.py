"""Subprocess-level tests for the ``serve`` subcommand.

The operator contract is process-shaped: an announce line with the
bound URL on stdout, exit code 0 after a SIGTERM drain, and rc=2 with
a clear one-line error (never a traceback) when the target is missing
or the flag combination is incoherent.  In-process ``main([...])``
calls cannot pin the signal path down, so these run the real entry
point in a child process.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(*argv, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=cli_env(),
        timeout=timeout,
    )


@pytest.fixture()
def edge_file(tmp_path):
    import numpy as np

    path = tmp_path / "edges.txt"
    rng = np.random.default_rng(11)
    with path.open("w", encoding="utf-8") as handle:
        for u, v in rng.integers(0, 40, size=(400, 2)).tolist():
            handle.write(f"{u} {v}\n")
    return path


@pytest.fixture()
def checkpoint_dir(tmp_path, edge_file):
    directory = tmp_path / "ckpt"
    proc = run_cli(
        "ingest", str(edge_file), "--k", "16",
        "--checkpoint-dir", str(directory), "--checkpoint-every", "100",
    )
    assert proc.returncode == 0, proc.stderr
    return directory


class ServeProcess:
    """``serve`` in a child process, port parsed from the announce line."""

    def __init__(self, *argv):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *argv, "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=cli_env(),
        )
        announce = self.proc.stdout.readline().strip()
        assert announce.startswith("serving http://"), (
            f"expected announce line, got {announce!r}; "
            f"stderr={self.proc.stderr.read()!r}"
        )
        self.url = announce.split(" ", 1)[1]
        self.port = int(self.url.rsplit(":", 1)[1])

    def get_json(self, path):
        connection = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def wait_ready(self, timeout=20.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                status, body = self.get_json("/readyz")
            except OSError:
                time.sleep(0.05)
                continue
            if status == 200 and body.get("ready"):
                return True
            time.sleep(0.05)
        return False

    def terminate(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


class TestServeLifecycle:
    def test_static_serve_scores_and_drains_on_sigterm(self, checkpoint_dir):
        server = ServeProcess("--checkpoint-dir", str(checkpoint_dir))
        try:
            assert server.wait_ready()
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            try:
                connection.request(
                    "POST", "/score",
                    body=json.dumps({"pairs": [[1, 2], [3, 4]]}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                body = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 200
            assert len(body["results"]) == 2
            assert body["generation"] == 1
            assert len(body["fingerprint"]) == 64
            rc = server.terminate()
            assert rc == 0
        finally:
            server.kill()

    def test_live_serve_ingests_and_checkpoints_on_drain(self, edge_file, tmp_path):
        ckpt = tmp_path / "live-ckpt"
        server = ServeProcess(
            str(edge_file),
            "--k", "16",
            "--checkpoint-dir", str(ckpt),
            "--refresh-every", "0.2",
        )
        try:
            assert server.wait_ready()
            # Ready means "a generation is published", not "feed fully
            # ingested" — poll the offset until the worker catches up.
            deadline = time.monotonic() + 20
            while True:
                status, body = server.get_json("/readyz")
                assert status == 200 and body["ready"]
                if body["ingest_offset"] >= 400:
                    break
                assert time.monotonic() < deadline, (
                    f"ingest stalled at offset {body['ingest_offset']}"
                )
                time.sleep(0.1)
            rc = server.terminate()
            assert rc == 0
            # The drain wrote a final checkpoint for the live runner.
            assert list(ckpt.glob("checkpoint-*.npz"))
        finally:
            server.kill()


class TestServeErrors:
    def test_no_target_is_rc2(self):
        proc = run_cli("serve")
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr

    def test_resume_without_source_is_rc2(self, checkpoint_dir):
        proc = run_cli("serve", "--checkpoint-dir", str(checkpoint_dir), "--resume")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr

    def test_both_checkpoint_flags_without_source_is_rc2(self, checkpoint_dir):
        proc = run_cli(
            "serve",
            "--checkpoint-dir", str(checkpoint_dir),
            "--load-checkpoint", str(checkpoint_dir / "whatever.npz"),
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr

    def test_junk_checkpoint_is_rc2_with_clear_error(self, tmp_path):
        import numpy as np

        junk_dir = tmp_path / "junk"
        junk_dir.mkdir()
        np.savez(junk_dir / "checkpoint-1.npz", noise=np.arange(3))
        proc = run_cli("serve", "--checkpoint-dir", str(junk_dir))
        assert proc.returncode == 2
        assert "not a predictor checkpoint archive" in proc.stderr
        assert "Traceback" not in proc.stderr
