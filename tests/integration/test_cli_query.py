"""Tests for the ``query`` subcommand: the CLI face of the batch
query engine."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(path, erdos_renyi(30, 90, seed=3))
    return path


@pytest.fixture()
def pairs_file(tmp_path):
    path = tmp_path / "pairs.txt"
    # Mixed batch: warm pairs, a self-pair, and an unseen vertex.
    path.write_text("0 1\n2 5\n7 7\n0 9999\n")
    return path


class TestParser:
    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "synth-grqc", "--vertex", "3"])
        assert args.measure == "jaccard"
        assert args.format == "table"
        assert args.top == 10
        assert not args.no_prune


class TestPairFileScoring:
    def test_csv_covers_every_pair(self, graph_file, pairs_file, capsys):
        code = main(
            [
                "query", str(graph_file), "--k", "32",
                "--pairs-file", str(pairs_file), "--format", "csv",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "u,v,jaccard"
        assert len(lines) == 5  # header + 4 pairs
        unseen = lines[4].split(",")
        assert unseen[:2] == ["0", "9999"]
        assert float(unseen[2]) == 0.0  # unseen-vertex policy via the CLI

    def test_json_carries_scores_and_stats(self, graph_file, pairs_file, capsys):
        code = main(
            [
                "query", str(graph_file), "--k", "32",
                "--pairs-file", str(pairs_file),
                "--measure", "adamic_adar", "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["measure"] == "adamic_adar"
        assert len(payload["results"]) == 4
        assert payload["stats"]["pairs_scored"] == 4
        assert all(np.isfinite(r["score"]) for r in payload["results"])

    def test_output_file(self, graph_file, pairs_file, tmp_path):
        out = tmp_path / "scores.csv"
        code = main(
            [
                "query", str(graph_file), "--k", "16",
                "--pairs-file", str(pairs_file),
                "--format", "csv", "--output", str(out),
            ]
        )
        assert code == 0
        assert out.read_text().startswith("u,v,jaccard\n")

    def test_missing_pair_file_is_an_error(self, graph_file, capsys):
        code = main(
            ["query", str(graph_file), "--pairs-file", "/no/such/file.txt"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestTopK:
    def test_top_k_table(self, graph_file, capsys):
        code = main(
            ["query", str(graph_file), "--k", "32", "--vertex", "0", "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch scores" in out
        assert "Engine stats" in out

    def test_no_prune_matches_pruned(self, graph_file, capsys):
        base = ["query", str(graph_file), "--k", "32", "--vertex", "4",
                "--top", "5", "--format", "csv"]
        assert main(base) == 0
        pruned = capsys.readouterr().out
        assert main(base + ["--no-prune"]) == 0
        brute = capsys.readouterr().out
        assert pruned == brute  # exact-recall default banding


class TestSourceResolution:
    def test_checkpoint_source(self, graph_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(
            [
                "ingest", str(graph_file), "--k", "16",
                "--checkpoint-dir", str(ckpt), "--checkpoint-every", "20",
            ]
        )
        assert code == 0
        capsys.readouterr()
        generations = sorted(ckpt.glob("checkpoint-*.npz"))
        code = main(
            [
                "query", "--load-checkpoint", str(generations[-1]),
                "--vertex", "0", "--format", "csv",
            ]
        )
        assert code == 0

    def test_no_source_is_an_error(self, capsys):
        assert main(["query", "--vertex", "3"]) == 2
        assert "--load-checkpoint" in capsys.readouterr().err

    def test_both_modes_is_an_error(self, graph_file, pairs_file, capsys):
        code = main(
            [
                "query", str(graph_file),
                "--pairs-file", str(pairs_file), "--vertex", "3",
            ]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err
