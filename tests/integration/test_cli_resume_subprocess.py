"""Subprocess-level tests for ``ingest --resume`` preconditions.

These run the real console entry point (``python -m repro.cli``) in a
child process: the operator-facing contract is the *process* exit code
and stderr text, which in-process ``main([...])`` calls cannot fully
pin down (a stray ``sys.exit`` or traceback would slip through).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi

SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(path, erdos_renyi(25, 60, seed=7))
    return path


class TestResumePreconditions:
    def test_resume_without_checkpoint_dir(self, graph_file):
        proc = run_cli("ingest", str(graph_file), "--resume")
        assert proc.returncode == 2
        assert "--checkpoint-dir" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_resume_with_missing_dir(self, graph_file, tmp_path):
        missing = tmp_path / "no" / "such" / "dir"
        proc = run_cli(
            "ingest", str(graph_file),
            "--checkpoint-dir", str(missing), "--resume",
        )
        assert proc.returncode == 2
        assert "does not exist" in proc.stderr
        assert "Traceback" not in proc.stderr
        # The precondition fires before the manager mkdirs: a typo'd
        # path must not be silently created and "resumed" fresh.
        assert not missing.exists()

    def test_resume_with_empty_dir(self, graph_file, tmp_path):
        empty = tmp_path / "ckpt"
        empty.mkdir()
        proc = run_cli(
            "ingest", str(graph_file),
            "--checkpoint-dir", str(empty), "--resume",
        )
        assert proc.returncode == 2
        assert "no checkpoints found" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_happy_path_resume_exits_zero(self, graph_file, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = run_cli(
            "ingest", str(graph_file), "--k", "16",
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "20",
            "--max-records", "40",
        )
        assert first.returncode == 0
        second = run_cli(
            "ingest", str(graph_file), "--k", "16",
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "20",
            "--resume",
        )
        assert second.returncode == 0
        assert "resumed from generation" in second.stdout
