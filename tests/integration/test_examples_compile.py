"""Smoke checks for the example scripts.

Full example runs take tens of seconds each (they are demos, not
tests), so the suite verifies that every example (a) compiles and
(b) exposes a ``main`` callable guarded by ``__main__`` — the
conventions the README promises — and it executes the cheapest one
end-to-end.
"""

from __future__ import annotations

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestEveryExample:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_has_docstring_and_main_guard(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        source = path.read_text(encoding="utf-8")
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    def test_imports_resolve(self, path):
        # Import every repro module the example references, catching
        # stale imports without running the (slow) example body.
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    module = __import__(node.module, fromlist=[a.name for a in node.names])
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{path.name}: {node.module}.{alias.name} missing"
                        )
