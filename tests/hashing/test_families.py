"""Tests for seeded hash families and the vectorized HashBank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import (
    HashBank,
    MultiplyShiftFamily,
    MultiplyShiftHash,
    PolynomialFamily,
    PolynomialHash,
    SplitMixFamily,
    SplitMixHash,
    family_by_name,
    seed_sequence,
)


class TestSeedSequence:
    def test_deterministic(self):
        assert seed_sequence(42, 5) == seed_sequence(42, 5)

    def test_distinct_words(self):
        words = seed_sequence(7, 1000)
        assert len(set(words)) == 1000

    def test_different_seeds_differ(self):
        assert seed_sequence(1, 10) != seed_sequence(2, 10)

    def test_empty_count(self):
        assert seed_sequence(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            seed_sequence(0, -1)


class TestSplitMixHash:
    def test_deterministic_and_equal_by_seed(self):
        a, b = SplitMixHash(5), SplitMixHash(5)
        assert a == b
        assert a(123) == b(123)
        assert hash(a) == hash(b)

    def test_adjacent_seeds_decorrelated(self):
        a, b = SplitMixHash(0), SplitMixHash(1)
        same = sum(1 for x in range(1000) if a(x) == b(x))
        assert same == 0

    def test_batch_matches_scalar(self):
        h = SplitMixHash(99)
        keys = np.arange(500, dtype=np.uint64)
        batch = h.batch(keys)
        assert all(int(batch[i]) == h(i) for i in range(500))

    def test_unit_in_interval(self):
        h = SplitMixHash(3)
        for key in range(100):
            assert 0.0 <= h.unit(key) < 1.0
            assert 0.0 < h.unit_open(key) < 1.0


class TestMultiplyShift:
    def test_forces_odd_multiplier(self):
        assert MultiplyShiftHash(a=4, b=0).a % 2 == 1

    def test_bits_validation(self):
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(a=1, b=0, bits=0)
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(a=1, b=0, bits=65)

    def test_output_alignment(self):
        # bits=16 output must be 0 in the low 48 bits.
        h = MultiplyShiftHash(a=0x9E3779B97F4A7C15, b=17, bits=16)
        for key in range(100):
            assert h(key) & ((1 << 48) - 1) == 0

    def test_collision_rate_near_universal(self):
        # 2-universal with 16-bit range: collision probability ~2^-16.
        family = MultiplyShiftFamily(seed=5, bits=16)
        h = family.function(0)
        values = [h(x) for x in range(3000)]
        collisions = len(values) - len(set(values))
        # Expected collisions ≈ C(3000,2)/65536 ≈ 69; allow slack.
        assert collisions < 250


class TestPolynomialHash:
    def test_independence_property_reported(self):
        h = PolynomialHash([3, 5, 7, 11])
        assert h.independence == 4

    def test_requires_coefficients(self):
        with pytest.raises(ConfigurationError):
            PolynomialHash([])

    def test_rejects_zero_leading_coefficient(self):
        with pytest.raises(ConfigurationError):
            PolynomialHash([1, 0])

    def test_constant_polynomial_is_constant(self):
        h = PolynomialHash([42])
        assert h(1) == h(2) == h(999)

    def test_degree_one_is_affine_mod_p(self):
        p = (1 << 61) - 1
        h = PolynomialHash([3, 5])  # 5x + 3 mod p, scaled by floor(2^64/p)
        scale = (1 << 64) // p
        assert h(2) == ((5 * 2 + 3) % p) * scale

    def test_family_members_differ(self):
        family = PolynomialFamily(seed=1, independence=4)
        h0, h1 = family.function(0), family.function(1)
        assert any(h0(x) != h1(x) for x in range(10))

    def test_family_validates_independence(self):
        with pytest.raises(ConfigurationError):
            PolynomialFamily(seed=0, independence=0)


class TestHashBank:
    def test_matches_family_functions_bitwise(self):
        bank = HashBank(seed=77, size=16)
        family = SplitMixFamily(77)
        for key in (0, 1, 999, 2**40):
            values = bank.values(key)
            for i in range(16):
                assert int(values[i]) == family.function(i)(key)

    def test_units_in_interval(self):
        bank = HashBank(seed=2, size=32)
        units = bank.units(12345)
        assert np.all(units >= 0.0) and np.all(units < 1.0)

    def test_units_open_strictly_positive(self):
        bank = HashBank(seed=2, size=32)
        units = bank.units_open(0)
        assert np.all(units > 0.0) and np.all(units < 1.0)

    def test_units_open_matches_scalar_definition(self):
        from repro.hashing.mixers import to_unit_open

        bank = HashBank(seed=9, size=8)
        family = SplitMixFamily(9)
        units = bank.units_open(4242)
        for i in range(8):
            assert units[i] == pytest.approx(to_unit_open(family.function(i)(4242)), abs=0)

    def test_equality_by_seed_and_size(self):
        assert HashBank(1, 4) == HashBank(1, 4)
        assert HashBank(1, 4) != HashBank(1, 5)
        assert HashBank(1, 4) != HashBank(2, 4)

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            HashBank(seed=0, size=0)


class TestNegativeKeyContract:
    """Negative keys reduce mod 2**64 — identically in every family and
    identically between the scalar ``__call__`` and ``batch`` paths.

    The block-ingest kernel hashes whole int64 edge arrays at once, so a
    divergence here would silently break scalar-vs-batch bit identity.
    """

    FUNCTIONS = [
        SplitMixHash(13),
        MultiplyShiftFamily(seed=13).function(0),
        PolynomialFamily(seed=13, independence=4).function(0),
        family_by_name("tabulation", seed=13).function(0),
    ]

    @pytest.mark.parametrize("h", FUNCTIONS, ids=lambda h: type(h).__name__)
    def test_minus_one_wraps_to_max_uint64(self, h):
        assert h(-1) == h(2**64 - 1)
        assert h(-2) == h(2**64 - 2)

    @pytest.mark.parametrize("h", FUNCTIONS, ids=lambda h: type(h).__name__)
    def test_batch_matches_scalar_on_negative_keys(self, h):
        keys = np.array([-1, -2, -(2**63), 0, 5], dtype=np.int64)
        batch = h.batch(keys)
        for i, key in enumerate(keys.tolist()):
            assert int(batch[i]) == h(key)


class TestHashBankBlock:
    def test_values_block_matches_per_key_values(self):
        bank = HashBank(seed=21, size=8)
        keys = np.array([0, 1, 999, 2**40, 2**64 - 1], dtype=np.uint64)
        block = bank.values_block(keys)
        assert block.shape == (5, 8)
        for row in range(5):
            assert np.array_equal(block[row], bank.values(int(keys[row])))

    def test_values_block_wraps_negative_keys(self):
        bank = HashBank(seed=21, size=8)
        assert np.array_equal(
            bank.values_block(np.array([-1], dtype=np.int64))[0],
            bank.values(2**64 - 1),
        )

    def test_values_block_empty(self):
        assert HashBank(0, 4).values_block(np.array([], dtype=np.uint64)).shape == (0, 4)

    def test_values_block_rejects_non_1d(self):
        with pytest.raises(ConfigurationError):
            HashBank(0, 4).values_block(np.zeros((3, 2), dtype=np.uint64))

    def test_values_pair_matches_values(self):
        bank = HashBank(seed=4, size=16)
        for u, v in [(0, 1), (2**40, 7), (2**64 - 1, 0)]:
            values_u, values_v = bank.values_pair(u, v)
            assert np.array_equal(values_u, bank.values(u))
            assert np.array_equal(values_v, bank.values(v))

    def test_values_pair_results_survive_reuse(self):
        # values_pair reuses one scratch buffer for the *keys*, never the
        # returned hash rows — earlier results must not be clobbered.
        bank = HashBank(seed=4, size=16)
        first_u, first_v = bank.values_pair(1, 2)
        copies = first_u.copy(), first_v.copy()
        bank.values_pair(3, 4)
        assert np.array_equal(first_u, copies[0])
        assert np.array_equal(first_v, copies[1])


class TestFamilyRegistry:
    @pytest.mark.parametrize(
        "name", ["splitmix", "multiply_shift", "polynomial", "tabulation"]
    )
    def test_known_families_resolve(self, name):
        family = family_by_name(name, seed=3)
        h = family.function(0)
        assert isinstance(h(123), int)

    def test_unknown_family_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="splitmix"):
            family_by_name("md5", seed=0)

    def test_negative_index_rejected(self):
        for name in ("splitmix", "multiply_shift", "polynomial", "tabulation"):
            with pytest.raises(ConfigurationError):
                family_by_name(name, seed=0).function(-1)
