"""Tests for simple tabulation hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import TabulationFamily, TabulationHash


class TestTabulationHash:
    def test_deterministic(self):
        a, b = TabulationHash(5), TabulationHash(5)
        assert all(a(x) == b(x) for x in range(100))

    def test_different_seeds_differ(self):
        a, b = TabulationHash(5), TabulationHash(6)
        assert sum(1 for x in range(200) if a(x) == b(x)) == 0

    def test_batch_matches_scalar(self):
        h = TabulationHash(17)
        keys = np.array([0, 1, 255, 256, 2**32, 2**63], dtype=np.uint64)
        batch = h.batch(keys)
        for i, key in enumerate([0, 1, 255, 256, 2**32, 2**63]):
            assert int(batch[i]) == h(key)

    def test_zero_key_hashes_via_tables(self):
        # h(0) XORs the 0th entry of all 8 tables — generally non-zero
        # (unlike fmix64, tabulation does randomise the zero key).
        assert TabulationHash(1)(0) != 0

    def test_linearity_over_xor_of_disjoint_bytes(self):
        # Keys differing in disjoint byte positions satisfy
        # h(a|b) = h(a) ^ h(b) ^ h(0) — the structural identity of
        # tabulation hashing (and why it is only 3-independent).
        h = TabulationHash(9)
        a = 0x00000000000000FF  # byte 0
        b = 0x000000FF00000000  # byte 4
        assert h(a | b) == h(a) ^ h(b) ^ h(0)

    def test_uniformity_of_low_bits(self):
        h = TabulationHash(3)
        buckets = [0] * 16
        for x in range(8000):
            buckets[h(x) & 15] += 1
        # Chi-square with 15 dof; 99.9% critical value ~ 37.7.
        expected = 8000 / 16
        chi2 = sum((c - expected) ** 2 / expected for c in buckets)
        assert chi2 < 37.7

    def test_no_collisions_on_small_range(self):
        h = TabulationHash(11)
        values = {h(x) for x in range(20000)}
        assert len(values) == 20000  # 64-bit range: collisions ~ never


class TestTabulationFamily:
    def test_members_independent(self):
        family = TabulationFamily(seed=2)
        h0, h1 = family.function(0), family.function(1)
        assert sum(1 for x in range(200) if h0(x) == h1(x)) == 0

    def test_member_deterministic_by_index(self):
        family = TabulationFamily(seed=2)
        assert family.function(3)(42) == TabulationFamily(2).function(3)(42)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulationFamily(seed=0).function(-2)
