"""Tests for the 64-bit mixing primitives."""

from __future__ import annotations

import math

import pytest

from repro.hashing.mixers import (
    GOLDEN_GAMMA,
    MASK64,
    fmix64,
    splitmix64,
    to_unit,
    to_unit_open,
)


class TestSplitMix64:
    def test_known_vector_zero(self):
        # Reference value of the SplitMix64 output function at state 0
        # (first output of the canonical C generator seeded with 0).
        assert splitmix64(0) == 16294208416658607535

    def test_known_stream_values(self):
        # The next two outputs of the canonical generator: states
        # advance by GOLDEN_GAMMA.
        assert splitmix64(GOLDEN_GAMMA) == 7960286522194355700
        assert splitmix64((2 * GOLDEN_GAMMA) & MASK64) == 487617019471545679

    def test_output_fits_64_bits(self):
        for x in (0, 1, 2**63, MASK64, 12345678901234567890):
            assert 0 <= splitmix64(x) <= MASK64

    def test_negative_inputs_reduce_modulo_2_64(self):
        assert splitmix64(-1) == splitmix64(MASK64)
        assert splitmix64(-(2**64) + 5) == splitmix64(5)

    def test_is_injective_on_sample(self):
        outputs = {splitmix64(x) for x in range(10000)}
        assert len(outputs) == 10000  # bijection => no collisions

    def test_avalanche_single_bit_flip(self):
        # Flipping one input bit should flip ~32 of 64 output bits.
        flips = []
        for x in range(200):
            base = splitmix64(x)
            for bit in (0, 17, 43, 63):
                flipped = splitmix64(x ^ (1 << bit))
                flips.append(bin(base ^ flipped).count("1"))
        mean_flips = sum(flips) / len(flips)
        assert 28 < mean_flips < 36


class TestFmix64:
    def test_known_vector(self):
        # fmix64(1) per the MurmurHash3 finalizer definition.
        assert fmix64(1) == 12994781566227106604

    def test_zero_maps_to_zero(self):
        # The Murmur finalizer fixes 0 — callers must not rely on it
        # randomising the zero key (documented property).
        assert fmix64(0) == 0

    def test_differs_from_splitmix(self):
        disagreements = sum(1 for x in range(1, 100) if fmix64(x) != splitmix64(x))
        assert disagreements == 99


class TestUnitMappings:
    def test_to_unit_range(self):
        for word in (0, 1, 2**32, MASK64):
            value = to_unit(word)
            assert 0.0 <= value < 1.0

    def test_to_unit_zero_is_zero(self):
        assert to_unit(0) == 0.0

    def test_to_unit_open_never_zero(self):
        assert to_unit_open(0) > 0.0
        assert to_unit_open(MASK64) < 1.0

    def test_to_unit_open_log_safe(self):
        # The whole point of the open mapping: log never blows up.
        for word in (0, 1, 1 << 11, MASK64):
            assert math.isfinite(math.log(to_unit_open(word)))

    def test_to_unit_monotone_in_word(self):
        words = [0, 1 << 20, 1 << 40, 1 << 60, MASK64]
        values = [to_unit(w) for w in words]
        assert values == sorted(values)

    def test_unit_mean_is_half(self):
        # Uniformity sanity: mean of hashed units near 0.5.
        values = [to_unit(splitmix64(x)) for x in range(5000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.02
