"""Tests for exponential-rank weighted MinHash."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.errors import ConfigurationError, SketchStateError
from repro.hashing import HashBank
from repro.sketches import WeightedMinHash


def weighted_sketch(bank, pairs):
    s = WeightedMinHash(bank)
    s.update_many(pairs)
    return s


class TestUpdates:
    def test_weight_sum_accumulates_distinct_keys(self):
        s = WeightedMinHash(HashBank(0, 8))
        s.update(1, 2.0)
        s.update(2, 3.0)
        assert s.weight_sum == pytest.approx(5.0)

    def test_rejects_nonpositive_and_nonfinite_weights(self):
        s = WeightedMinHash(HashBank(0, 8))
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ConfigurationError):
                s.update(1, bad)

    def test_rejects_negative_keys(self):
        with pytest.raises(ConfigurationError):
            WeightedMinHash(HashBank(0, 8)).update(-1, 1.0)

    def test_same_weight_reinsertion_is_idempotent_on_slots(self):
        bank = HashBank(3, 16)
        a = weighted_sketch(bank, [(1, 2.0), (2, 1.0)])
        b = weighted_sketch(bank, [(1, 2.0), (2, 1.0)])
        b.update(1, 2.0, first_insertion=False)
        assert (a.ranks == b.ranks).all()
        assert (a.witnesses == b.witnesses).all()
        assert b.weight_sum == a.weight_sum


class TestBiasedSampling:
    def test_slot_minimum_samples_proportional_to_weight(self):
        # Three keys with weights 1:2:4 — slot-minimum frequencies over
        # 4096 slots should approximate 1/7 : 2/7 : 4/7.
        bank = HashBank(21, 4096)
        s = weighted_sketch(bank, [(10, 1.0), (11, 2.0), (12, 4.0)])
        counts = Counter(int(w) for w in s.witnesses)
        total = sum(counts.values())
        assert counts[12] / total == pytest.approx(4 / 7, abs=0.04)
        assert counts[11] / total == pytest.approx(2 / 7, abs=0.04)
        assert counts[10] / total == pytest.approx(1 / 7, abs=0.04)

    def test_match_fraction_estimates_weighted_overlap(self):
        bank = HashBank(31, 2048)
        weights = {x: 1.0 + (x % 5) for x in range(900)}
        a = weighted_sketch(bank, [(x, weights[x]) for x in range(0, 600)])
        b = weighted_sketch(bank, [(x, weights[x]) for x in range(300, 900)])
        lam_intersection = sum(weights[x] for x in range(300, 600))
        lam_union = sum(weights[x] for x in range(0, 900))
        assert a.match_fraction(b) == pytest.approx(
            lam_intersection / lam_union, abs=0.05
        )

    def test_identical_weighted_sets_match_fully(self):
        bank = HashBank(5, 128)
        pairs = [(x, 1.0 + x / 10) for x in range(50)]
        a = weighted_sketch(bank, pairs)
        b = weighted_sketch(bank, pairs)
        assert a.match_fraction(b) == 1.0

    def test_empty_sketch_matches_nothing(self):
        bank = HashBank(5, 64)
        a = weighted_sketch(bank, [(1, 1.0)])
        assert a.match_fraction(WeightedMinHash(bank)) == 0.0


class TestReweigh:
    def test_monotone_increase_adjusts_weight_sum(self):
        s = WeightedMinHash(HashBank(0, 32))
        s.update(1, 1.0)
        s.reweigh(1, 1.0, 3.0)
        assert s.weight_sum == pytest.approx(3.0)

    def test_decrease_rejected(self):
        s = WeightedMinHash(HashBank(0, 32))
        s.update(1, 2.0)
        with pytest.raises(SketchStateError):
            s.reweigh(1, 2.0, 1.0)

    def test_reweigh_can_only_lower_ranks(self):
        s = WeightedMinHash(HashBank(0, 32))
        s.update(1, 1.0)
        before = s.ranks.copy()
        s.reweigh(1, 1.0, 5.0)
        assert (s.ranks <= before).all()


class TestMergeAndCopy:
    def test_merge_of_disjoint_sets_matches_single_pass(self):
        bank = HashBank(8, 64)
        a = weighted_sketch(bank, [(x, 1.5) for x in range(0, 40)])
        b = weighted_sketch(bank, [(x, 1.5) for x in range(40, 80)])
        combined = weighted_sketch(bank, [(x, 1.5) for x in range(80)])
        merged = a.merge(b)
        assert (merged.ranks == combined.ranks).all()
        assert (merged.witnesses == combined.witnesses).all()
        assert merged.weight_sum == pytest.approx(combined.weight_sum)

    def test_incompatible_banks_rejected(self):
        with pytest.raises(SketchStateError):
            WeightedMinHash(HashBank(1, 8)).merge(WeightedMinHash(HashBank(2, 8)))

    def test_copy_independent(self):
        bank = HashBank(8, 16)
        a = weighted_sketch(bank, [(1, 1.0)])
        dup = a.copy()
        dup.update(2, 2.0)
        assert a.weight_sum == pytest.approx(1.0)
        assert dup.weight_sum == pytest.approx(3.0)

    def test_nominal_bytes(self):
        assert WeightedMinHash(HashBank(0, 10)).nominal_bytes() == 10 * 24 + 8
