"""Tests for reservoir sampling."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.sketches import Reservoir


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            Reservoir(0)

    def test_holds_everything_below_capacity(self):
        r = Reservoir(10, seed=1)
        r.offer_many(range(7))
        assert sorted(r.sample()) == list(range(7))
        assert not r.is_full()
        assert r.sampling_probability() == 1.0

    def test_never_exceeds_capacity(self):
        r = Reservoir(10, seed=1)
        r.offer_many(range(1000))
        assert len(r) == 10
        assert r.is_full()
        assert r.seen == 1000

    def test_sample_is_subset_of_stream(self):
        r = Reservoir(5, seed=2)
        r.offer_many(range(100))
        assert all(0 <= item < 100 for item in r)

    def test_sampling_probability(self):
        r = Reservoir(25, seed=0)
        r.offer_many(range(100))
        assert r.sampling_probability() == pytest.approx(0.25)

    def test_deterministic_by_seed(self):
        a, b = Reservoir(5, seed=9), Reservoir(5, seed=9)
        a.offer_many(range(200))
        b.offer_many(range(200))
        assert a.sample() == b.sample()

    def test_contains(self):
        r = Reservoir(3, seed=0)
        r.offer("x")
        assert "x" in r
        assert "y" not in r


class TestUniformity:
    def test_inclusion_is_uniform_over_positions(self):
        # Each of 50 stream positions should appear in a capacity-10
        # reservoir with probability 1/5; average over 2000 seeded runs.
        counts = Counter()
        runs = 2000
        for seed in range(runs):
            r = Reservoir(10, seed=seed)
            r.offer_many(range(50))
            counts.update(r.sample())
        for position in range(50):
            assert counts[position] / runs == pytest.approx(0.2, abs=0.04)

    def test_eviction_reporting_is_consistent(self):
        r = Reservoir(4, seed=3)
        mirror = set()
        for item in range(500):
            admitted, evicted = r.offer_with_eviction(item)
            if evicted is not None:
                mirror.discard(evicted)
            if admitted:
                mirror.add(item)
        assert mirror == set(r.sample())

    def test_eviction_only_once_full(self):
        r = Reservoir(3, seed=0)
        for item in range(3):
            admitted, evicted = r.offer_with_eviction(item)
            assert admitted and evicted is None
