"""Tests for the Bloom filter."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SketchStateError
from repro.sketches import BloomFilter


class TestConstruction:
    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(bits=4)
        with pytest.raises(ConfigurationError):
            BloomFilter(hashes=0)

    def test_for_capacity_sizing(self):
        bf = BloomFilter.for_capacity(10000, 0.01)
        # Textbook sizing: ~9.59 bits/key and ~7 hashes at 1% FP.
        assert 90000 < bf.bits < 100000
        assert 6 <= bf.hashes <= 8

    def test_for_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(10, false_positive_rate=1.5)

    def test_nominal_bytes(self):
        assert BloomFilter(bits=8000).nominal_bytes() == 1000


class TestMembership:
    def test_no_false_negatives(self):
        bf = BloomFilter.for_capacity(2000, 0.01, seed=1)
        bf.update_many(range(2000))
        assert all(key in bf for key in range(2000))

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter.for_capacity(5000, 0.01, seed=2)
        bf.update_many(range(5000))
        false_positives = sum(1 for key in range(100000, 120000) if key in bf)
        assert false_positives / 20000 < 0.03

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(bits=1024, hashes=3)
        assert all(key not in bf for key in range(100))

    def test_add_if_new_semantics(self):
        bf = BloomFilter.for_capacity(100, 0.001, seed=3)
        assert bf.add_if_new(42) is True
        assert bf.add_if_new(42) is False

    def test_fill_ratio_and_fp_estimate_grow(self):
        bf = BloomFilter(bits=4096, hashes=4, seed=4)
        assert bf.fill_ratio() == 0.0
        bf.update_many(range(500))
        assert 0.0 < bf.fill_ratio() < 1.0
        assert 0.0 < bf.false_positive_rate() < 1.0


class TestMerge:
    def test_merge_is_union(self):
        a = BloomFilter(bits=4096, hashes=4, seed=5)
        b = BloomFilter(bits=4096, hashes=4, seed=5)
        a.update_many(range(0, 100))
        b.update_many(range(100, 200))
        merged = a.merge(b)
        assert all(key in merged for key in range(200))

    def test_incompatible_filters_rejected(self):
        a = BloomFilter(bits=1024, hashes=3, seed=1)
        with pytest.raises(SketchStateError):
            a.merge(BloomFilter(bits=2048, hashes=3, seed=1))
        with pytest.raises(SketchStateError):
            a.merge(BloomFilter(bits=1024, hashes=3, seed=2))

    def test_copy_independent(self):
        a = BloomFilter(bits=1024, hashes=2, seed=0)
        dup = a.copy()
        dup.update(7)
        assert 7 in dup and 7 not in a
