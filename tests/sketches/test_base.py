"""Tests for the shared StreamSummary compatibility machinery."""

from __future__ import annotations

import pytest

from repro.errors import SketchStateError
from repro.hashing import HashBank
from repro.sketches import BloomFilter, BottomK, HyperLogLog, KMinHash


class TestRequireCompatible:
    def test_cross_type_combination_rejected(self):
        minhash = KMinHash(HashBank(0, 8))
        bottomk = BottomK(8, 0)
        with pytest.raises(SketchStateError, match="KMinHash.*BottomK"):
            minhash.require_compatible(bottomk)

    def test_same_type_same_config_accepted(self):
        a = HyperLogLog(8, 1)
        b = HyperLogLog(8, 1)
        a.require_compatible(b)  # no exception

    def test_error_message_names_both_tokens(self):
        a = BloomFilter(bits=1024, hashes=3, seed=1)
        b = BloomFilter(bits=1024, hashes=3, seed=2)
        with pytest.raises(SketchStateError, match="hash configurations"):
            a.require_compatible(b)

    def test_compatibility_token_is_hashable(self):
        for sketch in (
            KMinHash(HashBank(0, 4)),
            BottomK(4, 0),
            HyperLogLog(6, 0),
            BloomFilter(bits=64, hashes=2),
        ):
            hash(sketch.compatibility_token)


class TestUpdateHashed:
    def test_matches_plain_update(self):
        bank = HashBank(5, 16)
        via_update = KMinHash(bank)
        via_hashed = KMinHash(bank)
        for key in (3, 99, 12345):
            via_update.update(key)
            via_hashed.update_hashed(key, bank.values(key))
        assert via_update == via_hashed

    def test_values_pair_feeds_update_hashed(self):
        import numpy as np

        bank = HashBank(7, 32)
        hv, hu = bank.values_pair(11, 22)
        assert np.array_equal(hv, bank.values(11))
        assert np.array_equal(hu, bank.values(22))
