"""Tests for the k-mins MinHash sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SketchStateError
from repro.hashing import HashBank
from repro.sketches import EMPTY_SLOT, KMinHash


def sketch_of(bank, items, track=True):
    s = KMinHash(bank, track_witnesses=track)
    s.update_many(items)
    return s


class TestUpdates:
    def test_empty_sketch_state(self, small_bank):
        s = KMinHash(small_bank)
        assert s.is_empty()
        assert np.all(s.values == EMPTY_SLOT)
        assert np.all(s.witnesses == -1)

    def test_update_fills_all_slots(self, small_bank):
        s = sketch_of(small_bank, [7])
        assert not s.is_empty()
        assert np.all(s.values != EMPTY_SLOT)
        assert np.all(s.witnesses == 7)

    def test_updates_are_idempotent(self, bank):
        a = sketch_of(bank, [1, 2, 3])
        b = sketch_of(bank, [1, 2, 3, 3, 2, 1, 1])
        assert a == b

    def test_insertion_order_irrelevant(self, bank):
        assert sketch_of(bank, [5, 9, 1]) == sketch_of(bank, [1, 5, 9])

    def test_negative_key_rejected(self, small_bank):
        with pytest.raises(ConfigurationError):
            KMinHash(small_bank).update(-3)

    def test_witness_is_the_argmin(self, small_bank):
        s = sketch_of(small_bank, range(50))
        for i in range(small_bank.size):
            witness = int(s.witnesses[i])
            assert int(s.values[i]) == min(
                min(int(small_bank.values(x)[i]) for x in range(50)),
                int(EMPTY_SLOT) - 1,
            )
            assert int(small_bank.values(witness)[i]) == int(s.values[i])


class TestJaccard:
    def test_identical_sets_give_one(self, bank):
        a = sketch_of(bank, range(100))
        b = sketch_of(bank, range(100))
        assert a.jaccard(b) == 1.0

    def test_disjoint_sets_give_near_zero(self, bank):
        a = sketch_of(bank, range(0, 500))
        b = sketch_of(bank, range(1000, 1500))
        assert a.jaccard(b) < 0.05

    def test_empty_sketch_scores_zero(self, bank):
        a = sketch_of(bank, range(10))
        empty = KMinHash(bank)
        assert a.jaccard(empty) == 0.0
        assert empty.jaccard(a) == 0.0
        assert empty.jaccard(KMinHash(bank)) == 0.0

    def test_statistical_accuracy_half_overlap(self):
        # J = 1/3 population; k=512 => std ~ sqrt(J(1-J)/k) ~ 0.021.
        bank = HashBank(seed=4, size=512)
        a = sketch_of(bank, range(0, 1000))
        b = sketch_of(bank, range(500, 1500))
        assert a.jaccard(b) == pytest.approx(1 / 3, abs=0.08)

    def test_symmetry(self, bank):
        a = sketch_of(bank, range(0, 60))
        b = sketch_of(bank, range(30, 90))
        assert a.jaccard(b) == b.jaccard(a)

    def test_incompatible_banks_rejected(self):
        a = KMinHash(HashBank(1, 16))
        b = KMinHash(HashBank(2, 16))
        with pytest.raises(SketchStateError):
            a.jaccard(b)

    def test_different_k_rejected(self):
        a = KMinHash(HashBank(1, 16))
        b = KMinHash(HashBank(1, 32))
        with pytest.raises(SketchStateError):
            a.jaccard(b)


class TestWitnesses:
    def test_matching_witnesses_lie_in_intersection_mostly(self):
        # A colliding slot's witness is in the union always, and in the
        # intersection whenever the collision is "honest" (same key).
        # Value collisions of different keys have probability ~2^-64.
        bank = HashBank(seed=8, size=256)
        a_items = set(range(0, 800))
        b_items = set(range(400, 1200))
        a = sketch_of(bank, a_items)
        b = sketch_of(bank, b_items)
        witnesses = [int(w) for w in a.matching_witnesses(b)]
        assert witnesses  # overlap 1/3: expect ~85 matches of 256
        assert all(w in (a_items & b_items) for w in witnesses)

    def test_disabled_tracking_raises_on_witness_query(self, bank):
        a = sketch_of(bank, range(10), track=False)
        b = sketch_of(bank, range(10), track=False)
        assert a.witnesses is None
        with pytest.raises(SketchStateError):
            a.matching_witnesses(b)

    def test_jaccard_still_works_without_witnesses(self, bank):
        a = sketch_of(bank, range(100), track=False)
        b = sketch_of(bank, range(100), track=False)
        assert a.jaccard(b) == 1.0


class TestMerge:
    def test_merge_equals_single_pass_over_union(self, bank):
        combined = sketch_of(bank, range(0, 200))
        merged = sketch_of(bank, range(0, 120)).merge(sketch_of(bank, range(80, 200)))
        assert merged == combined

    def test_merge_is_commutative(self, bank):
        a = sketch_of(bank, range(0, 50))
        b = sketch_of(bank, range(25, 75))
        assert a.merge(b) == b.merge(a)

    def test_merge_leaves_inputs_untouched(self, bank):
        a = sketch_of(bank, range(10))
        b = sketch_of(bank, range(5, 15))
        a_before = a.copy()
        a.merge(b)
        assert a == a_before

    def test_merge_mixed_tracking_rejected(self, bank):
        a = sketch_of(bank, range(5), track=True)
        b = sketch_of(bank, range(5), track=False)
        with pytest.raises(SketchStateError):
            a.merge(b)

    def test_merge_with_empty_is_identity_on_values(self, bank):
        a = sketch_of(bank, range(30))
        merged = a.merge(KMinHash(bank))
        assert np.array_equal(merged.values, a.values)


class TestAccounting:
    def test_nominal_bytes_with_witnesses(self):
        s = KMinHash(HashBank(0, 64))
        assert s.nominal_bytes() == 64 * 16

    def test_nominal_bytes_without_witnesses(self):
        s = KMinHash(HashBank(0, 64), track_witnesses=False)
        assert s.nominal_bytes() == 64 * 8

    def test_copy_is_independent(self, small_bank):
        a = sketch_of(small_bank, range(5))
        dup = a.copy()
        dup.update(1000)
        assert a != dup

    def test_repr_mentions_k(self, small_bank):
        assert "k=8" in repr(KMinHash(small_bank))
