"""Tests for the Count-Min sketch."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError, SketchStateError
from repro.sketches import CountMin


class TestConstruction:
    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            CountMin(width=0)
        with pytest.raises(ConfigurationError):
            CountMin(depth=0)

    def test_from_error_bounds(self):
        sketch = CountMin.from_error_bounds(epsilon=0.01, delta=0.01)
        assert sketch.width == math.ceil(math.e / 0.01)
        assert sketch.depth == math.ceil(math.log(100))

    def test_from_error_bounds_validation(self):
        with pytest.raises(ConfigurationError):
            CountMin.from_error_bounds(epsilon=0.0, delta=0.5)
        with pytest.raises(ConfigurationError):
            CountMin.from_error_bounds(epsilon=0.5, delta=1.5)

    def test_nominal_bytes(self):
        assert CountMin(width=100, depth=3).nominal_bytes() == 100 * 3 * 8


class TestEstimates:
    @pytest.mark.parametrize("conservative", [True, False])
    def test_never_underestimates(self, conservative):
        rng = random.Random(0)
        sketch = CountMin(width=64, depth=4, conservative=conservative)
        truth = {}
        for _ in range(3000):
            key = rng.randrange(200)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_on_light_load(self):
        sketch = CountMin(width=4096, depth=4)
        for key in range(50):
            sketch.update(key, key + 1)
        for key in range(50):
            assert sketch.estimate(key) == key + 1

    def test_error_bound_holds_in_practice(self):
        rng = random.Random(1)
        sketch = CountMin(width=256, depth=5, conservative=False)
        truth = {}
        for _ in range(20000):
            key = rng.randrange(2000)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        bound = sketch.error_bound()
        violations = sum(
            1 for key, count in truth.items() if sketch.estimate(key) - count > bound
        )
        # Bound holds per-key with prob 1 - e^-5 ~ 99.3%.
        assert violations <= len(truth) * 0.05

    def test_conservative_no_worse_than_plain(self):
        rng = random.Random(2)
        plain = CountMin(width=64, depth=4, conservative=False)
        conservative = CountMin(width=64, depth=4, conservative=True)
        keys = [rng.randrange(500) for _ in range(5000)]
        for key in keys:
            plain.update(key)
            conservative.update(key)
        for key in set(keys):
            assert conservative.estimate(key) <= plain.estimate(key)

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMin().update(1, -1)

    def test_weighted_increment(self):
        sketch = CountMin(width=1024, depth=4)
        sketch.update(7, 41)
        sketch.update(7)
        assert sketch.estimate(7) == 42
        assert sketch.total == 42


class TestMerge:
    def test_merge_sums_non_conservative_tables(self):
        a = CountMin(width=128, depth=3, conservative=False)
        b = CountMin(width=128, depth=3, conservative=False)
        a.update_many(range(100))
        b.update_many(range(50, 150))
        merged = a.merge(b)
        assert merged.estimate(75) >= 2
        assert merged.total == 200

    def test_conservative_merge_refused(self):
        a = CountMin(width=16, depth=2, conservative=True)
        b = CountMin(width=16, depth=2, conservative=True)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_incompatible_shapes_rejected(self):
        a = CountMin(width=16, depth=2, conservative=False)
        b = CountMin(width=32, depth=2, conservative=False)
        with pytest.raises(SketchStateError):
            a.merge(b)

    def test_copy_independent(self):
        a = CountMin(width=16, depth=2)
        a.update(1)
        dup = a.copy()
        dup.update(1)
        assert a.estimate(1) == 1
        assert dup.estimate(1) == 2
