"""Tests for the bottom-k (KMV) sketch."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SketchStateError
from repro.sketches import BottomK


class TestConstruction:
    def test_k_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            BottomK(1)

    def test_compatibility_requires_same_seed_and_k(self):
        with pytest.raises(SketchStateError):
            BottomK(8, seed=1).jaccard(BottomK(8, seed=2))
        with pytest.raises(SketchStateError):
            BottomK(8, seed=1).jaccard(BottomK(16, seed=1))


class TestDistinctCount:
    def test_exact_below_k(self):
        s = BottomK(64, seed=0)
        s.update_many(range(40))
        assert s.distinct_count() == 40.0
        assert not s.is_full()

    def test_duplicates_do_not_inflate(self):
        s = BottomK(64, seed=0)
        for _ in range(10):
            s.update_many(range(30))
        assert s.distinct_count() == 30.0
        assert s.update_count == 300

    def test_kth_value_unavailable_until_full(self):
        s = BottomK(16, seed=0)
        s.update_many(range(10))
        with pytest.raises(ConfigurationError):
            s.kth_value_unit()

    @pytest.mark.parametrize("true_count", [500, 5000, 50000])
    def test_estimate_within_relative_error(self, true_count):
        # RSE ~ 1/sqrt(k-2) ~ 6.3% at k=256; allow 4 sigma.
        s = BottomK(256, seed=7)
        s.update_many(range(true_count))
        assert s.distinct_count() == pytest.approx(true_count, rel=0.25)

    def test_values_are_sorted_and_bounded(self):
        s = BottomK(16, seed=3)
        s.update_many(range(100))
        values = s.values()
        assert values == sorted(values)
        assert len(values) == 16


class TestJaccard:
    def test_exact_when_sets_fit(self):
        a, b = BottomK(128, 5), BottomK(128, 5)
        a.update_many(range(0, 60))
        b.update_many(range(30, 90))
        # Both sets (60 elements) fit entirely: jaccard is exact.
        assert a.jaccard(b) == pytest.approx(30 / 90)

    def test_statistical_accuracy_when_overflowing(self):
        a, b = BottomK(512, 5), BottomK(512, 5)
        a.update_many(range(0, 3000))
        b.update_many(range(1500, 4500))
        assert a.jaccard(b) == pytest.approx(1 / 3, abs=0.08)

    def test_empty_pair_scores_zero(self):
        assert BottomK(8, 0).jaccard(BottomK(8, 0)) == 0.0


class TestMerge:
    def test_merge_equals_single_pass(self):
        a, b = BottomK(64, 9), BottomK(64, 9)
        a.update_many(range(0, 150))
        b.update_many(range(100, 250))
        combined = BottomK(64, 9)
        combined.update_many(range(0, 250))
        assert a.merge(b).values() == combined.values()

    def test_merge_distinct_count_matches_union(self):
        a, b = BottomK(128, 9), BottomK(128, 9)
        a.update_many(range(0, 2000))
        b.update_many(range(1000, 3000))
        assert a.merge(b).distinct_count() == pytest.approx(3000, rel=0.3)

    def test_copy_independent(self):
        a = BottomK(8, 1)
        a.update_many(range(20))
        dup = a.copy()
        dup.update(999)
        assert dup.update_count == a.update_count + 1

    def test_nominal_bytes_grows_to_cap(self):
        s = BottomK(32, 0)
        assert s.nominal_bytes() == 0
        s.update_many(range(10))
        assert s.nominal_bytes() == 80
        s.update_many(range(10, 500))
        assert s.nominal_bytes() == 32 * 8
