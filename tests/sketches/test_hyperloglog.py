"""Tests for HyperLogLog."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SketchStateError
from repro.sketches import HyperLogLog


class TestConstruction:
    @pytest.mark.parametrize("precision", [3, 19, 0, -1])
    def test_precision_out_of_range_rejected(self, precision):
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision)

    def test_register_count(self):
        assert HyperLogLog(10).m == 1024

    def test_nominal_bytes_is_register_count(self):
        assert HyperLogLog(12).nominal_bytes() == 4096


class TestCardinality:
    def test_empty_estimates_zero(self):
        assert HyperLogLog(10).cardinality() == pytest.approx(0.0, abs=1.0)

    def test_small_range_linear_counting_is_tight(self):
        h = HyperLogLog(12, seed=1)
        h.update_many(range(100))
        assert h.cardinality() == pytest.approx(100, rel=0.05)

    @pytest.mark.parametrize("true_count", [1000, 20000, 200000])
    def test_estimate_within_rse_budget(self, true_count):
        h = HyperLogLog(12, seed=2)
        h.update_many(range(true_count))
        # RSE = 1.04/sqrt(4096) ~ 1.6%; allow 5 sigma plus small-range bias.
        assert h.cardinality() == pytest.approx(true_count, rel=0.10)

    def test_duplicates_do_not_inflate(self):
        h = HyperLogLog(10, seed=3)
        for _ in range(5):
            h.update_many(range(500))
        assert h.cardinality() == pytest.approx(500, rel=0.15)

    def test_reported_rse_formula(self):
        assert HyperLogLog(12).relative_standard_error() == pytest.approx(
            1.04 / 64.0
        )

    def test_registers_never_exceed_max_rank(self):
        h = HyperLogLog(4, seed=4)  # widest remainder: 60 bits, max rank 61
        h.update_many(range(100000))
        assert int(h.registers.max()) <= 61


class TestMerge:
    def test_merge_estimates_union(self):
        a, b = HyperLogLog(12, 7), HyperLogLog(12, 7)
        a.update_many(range(0, 30000))
        b.update_many(range(15000, 45000))
        assert a.merge(b).cardinality() == pytest.approx(45000, rel=0.10)

    def test_merge_idempotent_on_same_stream(self):
        a, b = HyperLogLog(10, 7), HyperLogLog(10, 7)
        a.update_many(range(1000))
        b.update_many(range(1000))
        merged = a.merge(b)
        assert (merged.registers == a.registers).all()

    def test_incompatible_precision_or_seed_rejected(self):
        with pytest.raises(SketchStateError):
            HyperLogLog(10, 1).merge(HyperLogLog(11, 1))
        with pytest.raises(SketchStateError):
            HyperLogLog(10, 1).merge(HyperLogLog(10, 2))

    def test_copy_independent(self):
        a = HyperLogLog(10, 1)
        a.update_many(range(100))
        dup = a.copy()
        dup.update_many(range(100, 10000))
        assert a.cardinality() < dup.cardinality()
