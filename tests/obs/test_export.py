"""Exposition formats: Prometheus text, JSON snapshots, periodic samples."""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, PeriodicReporter, render_prometheus, snapshot
from repro.obs.export import SNAPSHOT_SCHEMA


def populated_registry():
    registry = MetricsRegistry()
    records = registry.counter("records_total", "Records by outcome", labelnames=("outcome",))
    records.labels("ok").inc(5)
    records.labels("dead").inc(2)
    registry.gauge("offset", "Committed offset").set(7)
    hist = registry.histogram("latency_seconds", "Latency", buckets=(0.1, 1.0))
    for value in (0.0625, 0.5, 4.0):
        hist.observe(value)
    return registry


class TestPrometheusFormat:
    def test_one_type_line_per_instrument(self):
        text = render_prometheus(populated_registry())
        type_lines = [line for line in text.splitlines() if line.startswith("# TYPE ")]
        assert type_lines == [
            "# TYPE records_total counter",
            "# TYPE offset gauge",
            "# TYPE latency_seconds histogram",
        ]

    def test_help_lines_precede_type_lines(self):
        lines = render_prometheus(populated_registry()).splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                name = line.split()[2]
                assert lines[i - 1] == f"# HELP {name} " + {
                    "records_total": "Records by outcome",
                    "offset": "Committed offset",
                    "latency_seconds": "Latency",
                }[name]

    def test_labeled_series_render(self):
        text = render_prometheus(populated_registry())
        assert 'records_total{outcome="ok"} 5' in text
        assert 'records_total{outcome="dead"} 2' in text
        assert "offset 7" in text.splitlines()

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_prometheus(populated_registry())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 4.5625" in text
        assert "latency_seconds_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", labelnames=("source",))
        counter.labels('a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'events_total{source="a\\"b\\\\c\\nd"} 1' in text

    def test_every_sample_line_parses(self):
        # name{labels} value — the shape a scraper's parser expects.
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
        )
        for line in render_prometheus(populated_registry()).splitlines():
            if line.startswith("#"):
                continue
            assert sample.fullmatch(line), f"unparseable sample line: {line!r}"

    def test_disabled_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry(enabled=False)) == ""

    def test_ends_with_newline(self):
        assert render_prometheus(populated_registry()).endswith("\n")


class TestSnapshot:
    def test_schema_and_structure(self):
        snap = snapshot(populated_registry(), timestamp=123.0)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["ts"] == 123.0
        names = [i["name"] for i in snap["instruments"]]
        assert names == ["records_total", "offset", "latency_seconds"]

    def test_round_trips_through_json(self):
        snap = snapshot(populated_registry(), timestamp=123.0)
        assert json.loads(json.dumps(snap)) == snap

    def test_histogram_entry_carries_quantiles(self):
        snap = snapshot(populated_registry(), timestamp=0.0)
        hist = next(i for i in snap["instruments"] if i["name"] == "latency_seconds")
        (series,) = hist["series"]
        assert series["count"] == 3
        assert series["sum"] == 4.5625
        assert series["buckets"][-1][0] == "+Inf"
        assert series["buckets"][-1][1] == 3
        assert {"p50", "p95", "p99"} <= set(series)

    def test_nonfinite_gauge_values_stringified(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(math.inf)
        snap = snapshot(registry, timestamp=0.0)
        value = snap["instruments"][0]["series"][0]["value"]
        assert value == "+Inf"
        json.dumps(snap)  # remains serialisable


class TestPeriodicReporter:
    def test_record_cadence(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        path = tmp_path / "metrics.jsonl"
        reporter = PeriodicReporter(registry, path, every_records=3)
        for _ in range(7):
            reporter.tick()
        reporter.close(final_sample=False)
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # after records 3 and 6
        assert all(json.loads(line)["schema"] == SNAPSHOT_SCHEMA for line in lines)
        assert reporter.samples_written == 2

    def test_time_cadence_with_fake_clock(self, tmp_path):
        clock = iter(float(t) for t in range(100))
        registry = MetricsRegistry()
        reporter = PeriodicReporter(
            registry,
            tmp_path / "metrics.jsonl",
            every_seconds=5.0,
            clock=lambda: next(clock),
        )
        written = sum(reporter.tick() for _ in range(12))
        reporter.close(final_sample=False)
        assert written >= 2

    def test_close_writes_final_sample(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reporter = PeriodicReporter(MetricsRegistry(), path)
        reporter.close()
        assert len(path.read_text().splitlines()) == 1

    def test_append_mode_extends_flight_record(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        for _ in range(2):
            PeriodicReporter(MetricsRegistry(), path).close()
        assert len(path.read_text().splitlines()) == 2

    def test_write_after_close_raises(self, tmp_path):
        reporter = PeriodicReporter(MetricsRegistry(), tmp_path / "m.jsonl")
        reporter.close()
        with pytest.raises(ConfigurationError):
            reporter.write()

    def test_negative_cadences_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PeriodicReporter(MetricsRegistry(), tmp_path / "m.jsonl", every_records=-1)
        with pytest.raises(ConfigurationError):
            PeriodicReporter(MetricsRegistry(), tmp_path / "m.jsonl", every_seconds=-0.5)

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with PeriodicReporter(MetricsRegistry(), path) as reporter:
            reporter.tick()
        assert path.exists()
        assert reporter.samples_written == 1
