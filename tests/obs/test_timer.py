"""Tracer spans: nesting, decorator form, histogram recording."""

from __future__ import annotations

import itertools

from repro.obs import MetricsRegistry, Tracer, render_trace


def ticking_clock(step=1.0):
    """A deterministic clock advancing ``step`` per reading."""
    counter = itertools.count()
    return lambda: next(counter) * step


class TestNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        root = tracer.traces[-1]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.total_descendants() == 2

    def test_only_roots_reach_the_trace_deque(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.traces] == ["root"]

    def test_seconds_from_injected_clock(self):
        # Each clock reading advances 1s; the child consumes two
        # readings, so it spans exactly 1s.
        tracer = Tracer(clock=ticking_clock(1.0))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        root = tracer.traces[-1]
        assert root.children[0].seconds == 1.0
        assert root.seconds == 3.0

    def test_exception_unwinds_cleanly(self):
        tracer = Tracer(clock=ticking_clock())
        try:
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.traces] == ["root"]
        # The stack is clean: a new root is a root, not a child.
        with tracer.span("next"):
            pass
        assert tracer.traces[-1].name == "next"

    def test_trace_deque_is_bounded(self):
        tracer = Tracer(clock=ticking_clock(), max_traces=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.traces] == ["s2", "s3", "s4"]


class TestDecorator:
    def test_decorated_function_records_spans(self):
        tracer = Tracer(clock=ticking_clock())

        @tracer.span("work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        assert [s.name for s in tracer.traces] == ["work", "work"]

    def test_decorator_nests_inside_open_spans(self):
        tracer = Tracer(clock=ticking_clock())

        @tracer.span("inner")
        def inner():
            pass

        with tracer.span("outer"):
            inner()
        assert [c.name for c in tracer.traces[-1].children] == ["inner"]


class TestHistogramIntegration:
    def test_spans_feed_span_seconds_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, clock=ticking_clock())
        with tracer.span("query"):
            with tracer.span("pack"):
                pass
        hist = registry.get("span_seconds")
        assert hist is not None
        by_span = {labels["span"]: series for labels, series in hist.series()}
        assert by_span["query"].count == 1
        assert by_span["pack"].count == 1

    def test_no_registry_keeps_traces_only(self):
        tracer = Tracer(None, clock=ticking_clock())
        with tracer.span("root"):
            pass
        assert len(tracer.traces) == 1


class TestRenderTrace:
    def test_renders_nested_tree(self):
        tracer = Tracer(clock=ticking_clock(0.001))
        with tracer.span("query"):
            with tracer.span("pack"):
                pass
        text = render_trace(tracer.traces[-1])
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  pack")
        assert all(line.endswith("ms") for line in lines)
