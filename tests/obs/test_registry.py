"""MetricsRegistry and the three instrument kinds."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import Counter, DEFAULT_BUCKETS, Gauge, Histogram, MetricsRegistry
from repro.obs.registry import NOOP


class TestCounter:
    def test_starts_at_int_zero(self):
        counter = MetricsRegistry().counter("c_total")
        assert counter.value == 0
        assert type(counter.value) is int

    def test_inc_default_and_amount(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_float_increments_promote_to_float(self):
        counter = MetricsRegistry().counter("seconds_total")
        counter.inc(0.25)
        counter.inc(0.5)
        assert counter.value == 0.75
        assert type(counter.value) is float

    def test_reset_preserves_numeric_type(self):
        registry = MetricsRegistry()
        ints = registry.counter("events_total")
        floats = registry.counter("seconds_total")
        ints.inc(3)
        floats.inc(1.5)
        registry.reset()
        assert ints.value == 0 and type(ints.value) is int
        assert floats.value == 0.0 and type(floats.value) is float

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("records_total", labelnames=("outcome",))
        counter.labels("ok").inc(3)
        counter.labels(outcome="dead").inc()
        assert counter.labels("ok").value == 3
        assert counter.labels("dead").value == 1
        assert counter.total() == 4

    def test_labeled_parent_rejects_direct_inc(self):
        counter = MetricsRegistry().counter("records_total", labelnames=("outcome",))
        with pytest.raises(ConfigurationError):
            counter.inc()
        with pytest.raises(ConfigurationError):
            counter.value

    def test_label_handles_are_stable(self):
        counter = MetricsRegistry().counter("records_total", labelnames=("outcome",))
        assert counter.labels("ok") is counter.labels("ok")
        assert counter.labels("ok") is counter.labels(outcome="ok")

    def test_label_arity_and_name_errors(self):
        counter = MetricsRegistry().counter("records_total", labelnames=("outcome",))
        with pytest.raises(ConfigurationError):
            counter.labels("a", "b")
        with pytest.raises(ConfigurationError):
            counter.labels(nope="a")
        with pytest.raises(ConfigurationError):
            counter.labels("a", outcome="b")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_set_function_evaluated_at_read(self):
        gauge = MetricsRegistry().gauge("offset")
        state = {"offset": 0}
        gauge.set_function(lambda: state["offset"])
        state["offset"] = 42
        assert gauge.value == 42

    def test_reset_keeps_bound_function(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("offset")
        gauge.set_function(lambda: 7)
        registry.reset()
        assert gauge.value == 7


class TestHistogram:
    def test_count_sum_exact(self):
        hist = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 5.0

    def test_cumulative_counts_end_at_total(self):
        hist = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 99.0):
            hist.observe(value)
        # (≤1.0, ≤2.0, +Inf) cumulative
        assert hist.cumulative_counts() == [2, 3, 4]

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are inclusive upper bounds: observe(1.0)
        # counts in le="1.0".
        hist = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.cumulative_counts() == [1, 1, 1]

    def test_quantile_interpolates_within_bucket(self):
        hist = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)  # all ten in the (1.0, 2.0] bucket
        # Median rank 5 of 10 → halfway through the bucket's count.
        assert 1.0 <= hist.quantile(0.5) <= 2.0

    def test_quantile_overflow_clamps_to_largest_bound(self):
        hist = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_quantile_empty_is_zero(self):
        hist = MetricsRegistry().histogram("h_seconds")
        assert hist.quantile(0.5) == 0.0

    def test_quantile_domain_checked(self):
        hist = MetricsRegistry().histogram("h_seconds")
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ConfigurationError):
            registry.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h3", buckets=(1.0, 1.0))

    def test_default_buckets_sorted_unique(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total")
        assert first is again

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_labelnames_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad-name")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_instruments_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        registry.gauge("b")
        registry.histogram("c_seconds")
        assert [i.name for i in registry.instruments()] == ["a_total", "b", "c_seconds"]
        assert isinstance(registry.get("a_total"), Counter)
        assert isinstance(registry.get("b"), Gauge)
        assert isinstance(registry.get("c_seconds"), Histogram)
        assert registry.get("missing") is None


class TestDisabledRegistry:
    def test_factories_return_the_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a_total") is NOOP
        assert registry.gauge("b") is NOOP
        assert registry.histogram("c_seconds") is NOOP
        assert NOOP.labels("anything") is NOOP

    def test_noop_absorbs_the_full_instrument_api(self):
        noop = MetricsRegistry(enabled=False).counter("a_total")
        noop.inc()
        noop.dec()
        noop.set(5)
        noop.set_function(lambda: 1)
        noop.observe(0.1)
        noop.reset()
        assert noop.value == 0
        assert noop.count == 0
        assert noop.sum == 0
        assert noop.total() == 0
        assert noop.quantile(0.5) == 0.0
        assert list(noop.series()) == []

    def test_nothing_registers_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a_total")
        assert registry.instruments() == []
