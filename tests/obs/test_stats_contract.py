"""The legacy ``stats()`` contracts, now backed by the registry.

Three guarantees the observability refactor must not erode:

1. **Schema stability** — the exact key sets of ``StreamRunner.stats()``
   and ``QueryEngine.stats()`` are pinned here; adding or removing a key
   is a deliberate act that updates this file.
2. **Bit identity** — on a pinned input stream the values (and their
   Python types) match the pre-registry implementation exactly.
3. **Defensive snapshots** — the returned dicts are fresh objects;
   mutating them (including the nested ``dead_letter_reasons``) cannot
   corrupt the runner's or engine's internal state.
"""

from __future__ import annotations

import tracemalloc

import numpy as np

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.obs import MetricsRegistry
from repro.serve import QueryEngine
from repro.stream import IteratorEdgeSource, StreamRunner

RUNNER_STATS_KEYS = {
    "checkpoints_written",
    "dead_letter_reasons",
    "dead_lettered",
    "dropped",
    "duplicate_edges_detected",
    "dynamic",
    "last_checkpoint_age_seconds",
    "last_checkpoint_offset",
    "normalized",
    "normalized_reasons",
    "offset",
    "policy",
    "records_in",
    "records_ok",
    "resumed_from_generation",
    "retries",
    "source",
    "source_exhausted",
    "vertices",
}

ENGINE_STATS_KEYS = {
    "batches",
    "candidates_pruned",
    "candidates_scored",
    "index_bands",
    "index_buckets",
    "index_build_seconds",
    "index_built",
    "index_rows",
    "k",
    "pack_seconds",
    "packed_bytes",
    "pairs_scored",
    "scores_per_second",
    "scoring_seconds",
    "topk_queries",
    "vertices",
}

#: The pre-registry implementation's output on DIRTY (captured before
#: the refactor) — values *and* types must match forever.
DIRTY = [
    (0, 1),
    (1, 2),
    "3 4",
    "bad line",
    (2, 2),
    (-1, 5),
    (0, 1, "x"),
    {"not": "a record"},
    (5, 6, 7.5),
    "7 8 9.5",
]

PINNED_RUNNER_STATS = {
    "checkpoints_written": 0,
    "dead_letter_reasons": {
        "bad_record_type": 1,
        "bad_timestamp": 1,
        "negative_vertex": 1,
        "non_integer_vertex": 1,
        "self_loop": 1,
    },
    "dead_lettered": 5,
    "dropped": 0,
    "duplicate_edges_detected": 0,
    "dynamic": False,
    "last_checkpoint_age_seconds": None,
    "last_checkpoint_offset": None,
    "normalized": 0,
    "normalized_reasons": {},
    "offset": 10,
    "policy": "quarantine",
    "records_in": 10,
    "records_ok": 5,
    "resumed_from_generation": None,
    "retries": 0,
    "source": "fixture",
    "source_exhausted": True,
    "vertices": 9,
}


def dirty_runner():
    return StreamRunner(
        IteratorEdgeSource(DIRTY, name="fixture"),
        config=SketchConfig(k=16, seed=9),
        clock=lambda: 0.0,
    )


def warm_engine():
    predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=9, track_witnesses=True))
    for u, v in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 3)]:
        predictor.update(u, v)
    engine = QueryEngine(predictor)
    engine.score_many([(0, 1), (1, 2), (0, 4)], "jaccard")
    engine.top_k(0, "jaccard", k=3)
    return engine


class TestRunnerStatsSchema:
    def test_exact_key_set(self):
        runner = dirty_runner()
        runner.run()
        assert set(runner.stats()) == RUNNER_STATS_KEYS

    def test_bit_identical_to_pre_registry_output(self):
        runner = dirty_runner()
        runner.run()
        stats = runner.stats()
        assert stats == PINNED_RUNNER_STATS
        for key, expected in PINNED_RUNNER_STATS.items():
            assert type(stats[key]) is type(expected), key

    def test_disabled_registry_keeps_the_schema(self):
        runner = StreamRunner(
            IteratorEdgeSource(DIRTY, name="fixture"),
            config=SketchConfig(k=16, seed=9),
            clock=lambda: 0.0,
            metrics=MetricsRegistry(enabled=False),
        )
        runner.run()
        assert set(runner.stats()) == RUNNER_STATS_KEYS


class TestEngineStatsSchema:
    def test_exact_key_set(self):
        assert set(warm_engine().stats()) == ENGINE_STATS_KEYS

    def test_pinned_deterministic_values(self):
        stats = warm_engine().stats()
        assert stats["vertices"] == 5
        assert stats["k"] == 16
        assert stats["batches"] == 2
        assert stats["pairs_scored"] == 7
        assert stats["topk_queries"] == 1
        assert stats["candidates_scored"] == 4
        assert stats["candidates_pruned"] == 0
        assert stats["index_built"] is True
        assert stats["index_buckets"] == 45
        assert stats["index_bands"] == 16
        assert stats["index_rows"] == 1

    def test_counter_types_survive_refresh(self):
        engine = warm_engine()
        engine.refresh()
        stats = engine.stats()
        assert stats["batches"] == 0 and type(stats["batches"]) is int
        assert stats["pairs_scored"] == 0 and type(stats["pairs_scored"]) is int
        assert stats["scoring_seconds"] == 0.0
        assert type(stats["scoring_seconds"]) is float


class TestDefensiveSnapshots:
    def test_mutating_runner_stats_cannot_corrupt_internals(self):
        runner = dirty_runner()
        runner.run()
        stats = runner.stats()
        stats["records_in"] = -999
        stats["dead_letter_reasons"]["self_loop"] = -999
        stats["dead_letter_reasons"]["forged_reason"] = 1
        stats.clear()
        fresh = runner.stats()
        assert fresh == PINNED_RUNNER_STATS
        assert "forged_reason" not in fresh["dead_letter_reasons"]

    def test_runner_stats_returns_fresh_objects(self):
        runner = dirty_runner()
        runner.run()
        first, second = runner.stats(), runner.stats()
        assert first is not second
        assert first["dead_letter_reasons"] is not second["dead_letter_reasons"]

    def test_mutating_engine_stats_cannot_corrupt_internals(self):
        engine = warm_engine()
        stats = engine.stats()
        expected = dict(stats)
        stats["pairs_scored"] = -999
        stats.clear()
        assert engine.stats() == expected


class TestSharedRegistry:
    def test_runner_exposes_its_instruments(self):
        runner = dirty_runner()
        runner.run()
        names = {i.name for i in runner.metrics.instruments()}
        assert "ingest_records_total" in names
        assert "ingest_dead_letters_total" in names
        records = runner.metrics.get("ingest_records_total")
        by_outcome = {
            labels["outcome"]: series.value for labels, series in records.series()
        }
        assert by_outcome["ok"] == 5
        assert by_outcome["dead_letter"] == 5

    def test_engine_exposes_its_instruments(self):
        engine = warm_engine()
        names = {i.name for i in engine.metrics.instruments()}
        assert "query_pairs_scored_total" in names
        assert engine.metrics.get("query_pairs_scored_total").value == 7

    def test_external_registry_is_shared(self):
        registry = MetricsRegistry()
        runner = StreamRunner(
            IteratorEdgeSource([(0, 1), (1, 2)], name="fixture"),
            config=SketchConfig(k=16, seed=9),
            metrics=registry,
        )
        runner.run()
        assert runner.metrics is registry
        assert registry.get("ingest_records_total") is not None


class TestDisabledOverhead:
    def test_noop_inc_allocates_nothing(self):
        """A disabled registry must add no allocations per edge: the
        hot path's ``handle.inc()`` on the shared no-op is free."""
        handle = MetricsRegistry(enabled=False).counter(
            "ingest_records_total", labelnames=("outcome",)
        ).labels("ok")
        for _ in range(100):
            handle.inc()  # warm any lazy interpreter state
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(10_000):
            handle.inc()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Zero per-call allocations: any constant slack (< 1 KiB) is
        # interpreter noise, not O(records) growth.
        assert after - before < 1024

    def test_disabled_ingest_allocates_no_metric_state(self):
        registry = MetricsRegistry(enabled=False)
        runner = StreamRunner(
            IteratorEdgeSource([(i, i + 1) for i in range(50)], name="fixture"),
            config=SketchConfig(k=16, seed=9),
            metrics=registry,
        )
        runner.run()
        assert registry.instruments() == []
        assert runner.records_ok == 0  # bookkeeping explicitly opted out

    def test_numpy_scores_unaffected_by_registry_choice(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=16, seed=9))
        for u, v in [(0, 1), (0, 2), (1, 2), (2, 3)]:
            predictor.update(u, v)
        pairs = np.array([[0, 1], [1, 2]], dtype=np.int64)
        enabled = QueryEngine(predictor, metrics=MetricsRegistry())
        disabled = QueryEngine(predictor, metrics=MetricsRegistry(enabled=False))
        np.testing.assert_array_equal(
            enabled.score_many(pairs, "jaccard"), disabled.score_many(pairs, "jaccard")
        )
