"""Tests for the LinkPredictor protocol's shared machinery.

Verifies the default implementations (`process`, `scores`,
`rank_candidates`) against every concrete method, and the public error
hierarchy's contracts.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.core import (
    BiasedMinHashLinkPredictor,
    MinHashLinkPredictor,
    SketchConfig,
)
from repro.core.triangles import StreamingTriangleCounter
from repro.core.windowed import WindowedMinHashPredictor
from repro.exact import EdgeReservoirBaseline, ExactOracle, NeighborReservoirBaseline
from repro.graph import from_pairs
from tests.conftest import TOY_EDGES

ALL_METHODS = [
    ("minhash", lambda: MinHashLinkPredictor(SketchConfig(k=64, seed=1))),
    ("biased", lambda: BiasedMinHashLinkPredictor(SketchConfig(k=64, seed=1))),
    ("exact", ExactOracle),
    ("edge_reservoir", lambda: EdgeReservoirBaseline(100, seed=1)),
    ("neighbor_reservoir", lambda: NeighborReservoirBaseline(16, seed=1)),
    ("windowed", lambda: WindowedMinHashPredictor(SketchConfig(k=64, seed=1), 100, 2)),
    ("triangles", lambda: StreamingTriangleCounter(SketchConfig(k=64, seed=1))),
]


@pytest.mark.parametrize("name,factory", ALL_METHODS)
class TestProtocolAcrossMethods:
    def test_process_returns_edge_count(self, name, factory):
        predictor = factory()
        assert predictor.process(from_pairs(TOY_EDGES)) == len(TOY_EDGES)

    def test_method_name_is_set(self, name, factory):
        assert factory().method_name != "abstract"

    def test_degree_zero_for_unseen(self, name, factory):
        predictor = factory()
        predictor.process(from_pairs(TOY_EDGES))
        assert predictor.degree(123456) == 0

    def test_nominal_bytes_nonnegative_and_grows(self, name, factory):
        empty = factory()
        loaded = factory()
        loaded.process(from_pairs(TOY_EDGES))
        assert empty.nominal_bytes() >= 0
        assert loaded.nominal_bytes() >= empty.nominal_bytes()

    def test_pa_supported_everywhere(self, name, factory):
        predictor = factory()
        predictor.process(from_pairs(TOY_EDGES))
        assert predictor.score(0, 4, "preferential_attachment") == 9.0


class TestRankCandidatesDefaults:
    def test_deterministic_tie_break(self, toy_oracle):
        ties = [(2, 3), (0, 3)]  # both CN = 1
        first = toy_oracle.rank_candidates(ties, "common_neighbors")
        second = toy_oracle.rank_candidates(list(reversed(ties)), "common_neighbors")
        assert first == second

    def test_top_none_returns_all(self, toy_oracle):
        ranked = toy_oracle.rank_candidates([(0, 1), (2, 3)], "jaccard", top=None)
        assert len(ranked) == 2

    def test_scores_batch_keys(self, toy_oracle):
        result = toy_oracle.scores(0, 1, ["jaccard", "adamic_adar"])
        assert set(result) == {"jaccard", "adamic_adar"}


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            error_class = getattr(errors, name)
            assert issubclass(error_class, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_unknown_vertex_error_message_and_key(self):
        error = errors.UnknownVertexError(42)
        assert "42" in str(error)
        assert error.vertex == 42
        assert isinstance(error, KeyError)

    def test_stream_format_error_carries_line(self):
        error = errors.StreamFormatError("bad row", line_number=7)
        assert "line 7" in str(error)
        assert error.line_number == 7

    def test_stream_format_error_without_line(self):
        error = errors.StreamFormatError("bad row")
        assert error.line_number is None

    def test_dataset_error_is_lookup_error(self):
        assert issubclass(errors.DatasetError, LookupError)
