"""Tests pinning the ``repro.api`` facade as the public surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
import repro.api
from repro import IngestReport, SketchConfig, build_predictor, evaluate, ingest, open_engine
from repro.core import BiasedMinHashLinkPredictor, MinHashLinkPredictor
from repro.errors import ConfigurationError, ReproError
from repro.serve import QueryEngine

EDGES = [(u % 60, (u * 7 + 1) % 60) for u in range(600)] + [
    (u % 60, (u + 1) % 60) for u in range(600)
]


@pytest.fixture()
def edge_file(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("".join(f"{u} {v}\n" for u, v in EDGES))
    return str(path)


class TestSurface:
    def test_api_all_is_the_documented_surface(self):
        # The facade's stable contract: exactly these names, no drift.
        assert repro.api.__all__ == [
            "IngestReport",
            "StreamRecord",
            "build_predictor",
            "evaluate",
            "ingest",
            "open_engine",
            "serve",
        ]

    def test_facade_reexported_from_package_root(self):
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name)
            assert name in repro.__all__

    def test_import_surface_check(self):
        # The CI smoke: importable, and __all__ members all resolve.
        for name in repro.api.__all__:
            assert hasattr(repro.api, name)


class TestBuildPredictor:
    def test_config_first_spelling(self):
        predictor = build_predictor(SketchConfig(k=8, seed=1))
        assert isinstance(predictor, MinHashLinkPredictor)
        assert predictor.config.k == 8

    def test_method_keyword(self):
        predictor = build_predictor(SketchConfig(k=8), method="biased")
        assert isinstance(predictor, BiasedMinHashLinkPredictor)

    def test_legacy_method_first_spelling_still_works(self):
        predictor = build_predictor("minhash", SketchConfig(k=8))
        assert isinstance(predictor, MinHashLinkPredictor)

    def test_defaults_to_minhash_default_config(self):
        assert isinstance(build_predictor(), MinHashLinkPredictor)

    def test_positional_config_with_extra_positionals_rejected(self):
        with pytest.raises(ConfigurationError):
            build_predictor(SketchConfig(k=8), 100)


class TestIngest:
    def test_serial_ingest_from_file(self, edge_file):
        report = ingest(edge_file, config=SketchConfig(k=8, seed=2))
        assert isinstance(report, IngestReport)
        assert report.records_ok == len(EDGES)
        assert report.predictor.vertex_count == 60

    def test_sharded_ingest_is_bit_identical(self, edge_file):
        config = SketchConfig(k=8, seed=2)
        serial = ingest(edge_file, config=config)
        sharded = ingest(edge_file, config=config, workers=3)
        ours = sharded.predictor.export_arrays()
        theirs = serial.predictor.export_arrays()
        for name in ("vertex_ids", "values", "witnesses", "update_counts", "degrees"):
            assert np.array_equal(getattr(ours, name), getattr(theirs, name)), name

    def test_ingest_from_edge_list(self):
        report = ingest(EDGES[:100], config=SketchConfig(k=8))
        assert report.records_ok == 100

    def test_ingest_checkpointed_and_resume(self, edge_file, tmp_path):
        config = SketchConfig(k=8, seed=2)
        ckpt = tmp_path / "ck"
        ingest(edge_file, config=config, checkpoint_dir=ckpt, checkpoint_every=100,
               max_records=500)
        resumed = ingest(edge_file, config=config, checkpoint_dir=ckpt,
                         checkpoint_every=100, resume=True)
        full = ingest(edge_file, config=config)
        assert np.array_equal(
            resumed.predictor.export_arrays().values,
            full.predictor.export_arrays().values,
        )

    def test_unknown_source_raises(self):
        with pytest.raises(ReproError):
            ingest("no-such-dataset-or-file", config=SketchConfig(k=8))


class TestOpenEngine:
    def test_from_warm_predictor(self, edge_file):
        report = ingest(edge_file, config=SketchConfig(k=8, seed=2))
        engine = open_engine(report.predictor)
        assert isinstance(engine, QueryEngine)
        assert engine.score_many([(0, 1)], "jaccard").shape == (1,)

    def test_from_serial_checkpoint_dir(self, edge_file, tmp_path):
        ckpt = tmp_path / "ck"
        report = ingest(edge_file, config=SketchConfig(k=8, seed=2),
                        checkpoint_dir=ckpt, checkpoint_every=100)
        engine = open_engine(ckpt)
        direct = open_engine(report.predictor)
        assert np.array_equal(
            engine.score_many([(0, 1), (3, 9)], "jaccard"),
            direct.score_many([(0, 1), (3, 9)], "jaccard"),
        )

    def test_from_sharded_checkpoint_dir(self, edge_file, tmp_path):
        ckpt = tmp_path / "ck"
        report = ingest(edge_file, config=SketchConfig(k=8, seed=2), workers=3,
                        checkpoint_dir=ckpt, checkpoint_every=100)
        engine = open_engine(ckpt)
        direct = open_engine(report.predictor)
        assert np.array_equal(
            engine.score_many([(0, 1), (3, 9)], "adamic_adar"),
            direct.score_many([(0, 1), (3, 9)], "adamic_adar"),
        )

    def test_engine_options_pass_through(self, edge_file):
        report = ingest(edge_file, config=SketchConfig(k=8, seed=2))
        engine = open_engine(report.predictor, batch_size=16)
        assert engine.batch_size == 16

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ReproError):
            open_engine(tmp_path / "nowhere")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ReproError):
            open_engine(tmp_path)


class TestEvaluate:
    def test_profile_shape(self, edge_file):
        profile = evaluate(edge_file, config=SketchConfig(k=32), pairs=40,
                           measures=("jaccard",))
        assert set(profile) == {"jaccard"}
        assert {"mae", "rmse", "mre"} <= set(profile["jaccard"])

    def test_exact_method_has_zero_error(self, edge_file):
        profile = evaluate(edge_file, method="exact", pairs=40, measures=("jaccard",))
        assert profile["jaccard"]["mae"] == pytest.approx(0.0)
