"""Internal-consistency tests: different code paths that compute the
same mathematical quantity must agree.
"""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.estimators import (
    common_neighbors_from_jaccard,
    union_size_from_jaccard,
    witness_sum_from_matches,
)
from repro.graph import from_pairs
from repro.graph.generators import erdos_renyi


@pytest.fixture(scope="module")
def warm_predictor():
    predictor = MinHashLinkPredictor(SketchConfig(k=64, seed=21))
    predictor.process(erdos_renyi(120, 900, seed=3))
    return predictor


class TestClosedFormVsGenericPath:
    def test_cn_closed_form_equals_unit_weight_ht(self, warm_predictor):
        """The CN closed form and the generic HT path with f=1 are the
        same algebra: union·Ĵ = Ĵ(du+dv)/(1+Ĵ)."""
        predictor = warm_predictor
        for u in range(0, 30, 3):
            for v in range(1, 30, 3):
                if u == v:
                    continue
                su = predictor._sketches.get(u)
                sv = predictor._sketches.get(v)
                if su is None or sv is None:
                    continue
                j = su.jaccard(sv)
                du, dv = predictor.degree(u), predictor.degree(v)
                closed = common_neighbors_from_jaccard(j, du, dv)
                union = union_size_from_jaccard(j, du, dv)
                matches = int(su.slot_matches(sv).sum())
                generic = witness_sum_from_matches(
                    union, [2] * matches, lambda d: 1.0, predictor.config.k
                )
                # Clamp the generic value the way the closed form does.
                generic = min(generic, float(min(du, dv)))
                assert generic == pytest.approx(closed, rel=1e-12, abs=1e-12)

    def test_score_jaccard_equals_sketch_jaccard(self, warm_predictor):
        predictor = warm_predictor
        for u, v in ((0, 1), (5, 9), (10, 40)):
            assert predictor.score(u, v, "jaccard") == predictor.jaccard(u, v)

    def test_estimate_bundle_consistent_with_score(self, warm_predictor):
        predictor = warm_predictor
        bundle = predictor.estimate(0, 1)
        assert bundle.jaccard == predictor.score(0, 1, "jaccard")
        assert bundle.adamic_adar == predictor.score(0, 1, "adamic_adar")
        assert bundle.common_neighbors == pytest.approx(
            predictor.score(0, 1, "common_neighbors")
        )

    def test_ratio_measures_consistent_with_cn(self, warm_predictor):
        """cosine = ĈN/sqrt(du·dv) must hold exactly through score()."""
        import math

        predictor = warm_predictor
        for u, v in ((0, 2), (3, 7), (11, 13)):
            du, dv = predictor.degree(u), predictor.degree(v)
            if du == 0 or dv == 0:
                continue
            cn = predictor.score(u, v, "common_neighbors")
            cosine = predictor.score(u, v, "cosine")
            assert cosine == pytest.approx(cn / math.sqrt(du * dv))
