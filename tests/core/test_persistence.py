"""Tests for predictor checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.persistence import (
    FORMAT_VERSION,
    load_predictor,
    load_predictor_with_metadata,
    save_predictor,
)
from repro.errors import ConfigurationError, SketchStateError
from repro.graph import from_pairs
from repro.graph.generators import erdos_renyi
from tests.conftest import TOY_EDGES


def checkpoint_path(tmp_path):
    return tmp_path / "predictor.npz"


class TestRoundTrip:
    def test_queries_identical_after_restore(self, tmp_path):
        original = MinHashLinkPredictor(SketchConfig(k=64, seed=3))
        original.process(erdos_renyi(100, 400, seed=1))
        path = checkpoint_path(tmp_path)
        saved = save_predictor(original, path)
        assert saved == original.vertex_count
        restored = load_predictor(path)
        for u in range(0, 20):
            for v in range(20, 40):
                for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                    assert restored.score(u, v, measure) == original.score(
                        u, v, measure
                    )

    def test_updates_continue_identically(self, tmp_path):
        stream = erdos_renyi(80, 300, seed=2)
        half = len(stream) // 2
        original = MinHashLinkPredictor(SketchConfig(k=32, seed=4))
        original.process(stream[:half])
        path = checkpoint_path(tmp_path)
        save_predictor(original, path)
        restored = load_predictor(path)
        for predictor in (original, restored):
            predictor.process(stream[half:])
        for u, v in ((0, 1), (2, 3), (10, 20)):
            assert restored.score(u, v, "adamic_adar") == original.score(
                u, v, "adamic_adar"
            )
        assert restored.degree(0) == original.degree(0)

    def test_sketch_arrays_bit_identical(self, tmp_path):
        original = MinHashLinkPredictor(SketchConfig(k=16, seed=5))
        original.process(from_pairs(TOY_EDGES))
        path = checkpoint_path(tmp_path)
        save_predictor(original, path)
        restored = load_predictor(path)
        for vertex in range(5):
            assert np.array_equal(
                restored._sketches[vertex].values,
                original._sketches[vertex].values,
            )
            assert np.array_equal(
                restored._sketches[vertex].witnesses,
                original._sketches[vertex].witnesses,
            )

    def test_witnessless_config_round_trips(self, tmp_path):
        original = MinHashLinkPredictor(SketchConfig(k=16, seed=6, track_witnesses=False))
        original.process(from_pairs(TOY_EDGES))
        path = checkpoint_path(tmp_path)
        save_predictor(original, path)
        restored = load_predictor(path)
        assert not restored.config.track_witnesses
        assert restored.score(0, 1, "common_neighbors") == original.score(
            0, 1, "common_neighbors"
        )

    def test_empty_predictor_round_trips(self, tmp_path):
        path = checkpoint_path(tmp_path)
        assert save_predictor(MinHashLinkPredictor(), path) == 0
        restored = load_predictor(path)
        assert restored.vertex_count == 0
        assert restored.score(1, 2, "jaccard") == 0.0


class TestFileObjects:
    def test_bytesio_round_trip(self):
        """In-memory checkpoints (the distributed-ingest transport)."""
        import io

        original = MinHashLinkPredictor(SketchConfig(k=32, seed=9))
        original.process(from_pairs(TOY_EDGES))
        buffer = io.BytesIO()
        save_predictor(original, buffer)
        buffer.seek(0)
        restored = load_predictor(buffer)
        assert restored.score(0, 1, "adamic_adar") == original.score(
            0, 1, "adamic_adar"
        )


class TestIntegrity:
    """The hardened-write guarantees: atomicity, checksums, metadata."""

    def _saved(self, tmp_path, k=16, seed=8, metadata=None):
        predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed))
        predictor.process(from_pairs(TOY_EDGES))
        path = checkpoint_path(tmp_path)
        save_predictor(predictor, path, metadata=metadata)
        return predictor, path

    def test_no_temp_files_left_behind(self, tmp_path):
        self._saved(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_metadata_round_trips(self, tmp_path):
        _, path = self._saved(tmp_path, metadata={"stream_offset": 4242, "generation": 7})
        _, metadata = load_predictor_with_metadata(path)
        assert metadata == {"stream_offset": 4242, "generation": 7}

    def test_no_metadata_is_empty_dict(self, tmp_path):
        _, path = self._saved(tmp_path)
        _, metadata = load_predictor_with_metadata(path)
        assert metadata == {}

    def test_suffixless_path_gets_npz_suffix(self, tmp_path):
        """np.savez appends .npz to suffixless paths; the atomic path
        must mirror that so callers find the file where numpy would
        have put it."""
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=2))
        predictor.process(from_pairs(TOY_EDGES))
        save_predictor(predictor, tmp_path / "state")
        assert (tmp_path / "state.npz").exists()
        assert load_predictor(tmp_path / "state.npz").vertex_count == predictor.vertex_count

    def test_bit_flip_in_payload_detected(self, tmp_path):
        from repro.errors import CheckpointCorruptError

        _, path = self._saved(tmp_path)
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        values = fields["values"].copy()
        values[0, 0] ^= 1  # single bit flip, archive stays a valid zip
        fields["values"] = values
        np.savez_compressed(path, **fields)
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_predictor(path)

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9, 0.99])
    def test_truncation_at_any_offset_rejected(self, tmp_path, fraction):
        from repro.errors import CheckpointCorruptError

        _, path = self._saved(tmp_path, k=32)
        raw = path.read_bytes()
        path.write_bytes(raw[: int(len(raw) * fraction)])
        with pytest.raises(CheckpointCorruptError):
            load_predictor(path)

    def test_missing_file_is_not_corrupt(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_predictor(tmp_path / "never-written.npz")


class TestValidation:
    def test_countmin_degrees_not_checkpointable(self, tmp_path):
        predictor = MinHashLinkPredictor(SketchConfig(degree_mode="countmin"))
        with pytest.raises(SketchStateError):
            save_predictor(predictor, checkpoint_path(tmp_path))

    def test_future_format_version_rejected(self, tmp_path):
        predictor = MinHashLinkPredictor(SketchConfig(k=8))
        predictor.process(from_pairs(TOY_EDGES))
        path = checkpoint_path(tmp_path)
        save_predictor(predictor, path)
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        fields["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez_compressed(path, **fields)
        with pytest.raises(ConfigurationError, match="version"):
            load_predictor(path)


class TestLoadErrorContract:
    """The operator-facing load errors: wrong file vs corrupt vs
    incompatible, each with a message that names the problem."""

    def _saved_fields(self, tmp_path, **config):
        predictor = MinHashLinkPredictor(SketchConfig(k=8, seed=1, **config))
        predictor.process(from_pairs(TOY_EDGES))
        path = checkpoint_path(tmp_path)
        save_predictor(predictor, path)
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        return path, fields

    def _rewrite(self, path, fields):
        """Re-checksum and rewrite, so only the *semantic* change is
        visible to the loader (not a checksum mismatch)."""
        from repro.core.persistence import _payload_checksum

        fields.pop("sha256", None)
        fields["sha256"] = np.frombuffer(
            bytes.fromhex(_payload_checksum(fields)), dtype=np.uint8
        )
        np.savez_compressed(path, **fields)

    def test_non_checkpoint_npz_names_missing_fields(self, tmp_path):
        from repro.errors import CheckpointCorruptError

        path = tmp_path / "model.npz"
        np.savez(path, weights=np.arange(4.0), bias=np.zeros(2))
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_predictor(path)
        message = str(excinfo.value)
        assert "not a predictor checkpoint archive" in message
        # Both what's absent and what the file actually holds.
        assert "missing field(s)" in message
        assert "values" in message and "vertex_ids" in message
        assert "weights" in message

    def test_single_missing_field_rejected_before_checksum(self, tmp_path):
        from repro.errors import CheckpointCorruptError

        path, fields = self._saved_fields(tmp_path)
        del fields["degrees"]
        self._rewrite(path, fields)
        with pytest.raises(CheckpointCorruptError, match="missing field"):
            load_predictor(path)

    def test_incompatible_config_wrapped_with_context(self, tmp_path):
        path, fields = self._saved_fields(tmp_path)
        fields["k"] = np.int64(0)
        self._rewrite(path, fields)
        with pytest.raises(ConfigurationError) as excinfo:
            load_predictor(path)
        message = str(excinfo.value)
        assert "incompatible sketch configuration" in message
        assert "k must be positive" in message
