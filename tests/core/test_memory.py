"""Tests for memory accounting."""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig, memory_report
from repro.core.memory import MemoryReport, deep_getsizeof
from repro.exact import ExactOracle
from repro.graph import from_pairs
from tests.conftest import TOY_EDGES


class TestDeepGetsizeof:
    def test_containers_counted_recursively(self):
        flat = deep_getsizeof([1, 2, 3])
        nested = deep_getsizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_getsizeof(a) > 0

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        assert deep_getsizeof([shared, shared]) < 2 * deep_getsizeof(shared)

    def test_slots_objects(self):
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = list(range(100))

        assert deep_getsizeof(Slotted()) > deep_getsizeof(list(range(100))) * 0.9


class TestMemoryReport:
    def test_report_fields(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=16))
        predictor.process(from_pairs(TOY_EDGES))
        report = memory_report(predictor)
        assert isinstance(report, MemoryReport)
        assert report.method == "minhash"
        assert report.vertices == 5
        assert report.nominal_bytes == predictor.nominal_bytes()
        assert report.measured_bytes > report.nominal_bytes  # interpreter overhead

    def test_per_vertex_figure(self):
        predictor = MinHashLinkPredictor(SketchConfig(k=16))
        predictor.process(from_pairs(TOY_EDGES))
        report = memory_report(predictor)
        assert report.nominal_bytes_per_vertex == pytest.approx(16 * 16 + 8)

    def test_empty_predictor(self):
        report = memory_report(MinHashLinkPredictor())
        assert report.vertices == 0
        assert report.nominal_bytes_per_vertex == 0.0
        assert report.interpreter_overhead == 0.0

    def test_exact_oracle_report(self):
        oracle = ExactOracle()
        oracle.process(from_pairs(TOY_EDGES))
        report = memory_report(oracle)
        assert report.method == "exact"
        assert report.vertices == 5

    def test_row_renders(self):
        report = MemoryReport("m", 10, 1000, 5000)
        row = report.row()
        assert "m" in row and "1,000" in row
