"""Tests for the sliding-window predictor."""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.windowed import WindowedMinHashPredictor
from repro.errors import ConfigurationError
from repro.graph import from_pairs
from repro.graph.generators import erdos_renyi


def config(k=64, seed=7, **kwargs):
    return SketchConfig(k=k, seed=seed, **kwargs)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedMinHashPredictor(config(), pane_edges=0)
        with pytest.raises(ConfigurationError):
            WindowedMinHashPredictor(config(), panes=1)
        with pytest.raises(ConfigurationError):
            WindowedMinHashPredictor(config(degree_mode="countmin"))


class TestWindowSemantics:
    def test_matches_unwindowed_while_window_covers_stream(self):
        stream = erdos_renyi(60, 200, seed=1)
        windowed = WindowedMinHashPredictor(config(), pane_edges=100, panes=4)
        plain = MinHashLinkPredictor(config())
        for predictor in (windowed, plain):
            predictor.process(stream)
        assert windowed.window_edges == 200
        for u in range(0, 10):
            for v in range(10, 20):
                for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                    assert windowed.score(u, v, measure) == plain.score(
                        u, v, measure
                    ), (u, v, measure)

    def test_old_edges_are_forgotten(self):
        # Phase 1 connects 0-{1..5}; then enough filler edges (among
        # unrelated vertices) rotate the window past phase 1 entirely.
        windowed = WindowedMinHashPredictor(config(), pane_edges=10, panes=2)
        windowed.process(from_pairs([(0, i) for i in range(1, 6)]))
        assert windowed.degree(0) == 5
        filler = [(100 + i, 200 + i) for i in range(40)]
        windowed.process(from_pairs(filler))
        assert windowed.degree(0) == 0
        assert windowed.score(0, 1, "common_neighbors") == 0.0

    def test_window_edges_bounded(self):
        windowed = WindowedMinHashPredictor(config(k=8), pane_edges=10, panes=3)
        windowed.process(from_pairs([(i, i + 1) for i in range(100)]))
        assert windowed.window_edges <= 30
        assert windowed.window_edges > 20

    def test_recent_edges_always_visible(self):
        windowed = WindowedMinHashPredictor(config(), pane_edges=10, panes=2)
        windowed.process(from_pairs([(i, i + 1) for i in range(95)]))
        windowed.process(from_pairs([(0, 500), (1, 500)]))
        # 0 and 1 share the fresh neighbor 500.
        assert windowed.score(0, 1, "common_neighbors") > 0.0

    def test_degree_sums_over_panes(self):
        windowed = WindowedMinHashPredictor(config(), pane_edges=3, panes=4)
        # Vertex 0 gains one neighbor in each of 3 panes.
        edges = [(0, 1), (10, 11), (12, 13),
                 (0, 2), (14, 15), (16, 17),
                 (0, 3)]
        windowed.process(from_pairs(edges))
        assert windowed.degree(0) == 3
        assert len(windowed._stores) == 3


class TestAccounting:
    def test_memory_bounded_by_pane_count(self):
        windowed = WindowedMinHashPredictor(config(k=8), pane_edges=20, panes=2)
        windowed.process(from_pairs([(i, i + 1) for i in range(500)]))
        # At most 2 panes of at most 20 edges => at most ~80 sketched
        # vertex slots alive regardless of stream length.
        per_vertex = 8 * 16 + 8
        assert windowed.nominal_bytes() <= 2 * 40 * per_vertex

    def test_vertex_count_deduplicates_across_panes(self):
        windowed = WindowedMinHashPredictor(config(k=8), pane_edges=2, panes=3)
        windowed.process(from_pairs([(0, 1), (0, 2), (0, 3), (0, 4)]))
        assert windowed.vertex_count == 5

    def test_cold_vertices_score_zero(self):
        windowed = WindowedMinHashPredictor(config(k=8), pane_edges=5, panes=2)
        windowed.process(from_pairs([(1, 2)]))
        assert windowed.score(1, 99, "jaccard") == 0.0
        assert windowed.score(98, 99, "adamic_adar") == 0.0

    def test_preferential_attachment(self):
        windowed = WindowedMinHashPredictor(config(k=8), pane_edges=5, panes=2)
        windowed.process(from_pairs([(0, 1), (0, 2), (3, 1)]))
        assert windowed.score(0, 3, "preferential_attachment") == 2.0
