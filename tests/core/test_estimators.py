"""Tests for the pure estimator algebra."""

from __future__ import annotations

import math

import pytest

from repro.core.estimators import (
    clamp_intersection,
    common_neighbors_from_jaccard,
    jaccard_std_error,
    union_size_from_jaccard,
    witness_sum_from_matches,
)
from repro.errors import ConfigurationError


class TestClosedForms:
    def test_inversion_identity(self):
        # Starting from a true (CN, du, dv), the jaccard of those sets
        # must be mapped back to exactly CN and the union size.
        cn, du, dv = 7, 20, 15
        union = du + dv - cn
        j = cn / union
        assert common_neighbors_from_jaccard(j, du, dv) == pytest.approx(cn)
        assert union_size_from_jaccard(j, du, dv) == pytest.approx(union)

    def test_zero_jaccard(self):
        assert common_neighbors_from_jaccard(0.0, 10, 10) == 0.0
        assert union_size_from_jaccard(0.0, 10, 10) == 20.0

    def test_full_jaccard_identical_sets(self):
        assert common_neighbors_from_jaccard(1.0, 8, 8) == pytest.approx(8.0)
        assert union_size_from_jaccard(1.0, 8, 8) == pytest.approx(8.0)

    def test_zero_degrees(self):
        assert union_size_from_jaccard(0.5, 0, 0) == 0.0
        assert common_neighbors_from_jaccard(0.5, 0, 0) == 0.0

    def test_estimate_clamped_to_feasible_range(self):
        # An overshooting Ĵ cannot produce CN above min(du, dv).
        assert common_neighbors_from_jaccard(1.0, 100, 3) == 3.0

    def test_jaccard_out_of_range_rejected(self):
        for bad in (-0.1, 1.1):
            with pytest.raises(ConfigurationError):
                common_neighbors_from_jaccard(bad, 5, 5)
            with pytest.raises(ConfigurationError):
                union_size_from_jaccard(bad, 5, 5)


class TestWitnessSum:
    def test_unit_weight_reduces_to_cn_formula(self):
        # With f = 1, union * (matches/k) must equal union * Ĵ, which is
        # the closed-form CN estimate.
        union, k, matches = 30.0, 100, 40
        estimate = witness_sum_from_matches(union, [5] * matches, lambda d: 1.0, k)
        assert estimate == pytest.approx(union * matches / k)

    def test_weighted_sum(self):
        estimate = witness_sum_from_matches(
            10.0, [2, 3], lambda d: 1.0 / math.log(d), 4
        )
        expected = 10.0 * (1 / math.log(2) + 1 / math.log(3)) / 4
        assert estimate == pytest.approx(expected)

    def test_no_matches_gives_zero(self):
        assert witness_sum_from_matches(10.0, [], lambda d: 1.0, 8) == 0.0

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            witness_sum_from_matches(1.0, [], lambda d: 1.0, 0)

    def test_never_negative(self):
        assert witness_sum_from_matches(5.0, [2], lambda d: -1.0, 4) == 0.0


class TestClamp:
    def test_clamps_both_sides(self):
        assert clamp_intersection(-3.0, 5, 7) == 0.0
        assert clamp_intersection(100.0, 5, 7) == 5.0
        assert clamp_intersection(4.0, 5, 7) == 4.0


class TestStdError:
    def test_formula(self):
        assert jaccard_std_error(0.5, 100) == pytest.approx(0.05)

    def test_extremes_have_zero_error(self):
        assert jaccard_std_error(0.0, 64) == 0.0
        assert jaccard_std_error(1.0, 64) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jaccard_std_error(1.5, 10)
        with pytest.raises(ConfigurationError):
            jaccard_std_error(0.5, 0)
