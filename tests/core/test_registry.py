"""Tests for the predictor factory and equal-space parameter rules."""

from __future__ import annotations

import pytest

from repro.core import SketchConfig, build_predictor, equal_space_parameters
from repro.core.biased import BiasedMinHashLinkPredictor
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError
from repro.exact import EdgeReservoirBaseline, ExactOracle, NeighborReservoirBaseline


class TestFactory:
    def test_builds_each_method(self):
        config = SketchConfig(k=16)
        assert isinstance(build_predictor("minhash", config), MinHashLinkPredictor)
        assert isinstance(build_predictor("biased", config), BiasedMinHashLinkPredictor)
        assert isinstance(build_predictor("exact", config), ExactOracle)
        assert isinstance(
            build_predictor("neighbor_reservoir", config), NeighborReservoirBaseline
        )
        assert isinstance(
            build_predictor("edge_reservoir", config, expected_vertices=100),
            EdgeReservoirBaseline,
        )

    def test_unknown_method_raises_with_known(self):
        with pytest.raises(ConfigurationError, match="minhash"):
            build_predictor("gnn")

    def test_edge_reservoir_requires_expected_vertices(self):
        with pytest.raises(ConfigurationError):
            build_predictor("edge_reservoir", SketchConfig())

    def test_default_config(self):
        predictor = build_predictor("minhash")
        assert predictor.config.k == 128


class TestEqualSpace:
    def test_neighbor_reservoir_sample_matches_sketch_bytes(self):
        config = SketchConfig(k=64)  # 1024 bytes/vertex
        params = equal_space_parameters(config, expected_vertices=1000)
        assert params["neighbor_reservoir_sample"] == 128  # 1024/8 ids

    def test_edge_reservoir_capacity_scales_with_vertices(self):
        config = SketchConfig(k=64)
        params = equal_space_parameters(config, expected_vertices=1000)
        assert params["edge_reservoir_capacity"] == 1000 * 1024 // 8

    def test_witnessless_config_halves_budget(self):
        with_w = equal_space_parameters(SketchConfig(k=64), 100)
        without_w = equal_space_parameters(
            SketchConfig(k=64, track_witnesses=False), 100
        )
        assert without_w["neighbor_reservoir_sample"] * 2 == (
            with_w["neighbor_reservoir_sample"]
        )

    def test_minimums_enforced(self):
        params = equal_space_parameters(SketchConfig(k=1, track_witnesses=False), 0)
        assert params["neighbor_reservoir_sample"] >= 1
        assert params["edge_reservoir_capacity"] >= 1
