"""Tests for SketchConfig and the Hoeffding planning helpers."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    SketchConfig,
    hoeffding_epsilon,
    hoeffding_failure_probability,
    required_k,
)
from repro.errors import ConfigurationError


class TestPlanningHelpers:
    def test_required_k_closed_form(self):
        assert required_k(0.1, 0.05) == math.ceil(math.log(40) / 0.02)

    def test_required_k_monotone_in_epsilon(self):
        assert required_k(0.05, 0.05) > required_k(0.1, 0.05)

    def test_epsilon_inverts_required_k(self):
        k = required_k(0.1, 0.05)
        assert hoeffding_epsilon(k, 0.05) <= 0.1

    def test_failure_probability_formula(self):
        assert hoeffding_failure_probability(100, 0.1) == pytest.approx(
            2 * math.exp(-2.0), rel=1e-12
        )

    def test_failure_probability_capped_at_one(self):
        assert hoeffding_failure_probability(1, 0.01) == 1.0

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5])
    def test_epsilon_validation(self, epsilon):
        with pytest.raises(ConfigurationError):
            required_k(epsilon, 0.05)
        with pytest.raises(ConfigurationError):
            hoeffding_failure_probability(10, epsilon)

    @pytest.mark.parametrize("delta", [0.0, 1.0])
    def test_delta_validation(self, delta):
        with pytest.raises(ConfigurationError):
            required_k(0.1, delta)
        with pytest.raises(ConfigurationError):
            hoeffding_epsilon(10, delta)

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            hoeffding_epsilon(0, 0.05)


class TestSketchConfig:
    def test_defaults_are_paper_typical(self):
        config = SketchConfig()
        assert config.k == 128
        assert config.track_witnesses
        assert config.degree_mode == "exact"
        assert config.weight_policy == "freeze"

    def test_validation_eager(self):
        with pytest.raises(ConfigurationError):
            SketchConfig(k=0)
        with pytest.raises(ConfigurationError):
            SketchConfig(degree_mode="oracle")
        with pytest.raises(ConfigurationError):
            SketchConfig(weight_policy="thaw")
        with pytest.raises(ConfigurationError):
            SketchConfig(countmin_width=0)
        with pytest.raises(ConfigurationError):
            SketchConfig(refresh_buffer=0)

    def test_for_accuracy_meets_target(self):
        config = SketchConfig.for_accuracy(epsilon=0.1, delta=0.05)
        assert config.k == 185
        assert config.jaccard_epsilon(0.05) <= 0.1

    def test_for_accuracy_passes_overrides(self):
        config = SketchConfig.for_accuracy(0.2, seed=7, track_witnesses=False)
        assert config.seed == 7
        assert not config.track_witnesses

    def test_with_k_preserves_other_fields(self):
        config = SketchConfig(seed=9, track_witnesses=False).with_k(32)
        assert config.k == 32
        assert config.seed == 9
        assert not config.track_witnesses

    def test_bytes_per_vertex(self):
        assert SketchConfig(k=64).bytes_per_vertex() == 1024
        assert SketchConfig(k=64, track_witnesses=False).bytes_per_vertex() == 512

    def test_frozen(self):
        with pytest.raises(Exception):
            SketchConfig().k = 5
