"""Tests for the vertex-biased predictor."""

from __future__ import annotations

import statistics

import pytest

from repro.core import BiasedMinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError
from repro.exact import ExactOracle
from repro.graph import from_pairs
from repro.graph.generators import chung_lu
from tests.conftest import TOY_EDGES


def biased_for(edges, measure="adamic_adar", **config_kwargs):
    config = SketchConfig(**{"k": 256, "seed": 17, **config_kwargs})
    predictor = BiasedMinHashLinkPredictor(config, measure_name=measure)
    predictor.process(from_pairs(edges))
    return predictor


class TestConstruction:
    def test_requires_exact_degrees(self):
        with pytest.raises(ConfigurationError):
            BiasedMinHashLinkPredictor(SketchConfig(degree_mode="countmin"))

    def test_requires_witness_sum_measure(self):
        with pytest.raises(ConfigurationError):
            BiasedMinHashLinkPredictor(measure_name="jaccard")

    def test_resource_allocation_supported(self):
        predictor = biased_for(TOY_EDGES, measure="resource_allocation")
        assert predictor.measure.name == "resource_allocation"


class TestScoring:
    def test_identical_neighborhoods_scored_at_ceiling(self):
        # N(0) = N(1) = {2,3,4}: both sketches match fully, but the
        # frozen weights of the two sides differ (arrival degrees), so
        # the estimate lands within the min-side weight sum.
        edges = [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
        predictor = biased_for(edges, weight_policy="refresh")
        oracle = ExactOracle()
        oracle.process(from_pairs(edges))
        truth = oracle.score(0, 1, "adamic_adar")
        assert predictor.score(0, 1, "adamic_adar") == pytest.approx(truth, rel=0.01)

    def test_cold_vertices_score_zero(self):
        predictor = biased_for(TOY_EDGES)
        assert predictor.score(0, 999, "adamic_adar") == 0.0

    def test_unsupported_measure_points_to_uniform_predictor(self):
        predictor = biased_for(TOY_EDGES)
        with pytest.raises(ConfigurationError, match="MinHashLinkPredictor"):
            predictor.score(0, 1, "jaccard")

    def test_preferential_attachment_always_available(self):
        predictor = biased_for(TOY_EDGES)
        assert predictor.score(0, 4, "preferential_attachment") == 9.0

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            BiasedMinHashLinkPredictor().update(2, 2)

    def test_estimate_never_exceeds_either_weight_sum(self):
        predictor = biased_for(TOY_EDGES)
        for u in range(5):
            for v in range(u + 1, 5):
                score = predictor.score(u, v, "adamic_adar")
                su = predictor._sketches[u]
                sv = predictor._sketches[v]
                assert score <= min(su.weight_sum, sv.weight_sum) + 1e-12


class TestPolicies:
    def test_refresh_reduces_drift_bias(self):
        # On a growing power-law stream, frozen arrival weights
        # overestimate current weights; the refresh policy must bring
        # the mean signed deviation closer to zero.
        edges = chung_lu(n=600, edges=4500, exponent=2.2, seed=5)
        oracle = ExactOracle()
        oracle.process(edges)
        from repro.eval.candidates import sample_two_hop_pairs

        pairs = sample_two_hop_pairs(oracle.graph, 120, seed=6)

        def mean_signed_deviation(policy):
            predictor = BiasedMinHashLinkPredictor(
                SketchConfig(k=384, seed=7, weight_policy=policy,
                             refresh_buffer=1024)
            )
            predictor.process(edges)
            deviations = []
            for u, v in pairs:
                truth = oracle.score(u, v, "adamic_adar")
                if truth <= 0:
                    continue
                deviations.append(
                    (predictor.score(u, v, "adamic_adar") - truth) / truth
                )
            return statistics.mean(deviations)

        assert abs(mean_signed_deviation("refresh")) < abs(
            mean_signed_deviation("freeze")
        )

    def test_refresh_with_tiny_buffer_falls_back_to_freeze_for_hubs(self):
        predictor = biased_for(
            TOY_EDGES, weight_policy="refresh", refresh_buffer=2
        )
        # Vertex 0 has degree 3 > buffer 2: its buffer overflowed.
        assert predictor._buffers[0] is None
        # Scoring still works (frozen sketch path).
        assert predictor.score(0, 1, "adamic_adar") >= 0.0

    def test_refresh_rebuild_memoized_per_clock(self):
        predictor = biased_for(TOY_EDGES, weight_policy="refresh")
        first = predictor._refreshed_sketch(1)
        second = predictor._refreshed_sketch(1)
        assert first is second


class TestAccounting:
    def test_nominal_bytes_freeze(self):
        predictor = biased_for(TOY_EDGES, k=16)
        # 5 sketches * (16*24 + 8) + 5 degree words; no buffers.
        assert predictor.nominal_bytes() == 5 * (16 * 24 + 8) + 5 * 8

    def test_nominal_bytes_refresh_counts_buffers(self):
        predictor = biased_for(
            TOY_EDGES, k=16, weight_policy="refresh", refresh_buffer=100
        )
        # Degrees sum to 12: 12 buffered neighbor words.
        expected = 5 * (16 * 24 + 8) + 5 * 8 + 12 * 8
        assert predictor.nominal_bytes() == expected

    def test_vertex_count(self):
        assert biased_for(TOY_EDGES).vertex_count == 5
