"""Tests for the streaming triangle counter."""

from __future__ import annotations

import pytest

from repro.core import SketchConfig
from repro.core.triangles import StreamingTriangleCounter
from repro.graph import AdjacencyGraph, from_pairs
from repro.graph.algorithms import global_clustering, triangle_count
from repro.graph.generators import erdos_renyi, planted_partition


class TestExactSmallCases:
    def test_single_triangle_counted_once(self):
        counter = StreamingTriangleCounter(SketchConfig(k=64, seed=1))
        counter.process(from_pairs([(0, 1), (1, 2), (0, 2)]))
        # Tiny neighborhoods: sketch CN is exact here.
        assert counter.triangle_estimate() == pytest.approx(1.0)

    def test_triangle_free_stream_counts_zero(self):
        counter = StreamingTriangleCounter(SketchConfig(k=64, seed=2))
        counter.process(from_pairs([(0, i) for i in range(1, 8)]))
        assert counter.triangle_estimate() == 0.0

    def test_two_triangles_sharing_edge(self):
        counter = StreamingTriangleCounter(SketchConfig(k=128, seed=3))
        counter.process(from_pairs([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]))
        assert counter.triangle_estimate() == pytest.approx(2.0, abs=0.3)

    def test_edges_seen(self):
        counter = StreamingTriangleCounter(SketchConfig(k=16, seed=4))
        counter.process(from_pairs([(0, 1), (1, 2)]))
        assert counter.edges_seen == 2


class TestStatisticalAccuracy:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_er_graph_within_tolerance(self, seed):
        edges = erdos_renyi(300, 3000, seed=seed)
        truth = triangle_count(AdjacencyGraph.from_edges(edges))
        counter = StreamingTriangleCounter(SketchConfig(k=256, seed=seed))
        counter.process(edges)
        assert counter.triangle_estimate() == pytest.approx(truth, rel=0.2)

    def test_community_graph_within_tolerance(self):
        edges = planted_partition(
            n=300, communities=6, internal_edges=4000, external_edges=400, seed=7
        )
        truth = triangle_count(AdjacencyGraph.from_edges(edges))
        counter = StreamingTriangleCounter(SketchConfig(k=256, seed=8))
        counter.process(edges)
        assert truth > 1000  # the workload is triangle-rich
        assert counter.triangle_estimate() == pytest.approx(truth, rel=0.2)

    def test_transitivity_estimate_tracks_exact(self):
        edges = planted_partition(
            n=300, communities=6, internal_edges=4000, external_edges=400, seed=9
        )
        exact = global_clustering(AdjacencyGraph.from_edges(edges))
        counter = StreamingTriangleCounter(SketchConfig(k=256, seed=10))
        counter.process(edges)
        assert counter.transitivity_estimate() == pytest.approx(exact, rel=0.25)


class TestProtocolDelegation:
    def test_still_answers_link_prediction_queries(self):
        counter = StreamingTriangleCounter(SketchConfig(k=128, seed=11))
        counter.process(from_pairs([(0, 2), (1, 2), (0, 3), (1, 3)]))
        assert counter.score(0, 1, "common_neighbors") == pytest.approx(2.0)
        assert counter.degree(0) == 2
        assert counter.vertex_count == 4

    def test_nominal_bytes_delegates(self):
        counter = StreamingTriangleCounter(SketchConfig(k=16, seed=12))
        counter.process(from_pairs([(0, 1)]))
        assert counter.nominal_bytes() == counter.predictor.nominal_bytes() + 8

    def test_transitivity_requires_exact_degrees(self):
        counter = StreamingTriangleCounter(
            SketchConfig(k=16, seed=13, degree_mode="countmin")
        )
        counter.process(from_pairs([(0, 1), (1, 2), (0, 2)]))
        with pytest.raises(NotImplementedError):
            counter.transitivity_estimate()
