"""Tests for the LSH self-join index."""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.lshindex import (
    LshCandidateIndex,
    bands_for_threshold,
    lsh_threshold,
)
from repro.errors import ConfigurationError
from repro.graph import from_pairs


def _planted_edges():
    """A stream with two planted high-overlap vertex pairs.

    Vertices 0 and 1 share neighbors 100..129 (J = 1.0); vertices 2 and
    3 share 200..219 of their 30 neighbors each (J = 0.5); vertices
    4..23 get disjoint neighborhoods (J ~ 0).  (The shared witnesses
    100..129 themselves form identical {0,1} neighborhoods — tests must
    account for those genuine duplicates.)
    """
    edges = []
    for w in range(100, 130):
        edges.append((0, w))
        edges.append((1, w))
    for w in range(200, 220):
        edges.append((2, w))
        edges.append((3, w))
    for w in range(220, 230):
        edges.append((2, w))
    for w in range(230, 240):
        edges.append((3, w))
    for v in range(4, 24):
        for w in range(1000 + 50 * v, 1000 + 50 * v + 10):
            edges.append((v, w))
    return edges


def planted_predictor(k=128, seed=9):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed))
    predictor.process(from_pairs(_planted_edges()))
    return predictor


class TestMath:
    def test_threshold_formula(self):
        assert lsh_threshold(16, 8) == pytest.approx((1 / 16) ** (1 / 8))

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            lsh_threshold(0, 4)

    def test_bands_for_threshold_respects_k(self):
        bands, rows = bands_for_threshold(128, 0.5)
        assert bands * rows <= 128
        assert lsh_threshold(bands, rows) == pytest.approx(0.5, abs=0.06)

    def test_bands_for_threshold_extremes(self):
        low_bands, low_rows = bands_for_threshold(64, 0.1)
        high_bands, high_rows = bands_for_threshold(64, 0.9)
        assert lsh_threshold(low_bands, low_rows) < lsh_threshold(
            high_bands, high_rows
        )

    def test_bands_for_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            bands_for_threshold(0, 0.5)
        with pytest.raises(ConfigurationError):
            bands_for_threshold(16, 1.0)

    def test_capture_probability_s_curve(self):
        index = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        assert index.capture_probability(0.0) == 0.0
        assert index.capture_probability(1.0) == 1.0
        assert index.capture_probability(0.9) > index.capture_probability(0.3)


class TestConstruction:
    def test_shape_must_fit_sketch(self):
        predictor = planted_predictor(k=16)
        with pytest.raises(ConfigurationError):
            LshCandidateIndex(predictor, bands=8, rows=4)

    def test_parameter_validation(self):
        predictor = planted_predictor(k=16)
        with pytest.raises(ConfigurationError):
            LshCandidateIndex(predictor, bands=0, rows=4)
        with pytest.raises(ConfigurationError):
            LshCandidateIndex(predictor, bands=2, rows=4, max_bucket=1)


class TestDiscovery:
    def test_finds_planted_identical_pair(self):
        index = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        pairs = {(c.u, c.v) for c in index.candidate_pairs(min_jaccard=0.8)}
        assert (0, 1) in pairs

    def test_finds_half_overlap_pair_with_permissive_shape(self):
        # threshold (1/32)^(1/4) ~ 0.42 < 0.5: the J=0.5 pair is caught
        # with probability 1-(1-0.5^4)^32 ~ 0.87 per hash draw; the
        # fixed seed makes the outcome deterministic here.
        index = LshCandidateIndex(planted_predictor(), bands=32, rows=4)
        pairs = {(c.u, c.v) for c in index.candidate_pairs(min_jaccard=0.3)}
        assert (2, 3) in pairs

    def test_high_cutoff_pairs_are_truly_similar(self):
        # Every pair reported above the 0.8 cutoff must be genuinely
        # similar per exact ground truth (estimation noise allowed for
        # with the 0.5 margin).
        from repro.exact import ExactOracle

        oracle = ExactOracle()
        for u, v in _planted_edges():
            oracle.update(u, v)
        index = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        reported = list(index.candidate_pairs(min_jaccard=0.8))
        assert reported
        for candidate in reported:
            assert oracle.score(candidate.u, candidate.v, "jaccard") >= 0.5

    def test_candidates_deduplicated(self):
        index = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        pairs = [(c.u, c.v) for c in index.candidate_pairs()]
        assert len(pairs) == len(set(pairs))

    def test_top_pairs_ranked_and_limited(self):
        index = LshCandidateIndex(planted_predictor(), bands=32, rows=4)
        top = index.top_pairs(limit=2)
        assert len(top) <= 2
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        assert top[0][0].u == 0 and top[0][0].v == 1  # the J=1 pair wins

    def test_top_pairs_rescoring_by_other_measure(self):
        index = LshCandidateIndex(planted_predictor(), bands=32, rows=4)
        top = index.top_pairs(limit=3, measure_name="common_neighbors")
        assert all(score >= 0 for _, score in top)

    def test_top_pairs_validation(self):
        index = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        with pytest.raises(ConfigurationError):
            index.top_pairs(limit=0)

    def test_min_degree_excludes_leaves(self):
        edges = (
            [(0, 1)]
            + [(2, w) for w in range(100, 110)]
            + [(3, w) for w in range(100, 110)]
        )
        predictor = MinHashLinkPredictor(SketchConfig(k=32, seed=1))
        predictor.process(from_pairs(edges))
        index = LshCandidateIndex(predictor, bands=8, rows=4, min_degree=2)
        pairs = {(c.u, c.v) for c in index.candidate_pairs()}
        assert (2, 3) in pairs  # the degree-10 twins are found
        assert all(0 not in pair and 1 not in pair for pair in pairs)

    def test_overfull_buckets_skipped_and_counted(self):
        # 60 vertices with *identical* neighborhoods collapse into one
        # bucket per band; max_bucket=10 must skip them.
        edges = [(v, w) for v in range(60) for w in range(100, 110)]
        predictor = MinHashLinkPredictor(SketchConfig(k=32, seed=2))
        predictor.process(from_pairs(edges))
        index = LshCandidateIndex(predictor, bands=8, rows=4, max_bucket=10)
        pairs = list(index.candidate_pairs())
        assert index.skipped_buckets > 0
        clones = [p for p in pairs if p.u < 60 and p.v < 60]
        assert not clones

    def test_deterministic_across_instances(self):
        a = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        b = LshCandidateIndex(planted_predictor(), bands=16, rows=8)
        assert sorted((c.u, c.v) for c in a.candidate_pairs()) == sorted(
            (c.u, c.v) for c in b.candidate_pairs()
        )
        assert a.bucket_count() == b.bucket_count()
