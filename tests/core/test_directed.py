"""Tests for directed streaming link prediction."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.core import SketchConfig
from repro.core.directed import DirectedExactOracle, DirectedMinHashPredictor
from repro.errors import ConfigurationError
from repro.graph import from_pairs
from repro.graph.generators import chung_lu

# Digraph: 0->2, 1->2, 2->3, 0->3, 3->0, 1->3
#   successors:  N+(0)={2,3} N+(1)={2,3} N+(2)={3} N+(3)={0}
#   predecessors: N-(2)={0,1} N-(3)={0,1,2} N-(0)={3}
ARCS = [(0, 2), (1, 2), (2, 3), (0, 3), (3, 0), (1, 3)]


def loaded(predictor):
    predictor.process(from_pairs(ARCS))
    return predictor


@pytest.fixture
def oracle():
    return loaded(DirectedExactOracle())


@pytest.fixture
def sketch():
    return loaded(DirectedMinHashPredictor(SketchConfig(k=256, seed=7)))


class TestExactOracle:
    def test_out_direction_hand_computed(self, oracle):
        # N+(0) = N+(1) = {2,3}: CN_out = 2, J_out = 1.
        assert oracle.score_directed(0, 1, "common_neighbors", "out") == 2.0
        assert oracle.score_directed(0, 1, "jaccard", "out") == 1.0

    def test_in_direction_hand_computed(self, oracle):
        # N-(2) = {0,1}, N-(3) = {0,1,2}: CN_in = 2, J_in = 2/3.
        assert oracle.score_directed(2, 3, "common_neighbors", "in") == 2.0
        assert oracle.score_directed(2, 3, "jaccard", "in") == pytest.approx(2 / 3)

    def test_directions_differ(self, oracle):
        # Out-direction for (2,3): N+(2)={3}, N+(3)={0} -> CN 0.
        assert oracle.score_directed(2, 3, "common_neighbors", "out") == 0.0

    def test_directed_adamic_adar_uses_directional_witness_degree(self, oracle):
        # Witnesses of (0,1) out-overlap: 2 (out-degree 1) and 3
        # (out-degree 1); weight clamps at degree 2.
        expected = 2 / math.log(2)
        assert oracle.score_directed(0, 1, "adamic_adar", "out") == pytest.approx(
            expected
        )

    def test_degree_directed(self, oracle):
        assert oracle.degree_directed(3, "in") == 3
        assert oracle.degree_directed(3, "out") == 1
        assert oracle.degree_directed(99, "out") == 0

    def test_direction_validation(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.score_directed(0, 1, "jaccard", "both")

    def test_protocol_score_defaults_to_out(self, oracle):
        assert oracle.score(0, 1, "jaccard") == oracle.score_directed(
            0, 1, "jaccard", "out"
        )


class TestSketchPredictor:
    def test_identical_successor_sets_estimated_exactly(self, sketch):
        assert sketch.score_directed(0, 1, "jaccard", "out") == 1.0
        assert sketch.score_directed(0, 1, "common_neighbors", "out") == pytest.approx(
            2.0
        )

    def test_in_direction_tracks_oracle(self, sketch, oracle):
        estimate = sketch.score_directed(2, 3, "jaccard", "in")
        truth = oracle.score_directed(2, 3, "jaccard", "in")
        assert estimate == pytest.approx(truth, abs=0.15)

    def test_directional_degrees_exact(self, sketch):
        assert sketch.degree_directed(3, "in") == 3
        assert sketch.degree_directed(3, "out") == 1
        assert sketch.degree(0) == 2  # protocol degree = out-degree

    def test_cold_vertices_zero(self, sketch):
        assert sketch.score_directed(0, 99, "jaccard", "out") == 0.0
        assert sketch.score_directed(98, 99, "adamic_adar", "in") == 0.0

    def test_countmin_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DirectedMinHashPredictor(SketchConfig(degree_mode="countmin"))

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            DirectedMinHashPredictor().update(5, 5)

    def test_nominal_bytes_twice_undirected_scale(self):
        predictor = loaded(DirectedMinHashPredictor(SketchConfig(k=16, seed=1)))
        # Every vertex has both an out- and an in-sketch here except
        # where a direction never fired; bound: <= 2 stores.
        per_sketch = 16 * 16
        assert predictor.nominal_bytes() <= 2 * 4 * per_sketch + 2 * 4 * 8

    def test_vertex_count_unions_directions(self):
        predictor = DirectedMinHashPredictor(SketchConfig(k=16, seed=2))
        predictor.update(0, 1)  # 0 has only out-sketch, 1 only in-sketch
        assert predictor.vertex_count == 2


class TestStatisticalAgreement:
    def test_tracks_exact_on_directed_powerlaw_stream(self):
        # Interpret a Chung-Lu stream as directed arcs.
        arcs = chung_lu(n=500, edges=4000, exponent=2.3, seed=11)
        oracle = DirectedExactOracle()
        sketch = DirectedMinHashPredictor(SketchConfig(k=384, seed=12))
        for edge in arcs:
            oracle.update(edge.u, edge.v)
            sketch.update(edge.u, edge.v)
        # Query pairs sharing an in-neighborhood witness: co-cited pairs.
        import random

        rng = random.Random(13)
        pairs = set()
        vertices = [v for v in oracle.graph.vertices() if oracle.graph.out_degree(v) >= 2]
        while len(pairs) < 80:
            w = rng.choice(vertices)
            u, v = rng.sample(sorted(oracle.graph.successors(w)), 2)
            pairs.add((min(u, v), max(u, v)))
        deviations = []
        for u, v in sorted(pairs):
            truth = oracle.score_directed(u, v, "common_neighbors", "in")
            if truth <= 0:
                continue
            estimate = sketch.score_directed(u, v, "common_neighbors", "in")
            deviations.append((estimate - truth) / truth)
        assert deviations
        assert abs(statistics.mean(deviations)) < 0.25
