"""Tests for degree trackers."""

from __future__ import annotations

from repro.core import CountMinDegrees, ExactDegrees


class TestExactDegrees:
    def test_counts(self):
        d = ExactDegrees()
        for v in (1, 2, 1, 1):
            d.increment(v)
        assert d.get(1) == 3
        assert d.get(2) == 1
        assert d.get(3) == 0

    def test_len_and_bytes(self):
        d = ExactDegrees()
        d.increment(1)
        d.increment(2)
        assert len(d) == 2
        assert d.nominal_bytes() == 16


class TestCountMinDegrees:
    def test_never_underestimates(self):
        d = CountMinDegrees(width=256, depth=4, seed=1)
        for v in range(100):
            for _ in range(v % 7 + 1):
                d.increment(v)
        for v in range(100):
            assert d.get(v) >= v % 7 + 1

    def test_fixed_nominal_bytes(self):
        d = CountMinDegrees(width=64, depth=2, seed=0)
        before = d.nominal_bytes()
        for v in range(1000):
            d.increment(v)
        assert d.nominal_bytes() == before == 64 * 2 * 8

    def test_accurate_on_light_load(self):
        d = CountMinDegrees(width=1 << 12, depth=4, seed=2)
        for _ in range(9):
            d.increment(5)
        assert d.get(5) == 9
