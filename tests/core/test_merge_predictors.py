"""Tests for distributed predictor merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError, SketchStateError
from repro.graph import from_pairs
from repro.graph.generators import chung_lu, erdos_renyi


def split_stream(edges, parts):
    """Round-robin partition of a stream's edges."""
    return [list(edges[i::parts]) for i in range(parts)]


class TestMergeEquivalence:
    def test_two_way_merge_is_bit_identical_to_single_pass(self):
        edges = erdos_renyi(80, 500, seed=1)
        config = SketchConfig(k=64, seed=2)
        single = MinHashLinkPredictor(config)
        single.process(edges)
        part_a, part_b = split_stream(edges, 2)
        worker_a = MinHashLinkPredictor(config)
        worker_b = MinHashLinkPredictor(config)
        worker_a.process(part_a)
        worker_b.process(part_b)
        merged = worker_a.merge(worker_b)
        assert merged.vertex_count == single.vertex_count
        for vertex in single._sketches:
            assert np.array_equal(
                merged._sketches[vertex].values, single._sketches[vertex].values
            )
            assert merged.degree(vertex) == single.degree(vertex)

    def test_merged_queries_match_single_pass(self):
        edges = chung_lu(n=150, edges=900, exponent=2.5, seed=3)
        config = SketchConfig(k=128, seed=4)
        single = MinHashLinkPredictor(config)
        single.process(edges)
        workers = []
        for part in split_stream(edges, 4):
            worker = MinHashLinkPredictor(config)
            worker.process(part)
            workers.append(worker)
        merged = workers[0]
        for worker in workers[1:]:
            merged = merged.merge(worker)
        for u in range(0, 20, 3):
            for v in range(1, 20, 3):
                if u == v:
                    continue
                for measure in ("jaccard", "common_neighbors", "adamic_adar"):
                    assert merged.score(u, v, measure) == single.score(
                        u, v, measure
                    )

    def test_merge_with_empty_partition(self):
        edges = erdos_renyi(40, 150, seed=5)
        config = SketchConfig(k=32, seed=6)
        loaded = MinHashLinkPredictor(config)
        loaded.process(edges)
        empty = MinHashLinkPredictor(config)
        merged = loaded.merge(empty)
        assert merged.vertex_count == loaded.vertex_count
        assert merged.score(0, 1, "jaccard") == loaded.score(0, 1, "jaccard")

    def test_merge_leaves_inputs_untouched(self):
        config = SketchConfig(k=16, seed=7)
        a = MinHashLinkPredictor(config)
        b = MinHashLinkPredictor(config)
        a.process(from_pairs([(0, 1), (0, 2)]))
        b.process(from_pairs([(3, 4)]))
        degree_before = a.degree(0)
        a.merge(b)
        assert a.degree(0) == degree_before
        assert 3 not in a._sketches


class TestMergeValidation:
    def test_mismatched_configs_rejected(self):
        a = MinHashLinkPredictor(SketchConfig(k=16, seed=1))
        b = MinHashLinkPredictor(SketchConfig(k=32, seed=1))
        with pytest.raises(SketchStateError):
            a.merge(b)
        c = MinHashLinkPredictor(SketchConfig(k=16, seed=2))
        with pytest.raises(SketchStateError):
            a.merge(c)

    def test_countmin_degree_mode_rejected(self):
        config = SketchConfig(k=16, seed=1, degree_mode="countmin")
        a = MinHashLinkPredictor(config)
        b = MinHashLinkPredictor(config)
        with pytest.raises(ConfigurationError):
            a.merge(b)
