"""Tests for the MinHash streaming link predictor."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.core import MinHashLinkPredictor, PairEstimate, SketchConfig
from repro.errors import ConfigurationError, SketchStateError
from repro.exact import ExactOracle
from repro.graph import from_pairs
from repro.graph.generators import chung_lu
from tests.conftest import TOY_EDGES


def predictor_for(edges, **config_kwargs):
    config = SketchConfig(**{"k": 256, "seed": 13, **config_kwargs})
    predictor = MinHashLinkPredictor(config)
    predictor.process(from_pairs(edges))
    return predictor


class TestDeterministicSmallCases:
    def test_identical_neighborhoods_estimated_exactly(self):
        # N(0) = N(1) = {2,3,4}: sketches are identical objects, so
        # Ĵ = 1 and ĈN = degree, regardless of seed.
        edges = [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
        predictor = predictor_for(edges)
        assert predictor.score(0, 1, "jaccard") == 1.0
        assert predictor.score(0, 1, "common_neighbors") == pytest.approx(3.0)

    def test_disjoint_neighborhoods_estimate_zero_cn(self):
        edges = [(0, 2), (0, 3), (1, 4), (1, 5)]
        predictor = predictor_for(edges)
        assert predictor.score(0, 1, "jaccard") <= 0.05
        # With clamping, CN stays in the feasible range.
        assert 0.0 <= predictor.score(0, 1, "common_neighbors") <= 2.0

    def test_toy_graph_estimates_near_truth(self, toy_oracle):
        predictor = predictor_for(TOY_EDGES)
        for u, v in ((0, 1), (2, 4), (2, 3)):
            estimate = predictor.score(u, v, "jaccard")
            truth = toy_oracle.score(u, v, "jaccard")
            assert estimate == pytest.approx(truth, abs=0.15)

    def test_degree_tracking_exact_mode(self):
        predictor = predictor_for(TOY_EDGES)
        assert predictor.degree(0) == 3
        assert predictor.degree(1) == 2
        assert predictor.degree(999) == 0

    def test_deterministic_in_seed(self):
        a = predictor_for(TOY_EDGES, seed=5)
        b = predictor_for(TOY_EDGES, seed=5)
        assert a.score(0, 1, "adamic_adar") == b.score(0, 1, "adamic_adar")


class TestProtocolConventions:
    def test_cold_vertices_score_zero_for_all_measures(self):
        predictor = predictor_for(TOY_EDGES)
        for measure in (
            "jaccard",
            "common_neighbors",
            "adamic_adar",
            "resource_allocation",
            "cosine",
            "sorensen",
        ):
            assert predictor.score(0, 777, measure) == 0.0

    def test_preferential_attachment_from_degrees(self):
        predictor = predictor_for(TOY_EDGES)
        assert predictor.score(0, 4, "preferential_attachment") == 9.0

    def test_unknown_measure_raises(self):
        predictor = predictor_for(TOY_EDGES)
        with pytest.raises(ConfigurationError):
            predictor.score(0, 1, "simrank")

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            MinHashLinkPredictor().update(4, 4)

    def test_duplicate_edges_idempotent_on_sketches(self):
        once = predictor_for(TOY_EDGES)
        twice = predictor_for(TOY_EDGES + TOY_EDGES)
        # Sketch state identical; only the degree counters differ
        # (documented: use stream dedup for multi-edge streams).
        assert once._sketches[0] == twice._sketches[0]
        assert twice.degree(0) == 2 * once.degree(0)

    def test_witnessless_config_supports_cn_but_not_aa(self):
        predictor = predictor_for(TOY_EDGES, track_witnesses=False)
        assert predictor.score(0, 1, "common_neighbors") >= 0.0
        assert predictor.score(0, 1, "jaccard") >= 0.0
        with pytest.raises(SketchStateError):
            predictor.score(0, 1, "adamic_adar")

    def test_vertex_count(self):
        assert predictor_for(TOY_EDGES).vertex_count == 5


class TestEstimateBundle:
    def test_returns_dataclass_with_all_fields(self):
        predictor = predictor_for(TOY_EDGES)
        estimate = predictor.estimate(0, 1)
        assert isinstance(estimate, PairEstimate)
        assert estimate.u == 0 and estimate.v == 1
        assert estimate.degree_u == 3 and estimate.degree_v == 2
        assert 0.0 <= estimate.jaccard <= 1.0
        assert estimate.common_neighbors <= 2.0  # clamped to min degree
        assert estimate.jaccard_std_error <= 0.5 / math.sqrt(256)
        assert estimate.adamic_adar >= 0.0
        assert estimate.resource_allocation >= 0.0


class TestStatisticalAccuracy:
    def test_aa_estimator_tracks_truth_on_powerlaw_graph(self):
        edges = chung_lu(n=800, edges=6000, exponent=2.3, seed=3)
        oracle = ExactOracle()
        oracle.process(edges)
        predictor = MinHashLinkPredictor(SketchConfig(k=512, seed=3))
        predictor.process(edges)
        # Average signed relative deviation over many pairs ~ 0
        # (unbiasedness); average magnitude bounded.
        from repro.eval.candidates import sample_two_hop_pairs

        pairs = sample_two_hop_pairs(oracle.graph, 150, seed=4)
        deviations = []
        for u, v in pairs:
            truth = oracle.score(u, v, "adamic_adar")
            if truth <= 0:
                continue
            deviations.append(
                (predictor.score(u, v, "adamic_adar") - truth) / truth
            )
        assert abs(statistics.mean(deviations)) < 0.15

    def test_error_decreases_with_k(self):
        edges = chung_lu(n=500, edges=4000, exponent=2.5, seed=6)
        oracle = ExactOracle()
        oracle.process(edges)
        from repro.eval.candidates import sample_two_hop_pairs
        from repro.eval.experiments import accuracy_profile

        pairs = sample_two_hop_pairs(oracle.graph, 120, seed=7)
        errors = {}
        for k in (16, 512):
            predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=8))
            predictor.process(edges)
            errors[k] = accuracy_profile(
                predictor, oracle, pairs, ["jaccard"]
            )["jaccard"]["mre"]
        assert errors[512] < errors[16]


class TestDegreeModes:
    def test_countmin_mode_overestimates_never_under(self):
        predictor = predictor_for(TOY_EDGES, degree_mode="countmin")
        assert predictor.degree(0) >= 3

    def test_countmin_mode_bounded_nominal_bytes(self):
        small = SketchConfig(k=8, degree_mode="countmin", countmin_width=64, countmin_depth=2)
        predictor = MinHashLinkPredictor(small)
        predictor.process(from_pairs(TOY_EDGES))
        # Degree table contributes a fixed 64*2*8 bytes.
        assert predictor.nominal_bytes() == 5 * 8 * 16 + 64 * 2 * 8


class TestAccounting:
    def test_nominal_bytes_exact_mode(self):
        predictor = predictor_for(TOY_EDGES, k=16)
        # 5 vertices * (16 slots * 16 bytes) + 5 degree words.
        assert predictor.nominal_bytes() == 5 * 256 + 5 * 8

    def test_bytes_per_vertex(self):
        predictor = predictor_for(TOY_EDGES, k=16)
        assert predictor.bytes_per_vertex() == pytest.approx(256 + 8)
        assert MinHashLinkPredictor().bytes_per_vertex() == 0.0
