"""The quarantine file round-trip: JSON-lines in, identical letters out.

The replay loop depends on :func:`read_dead_letters` reconstructing
*exactly* what :class:`FileDeadLetters` wrote — including hostile raws
with embedded newlines, control characters, and non-ASCII bytes.  One
letter must always serialise to one file line, or triage tooling
(``grep``, ``wc -l``, ``tail -f``) miscounts the quarantine.
"""

from __future__ import annotations

from repro.stream import (
    DeadLetter,
    FileDeadLetters,
    IteratorEdgeSource,
    MemoryDeadLetters,
    StreamRunner,
    read_dead_letters,
)

HOSTILE_RAWS = [
    "plain bad line",
    "two\nphysical\nlines",  # embedded newlines
    "carriage\rreturn",
    "tab\tand\x00nul\x1b[31mescape",  # control chars incl. ANSI
    "﻿bom-prefixed 1 2",  # U+FEFF
    "unicode: ５ ６ naïve café",
    'json-metachars: {"a": "b\\n"}',
    "",  # the empty raw
]


def letters_for(raws):
    return [
        DeadLetter(
            offset=i,
            reason="bad_arity",
            raw=raw,
            line_number=i + 1,
            detail=f"fixture {i}",
        )
        for i, raw in enumerate(raws)
    ]


class TestFileRoundTrip:
    def test_letters_survive_exactly(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        written = letters_for(HOSTILE_RAWS)
        with FileDeadLetters(path) as sink:
            for letter in written:
                sink.record(letter)
        assert read_dead_letters(path) == written

    def test_one_letter_is_one_file_line(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        with FileDeadLetters(path) as sink:
            for letter in letters_for(HOSTILE_RAWS):
                sink.record(letter)
        physical_lines = path.read_text(encoding="utf-8").splitlines()
        assert len(physical_lines) == len(HOSTILE_RAWS)

    def test_append_only_across_reopens(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        first, second = letters_for(HOSTILE_RAWS[:2]), letters_for(HOSTILE_RAWS[2:])
        with FileDeadLetters(path) as sink:
            for letter in first:
                sink.record(letter)
        with FileDeadLetters(path) as sink:
            for letter in second:
                sink.record(letter)
        assert read_dead_letters(path) == first + second

    def test_blank_lines_tolerated_on_read(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        with FileDeadLetters(path) as sink:
            sink.record(letters_for(["x"])[0])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")  # an operator's stray edit
        assert len(read_dead_letters(path)) == 1

    def test_counts_track_reasons(self, tmp_path):
        sink = FileDeadLetters(tmp_path / "q.jsonl")
        with sink:
            sink.record(DeadLetter(0, "bad_arity", "x"))
            sink.record(DeadLetter(1, "self_loop", "1 1"))
            sink.record(DeadLetter(2, "bad_arity", "y"))
        assert sink.counts == {"bad_arity": 2, "self_loop": 1}
        assert sink.total == 3
        assert list(sink.summary()) == ["bad_arity", "self_loop"]  # REASONS order


class TestRunnerToFileToReplayOrder:
    def test_runner_writes_readable_letters_in_stream_order(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        stream = ["0 1", "broken line here", "2 3", "4 4", "5 6"]
        runner = StreamRunner(
            IteratorEdgeSource(stream, name="fixture"),
            dead_letters=FileDeadLetters(path),
        )
        runner.run()
        letters = read_dead_letters(path)
        assert [(l.offset, l.reason) for l in letters] == [
            (1, "non_integer_vertex"),
            (3, "self_loop"),
        ]
        assert letters[0].raw == "broken line here"
        assert letters[1].line_number is None  # iterator sources have no lines


class TestMemorySinkParity:
    def test_memory_and_file_sinks_agree(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        memory = MemoryDeadLetters()
        with FileDeadLetters(path) as file_sink:
            for letter in letters_for(HOSTILE_RAWS):
                memory.record(letter)
                file_sink.record(letter)
        assert read_dead_letters(path) == memory.entries
        assert file_sink.counts == memory.counts

    def test_memory_capacity_bounds_entries_not_counts(self):
        sink = MemoryDeadLetters(capacity=3)
        for letter in letters_for(HOSTILE_RAWS):
            sink.record(letter)
        assert len(sink.entries) == 3
        assert sink.total == len(HOSTILE_RAWS)
