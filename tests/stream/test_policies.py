"""The per-case policy layer: PolicySet, StreamGuard, and the runners.

Every casebook case is pinned in all three modes: ``strict`` raises,
``quarantine`` counts and continues, ``normalize`` repairs (or falls
back when no sound repair exists) and counts the repair.
"""

from __future__ import annotations

import pytest

from repro.core import SketchConfig
from repro.core.windowed import WindowedMinHashPredictor
from repro.errors import ConfigurationError, DeadLetterError
from repro.graph.stream import Edge
from repro.stream import (
    DEFAULT_POLICIES,
    IteratorEdgeSource,
    MODES,
    PolicySet,
    REASONS,
    StreamGuard,
    StreamRunner,
)
from repro.stream.policies import ContractViolation, coerce_record
from repro.stream.sources import SourceRecord


def record(value, offset=0, line_number=None):
    return SourceRecord(offset, value, line_number)


class TestPolicySet:
    def test_defaults_cover_every_reason(self):
        policies = PolicySet()
        assert set(policies.as_dict()) == set(REASONS)
        assert policies.as_dict() == DEFAULT_POLICIES

    def test_uniform(self):
        for mode in MODES:
            policies = PolicySet.uniform(mode)
            assert set(policies.as_dict().values()) == {mode}

    def test_parse_spellings(self):
        assert PolicySet.parse("") == PolicySet()
        assert PolicySet.parse("default") == PolicySet()
        assert PolicySet.parse("strict") == PolicySet.uniform("strict")
        mixed = PolicySet.parse("duplicate_edge=quarantine, hub_anomaly=strict")
        assert mixed.mode_for("duplicate_edge") == "quarantine"
        assert mixed.mode_for("hub_anomaly") == "strict"
        assert mixed.mode_for("bad_arity") == DEFAULT_POLICIES["bad_arity"]

    def test_unknown_case_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown casebook case"):
            PolicySet({"bogus_case": "normalize"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            PolicySet({"bad_arity": "retry"})
        with pytest.raises(ConfigurationError):
            PolicySet.uniform("retry")
        with pytest.raises(ConfigurationError):
            PolicySet.parse("bad_arity")  # a case name is not a mode

    def test_malformed_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicySet.parse("bad_arity=strict,oops=")

    def test_unlisted_reason_fails_safe(self):
        assert PolicySet.uniform("normalize").mode_for("future_reason") == "quarantine"

    def test_repr_shows_only_overrides(self):
        assert repr(PolicySet()) == "PolicySet()"
        assert "hub_anomaly" in repr(PolicySet({"hub_anomaly": "strict"}))


class TestCoerceRecordHardening:
    def test_tuple_nonfinite_timestamp_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ContractViolation) as excinfo:
                coerce_record(record((1, 2, bad)))
            assert excinfo.value.reason == "nonfinite_timestamp"

    def test_tuple_finite_timestamp_accepted(self):
        assert coerce_record(record((1, 2, 7.5))) == Edge(1, 2, 7.5)


#: The full matrix: per case, the stream state to prime, the hostile
#: record, and the expected disposition under each uniform mode.
#: ``normalize`` expectations are (disposition, repaired (u, v) or None).
CASE_MATRIX = [
    ("bad_arity", [], "1 2 3 4", ("quarantine", None)),
    ("non_integer_vertex", [], "alice bob", ("quarantine", None)),
    ("negative_vertex", [], "-1 2", ("quarantine", None)),
    ("bad_record_type", [], {"u": 1}, ("quarantine", None)),
    ("bad_timestamp", [], "1 2 yesterday", ("normalized", (1, 2))),
    ("nonfinite_timestamp", [], "1 2 nan", ("normalized", (1, 2))),
    ("mixed_delimiter", [], "1,2", ("normalized", (1, 2))),
    ("bad_encoding", [], "﻿1 2", ("normalized", (1, 2))),
    ("self_loop", [], "7 7", ("normalized", None)),
    ("duplicate_edge", ["1 2 10"], "1 2 11", ("normalized", None)),
    ("out_of_order_timestamp", ["1 2 100"], "3 4 5", ("normalized", (3, 4))),
    ("far_future_timestamp", [], "3 4 5000", ("normalized", (3, 4))),
    ("hub_anomaly", ["0 1 1", "0 2 2"], "0 3 3", ("normalized", None)),
]


def make_guard(mode):
    # Tight thresholds so the stream-level cases fire on tiny fixtures.
    return StreamGuard(
        PolicySet.uniform(mode), hub_degree_limit=2, max_timestamp=1000.0
    )


def prime(guard, lines):
    for offset, line in enumerate(lines):
        verdict = guard.evaluate(record(line, offset=offset))
        assert verdict.disposition == "ok", f"priming line {line!r} not clean"


@pytest.mark.parametrize(
    "case,priming,hostile,normalize_expect",
    CASE_MATRIX,
    ids=[row[0] for row in CASE_MATRIX],
)
class TestCaseMatrix:
    def test_strict_mode_escalates(self, case, priming, hostile, normalize_expect):
        guard = make_guard("strict")
        prime(guard, priming)
        verdict = guard.evaluate(record(hostile, offset=len(priming)))
        assert verdict.disposition == "strict"
        assert verdict.reason == case

    def test_quarantine_mode_names_the_case(
        self, case, priming, hostile, normalize_expect
    ):
        guard = make_guard("quarantine")
        prime(guard, priming)
        verdict = guard.evaluate(record(hostile, offset=len(priming)))
        assert verdict.disposition == "quarantine"
        assert verdict.reason == case

    def test_normalize_mode_repairs_or_falls_back(
        self, case, priming, hostile, normalize_expect
    ):
        disposition, repaired = normalize_expect
        guard = make_guard("normalize")
        prime(guard, priming)
        verdict = guard.evaluate(record(hostile, offset=len(priming)))
        assert verdict.disposition == disposition
        if disposition == "normalized":
            assert case in verdict.cases
            if repaired is None:
                assert verdict.edge is None  # repaired by removal
            else:
                assert (verdict.edge.u, verdict.edge.v) == repaired
        else:  # unrepairable: fell back to quarantine under its own name
            assert verdict.reason == case


class TestGuardSemantics:
    def test_passthrough_guard_keeps_legacy_contract(self):
        guard = StreamGuard(None)
        assert not guard.active
        # Stream-level cases do not exist without policies: a duplicate
        # and a regressing timestamp both pass.
        assert guard.evaluate(record("1 2 10", 0)).disposition == "ok"
        assert guard.evaluate(record("1 2 10", 1)).disposition == "ok"
        assert guard.evaluate(record("3 4 5", 2)).disposition == "ok"
        # Parse-level violations surface as plain quarantine verdicts.
        verdict = guard.evaluate(record("broken", 3))
        assert verdict.disposition == "quarantine"
        assert verdict.reason == "bad_arity"

    def test_state_commits_only_on_acceptance(self):
        guard = make_guard("quarantine")
        prime(guard, ["1 2 10"])
        # A quarantined duplicate must not advance the high-water mark
        # or degrees: judging is side-effect-free for rejected records.
        assert guard.evaluate(record("1 2 999", 1)).reason == "duplicate_edge"
        verdict = guard.evaluate(record("3 4 10", 2))
        assert verdict.disposition == "ok"  # 10 is still the high-water

    def test_out_of_order_clamps_to_high_water(self):
        guard = make_guard("normalize")
        prime(guard, ["1 2 100"])
        verdict = guard.evaluate(record("3 4 5", 1))
        assert verdict.edge.timestamp == 100.0

    def test_far_future_clamps_to_horizon(self):
        guard = make_guard("normalize")
        verdict = guard.evaluate(record("3 4 99999", 0))
        assert verdict.edge.timestamp == 1000.0
        assert verdict.cases == ("far_future_timestamp",)

    def test_duplicate_named_before_out_of_order(self):
        # A verbatim re-send carries a stale timestamp too; its identity
        # as a duplicate must win the naming.
        guard = make_guard("quarantine")
        prime(guard, ["1 2 10", "3 4 20"])
        verdict = guard.evaluate(record("1 2 10", 2))
        assert verdict.reason == "duplicate_edge"

    def test_replay_override_judges_against_original_state(self):
        guard = make_guard("quarantine")
        prime(guard, ["1 2 10"])
        quarantined = guard.evaluate(record("1 2 11", 1))
        assert quarantined.disposition == "quarantine"
        # Replay under normalize: still a duplicate of the *original*
        # stream's state, so the repair is removal, not re-acceptance.
        replayed = guard.evaluate(
            record("1 2 11", 1), policies=PolicySet.uniform("normalize")
        )
        assert replayed.disposition == "normalized"
        assert replayed.edge is None

    def test_reset_forgets_stream_state(self):
        guard = make_guard("quarantine")
        prime(guard, ["1 2 10"])
        guard.reset()
        assert guard.evaluate(record("1 2 10", 0)).disposition == "ok"

    def test_guard_validates_thresholds(self):
        with pytest.raises(ConfigurationError):
            StreamGuard(None, hub_degree_limit=0)
        with pytest.raises(ConfigurationError):
            StreamGuard(None, max_timestamp=float("inf"))
        with pytest.raises(ConfigurationError):
            StreamGuard(None, self_loops="explode")


DIRTY_STREAM = [
    "1 2 10",
    "3 4 20",
    "1 2 21",  # duplicate
    "5,6",  # mixed delimiter
    "7 7",  # self-loop
    "8 9 nan",  # nonfinite timestamp
]


class TestRunnerIntegration:
    def make_runner(self, policies=None, guard=None, **kwargs):
        return StreamRunner(
            IteratorEdgeSource(DIRTY_STREAM, name="dirty"),
            config=SketchConfig(k=16, seed=3),
            policies=policies,
            guard=guard,
            **kwargs,
        )

    def test_normalize_policy_repairs_and_counts(self):
        runner = self.make_runner(policies="normalize")
        stats = runner.run()
        # Repairs: duplicate removed, mixed re-split, self-loop removed,
        # nan substituted (then clamped up to the high-water mark).
        assert stats["dead_lettered"] == 0
        reasons = stats["normalized_reasons"]
        assert reasons["duplicate_edge"] == 1
        assert reasons["mixed_delimiter"] == 1
        assert reasons["self_loop"] == 1
        assert reasons["nonfinite_timestamp"] == 1
        assert stats["records_in"] == len(DIRTY_STREAM)
        # (1,2),(3,4),(5,6),(8,9) applied; duplicate and loop removed.
        assert stats["records_ok"] == 4
        assert stats["normalized"] == sum(reasons.values())

    def test_policy_string_is_parsed(self):
        runner = self.make_runner(policies="duplicate_edge=strict")
        with pytest.raises(DeadLetterError) as excinfo:
            runner.run()
        assert excinfo.value.reason == "duplicate_edge"
        assert excinfo.value.offset == 2
        # The poison record's offset is NOT committed: resume re-reads it.
        assert runner.offset == 2

    def test_default_policies_quarantine_semantic_anomalies(self):
        runner = self.make_runner(policies="default")
        stats = runner.run()
        # Defaults: duplicate/mixed normalize; nan quarantines.
        assert stats["normalized_reasons"]["duplicate_edge"] == 1
        assert stats["dead_letter_reasons"]["nonfinite_timestamp"] == 1

    def test_guard_and_policies_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            self.make_runner(
                policies="normalize", guard=StreamGuard(PolicySet())
            )

    def test_guard_self_loops_must_match(self):
        with pytest.raises(ConfigurationError, match="self_loops"):
            self.make_runner(
                guard=StreamGuard(PolicySet(), self_loops="drop")
            )

    def test_prebuilt_guard_thresholds_apply(self):
        guard = StreamGuard(PolicySet.uniform("quarantine"), hub_degree_limit=1)
        runner = StreamRunner(
            IteratorEdgeSource(["0 1", "0 2", "3 4"], name="hub"),
            config=SketchConfig(k=16, seed=3),
            guard=guard,
        )
        stats = runner.run()
        assert stats["dead_letter_reasons"] == {"hub_anomaly": 1}

    def test_windowed_predictor_enforces_the_same_contract(self):
        # The casebook contract is predictor-agnostic: a windowed
        # predictor behind the same runner sees only repaired records.
        runner = StreamRunner(
            IteratorEdgeSource(DIRTY_STREAM, name="dirty"),
            predictor=WindowedMinHashPredictor(
                SketchConfig(k=16, seed=3), pane_edges=10, panes=2
            ),
            policies="normalize",
        )
        stats = runner.run()
        assert stats["records_ok"] == 4
        # Repairs plus the out-of-order clamps on the two substituted
        # (offset-based) timestamps, which fall below the high-water mark.
        assert stats["normalized"] == sum(stats["normalized_reasons"].values())
        assert stats["normalized_reasons"]["duplicate_edge"] == 1
        assert runner.predictor.vertex_count == 8

    def test_metrics_registry_carries_normalized_counter(self):
        runner = self.make_runner(policies="normalize")
        runner.run()
        counter = runner.metrics.get("ingest_normalized_total")
        by_reason = {
            labels["reason"]: series.value for labels, series in counter.series()
        }
        assert by_reason["duplicate_edge"] == 1
