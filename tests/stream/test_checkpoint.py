"""CheckpointManager: rotation, atomicity, corruption fallback."""

from __future__ import annotations

import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import CheckpointCorruptError, ConfigurationError
from repro.graph import from_pairs
from repro.stream import CheckpointManager
from tests.conftest import TOY_EDGES


def make_predictor(edges=TOY_EDGES, k=16, seed=3):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=seed))
    predictor.process(from_pairs(edges))
    return predictor


class TestGenerations:
    def test_generations_increase_and_rotate(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        predictor = make_predictor()
        for offset in (10, 20, 30, 40):
            manager.save(predictor, offset)
        assert manager.generations() == [4, 3]
        assert not (tmp_path / "checkpoint-1.npz").exists()
        assert not (tmp_path / "checkpoint-2.npz").exists()

    def test_load_latest_returns_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        predictor = make_predictor()
        manager.save(predictor, 100)
        manager.save(predictor, 200)
        checkpoint = manager.load_latest()
        assert checkpoint is not None
        assert checkpoint.generation == 2
        assert checkpoint.offset == 200
        assert checkpoint.predictor.vertex_count == predictor.vertex_count

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None
        assert CheckpointManager(tmp_path).latest_generation() == 0

    def test_generation_numbering_survives_rotation(self, tmp_path):
        """After rotation deletes generation 1, the next save must not
        reuse a deleted number (resume identity depends on it)."""
        manager = CheckpointManager(tmp_path, keep=1)
        predictor = make_predictor()
        manager.save(predictor, 1)
        manager.save(predictor, 2)
        path = manager.save(predictor, 3)
        assert path.name == "checkpoint-3.npz"

    def test_two_basenames_coexist(self, tmp_path):
        drill = CheckpointManager(tmp_path, basename="drill")
        prod = CheckpointManager(tmp_path, basename="prod")
        predictor = make_predictor()
        drill.save(predictor, 7)
        prod.save(predictor, 9)
        assert drill.load_latest().offset == 7
        assert prod.load_latest().offset == 9

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, basename="bad/name")


class TestCorruptionFallback:
    def test_corrupt_newest_falls_back_one_generation(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        predictor = make_predictor()
        manager.save(predictor, 100)
        manager.save(predictor, 200)
        newest = tmp_path / "checkpoint-2.npz"
        newest.write_bytes(newest.read_bytes()[:50])
        checkpoint = manager.load_latest()
        assert checkpoint.generation == 1
        assert checkpoint.offset == 100

    def test_all_corrupt_raises_corrupt_error(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        predictor = make_predictor()
        manager.save(predictor, 1)
        manager.save(predictor, 2)
        for path in tmp_path.glob("checkpoint-*.npz"):
            path.write_bytes(b"\x00" * 40)
        with pytest.raises(CheckpointCorruptError):
            manager.load_latest()

    @pytest.mark.parametrize("cut", [1, 37, 200, -10])
    def test_truncation_at_any_byte_offset_rejected(self, tmp_path, cut):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(make_predictor(), 5)
        path = tmp_path / "checkpoint-1.npz"
        raw = path.read_bytes()
        path.write_bytes(raw[:cut])
        with pytest.raises(CheckpointCorruptError):
            manager.load_latest()

    def test_stray_temp_files_ignored_and_swept(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        predictor = make_predictor()
        manager.save(predictor, 50)
        stray = tmp_path / ".checkpoint-9.npz.tmp-123"
        stray.write_bytes(b"torn write")
        assert manager.load_latest().generation == 1  # stray invisible
        manager.save(predictor, 60)
        assert not stray.exists()
