"""FaultInjector determinism and the composed crash-recovery property.

The headline acceptance test lives here: for injected fault schedules
(transient I/O errors + corrupt lines + duplicates + reordering + a
kill at an arbitrary record), a resumed runner's final sketch state is
bit-identical to an uninterrupted single-pass run over the same
mutated stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.stream import (
    CheckpointManager,
    FaultInjector,
    IteratorEdgeSource,
    MemoryDeadLetters,
    RetryingSource,
    RetryPolicy,
    StreamRunner,
)


def clean_stream(n_edges=300, seed=21):
    return [(e.u, e.v) for e in erdos_renyi(50, n_edges, seed=seed)]


def no_sleep_policy(attempts=6):
    return RetryPolicy(max_attempts=attempts, base_delay=0.0, jitter=0.0, sleep=lambda _: None)


class TestDeterminism:
    def test_mutation_is_reproducible(self):
        stream = clean_stream()
        injector_a = FaultInjector(seed=5, corrupt_rate=0.1, duplicate_rate=0.1, swap_rate=0.1)
        injector_b = FaultInjector(seed=5, corrupt_rate=0.1, duplicate_rate=0.1, swap_rate=0.1)
        assert injector_a.mutate_records(stream) == injector_b.mutate_records(stream)

    def test_different_seeds_differ(self):
        stream = clean_stream()
        a = FaultInjector(seed=1, corrupt_rate=0.2).mutate_records(stream)
        b = FaultInjector(seed=2, corrupt_rate=0.2).mutate_records(stream)
        assert a != b

    def test_mutation_leaves_input_untouched(self):
        stream = clean_stream(50)
        copy = list(stream)
        FaultInjector(seed=3, corrupt_rate=0.5, duplicate_rate=0.5).mutate_records(stream)
        assert stream == copy

    def test_duplicates_grow_the_stream(self):
        stream = clean_stream(200)
        mutated = FaultInjector(seed=4, duplicate_rate=0.3).mutate_records(stream)
        assert len(mutated) > len(stream)

    def test_corrupt_lines_are_strings(self):
        mutated = FaultInjector(seed=6, corrupt_rate=1.0).mutate_records(clean_stream(30))
        assert all(isinstance(record, str) for record in mutated)

    def test_flaky_failure_schedule_is_per_offset_stable(self):
        injector = FaultInjector(seed=8, io_error_rate=0.5, max_failures_per_offset=3)
        first = [injector.failures_for_offset(o) for o in range(100)]
        second = [injector.failures_for_offset(o) for o in range(100)]
        assert first == second
        assert any(first) and not all(first)

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(corrupt_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(max_failures_per_offset=0)


class TestComposedCrashRecovery:
    """The acceptance property, under full chaos."""

    CONFIG = dict(k=32, seed=17)

    def _uninterrupted_reference(self, mutated):
        runner = StreamRunner(
            IteratorEdgeSource(mutated),
            config=SketchConfig(**self.CONFIG),
            self_loops="quarantine",
        )
        runner.run()
        return runner

    @pytest.mark.parametrize("kill_at", [25, 150, 275])
    def test_chaos_run_resumes_bit_identical(self, tmp_path, kill_at):
        injector = FaultInjector(
            seed=11,
            corrupt_rate=0.05,
            duplicate_rate=0.08,
            swap_rate=0.10,
            io_error_rate=0.05,
            max_failures_per_offset=2,
        )
        mutated = injector.mutate_records(clean_stream())
        reference = self._uninterrupted_reference(mutated)

        manager = CheckpointManager(tmp_path / f"kill{kill_at}", keep=3)

        def chaotic_source():
            # Fresh flaky wrapper per runner: transport faults replay
            # identically because the schedule is offset-derived.
            return RetryingSource(
                injector.flaky(IteratorEdgeSource(mutated)), no_sleep_policy()
            )

        victim = StreamRunner(
            chaotic_source(),
            config=SketchConfig(**self.CONFIG),
            checkpoint_manager=manager,
            checkpoint_every=40,
        )
        victim.run(max_records=kill_at)  # the crash: no final checkpoint

        survivor = StreamRunner(
            chaotic_source(),
            config=SketchConfig(**self.CONFIG),
            checkpoint_manager=manager,
            checkpoint_every=40,
        )
        survivor.resume()
        survivor.run()

        assert survivor.predictor.vertex_count == reference.predictor.vertex_count
        for vertex, sketch in reference.predictor._sketches.items():
            survivor_sketch = survivor.predictor._sketches[vertex]
            assert np.array_equal(sketch.values, survivor_sketch.values)
            assert np.array_equal(sketch.witnesses, survivor_sketch.witnesses)
            assert survivor.predictor.degree(vertex) == reference.predictor.degree(vertex)

        # Counters cover the tail exactly: reference counters over the
        # full stream equal victim's prefix + survivor's replayed tail
        # from the resume offset.
        assert survivor.offset == reference.offset == len(mutated)
        assert survivor.source_exhausted

    def test_dead_letter_counts_match_uninterrupted_run(self, tmp_path):
        injector = FaultInjector(seed=23, corrupt_rate=0.15, duplicate_rate=0.05)
        mutated = injector.mutate_records(clean_stream())
        reference = self._uninterrupted_reference(mutated)

        manager = CheckpointManager(tmp_path, keep=2)
        victim = StreamRunner(
            IteratorEdgeSource(mutated),
            config=SketchConfig(**self.CONFIG),
            checkpoint_manager=manager,
            checkpoint_every=50,
        )
        victim.run(max_records=123)
        survivor_sink = MemoryDeadLetters()
        survivor = StreamRunner(
            IteratorEdgeSource(mutated),
            config=SketchConfig(**self.CONFIG),
            checkpoint_manager=manager,
            dead_letters=survivor_sink,
        )
        survivor.resume()
        survivor.run()

        # Prefix (victim, up to its last checkpoint at offset 100) plus
        # the survivor's tail must partition the reference's letters.
        resume_offset = 100
        reference_sink = reference.dead_letters
        prefix_letters = [e for e in reference_sink.entries if e.offset < resume_offset]
        tail_letters = [e for e in reference_sink.entries if e.offset >= resume_offset]
        assert survivor_sink.total == len(tail_letters)
        assert survivor_sink.entries == tail_letters
        assert victim.dead_letters.total >= len(prefix_letters)
