"""The deletion-tolerant stream path: records, guard, runners, replay.

Everything the fully dynamic redesign added between the parser and the
predictor: the typed :class:`StreamRecord` contract and its tuple/Edge
back-compat shims, the guard's three new judgements (``bad_op``,
``delete_unseen_edge``, ``unsupported_delete``), the serial and
sharded runners over op-bearing streams, dynamic checkpointing through
the runner, and the deletion-bearing casebook corpus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DynamicMinHashPredictor, SketchConfig
from repro.errors import ConfigurationError, StreamFormatError
from repro.graph.io import parse_stream_record
from repro.graph.stream import Edge, StreamRecord
from repro.parallel import ShardedRunner
from repro.stream import PolicySet, StreamGuard, StreamRunner
from repro.stream.casebook import check_casebook, sketch_fingerprint
from repro.stream.policies import ContractViolation, coerce_record, coerce_stream_record
from repro.stream.sources import IteratorEdgeSource, SourceRecord


class TestStreamRecordGrammar:
    def test_plain_line_is_an_add(self):
        record = parse_stream_record("3 4 7.5")
        assert record == StreamRecord("add", 3, 4, 7.5, 1.0)

    @pytest.mark.parametrize("token", ["+", "add"])
    def test_explicit_add_tokens(self, token):
        assert parse_stream_record(f"{token} 3 4").op == "add"

    @pytest.mark.parametrize("token", ["-", "delete", "del"])
    def test_delete_tokens(self, token):
        record = parse_stream_record(f"{token} 3 4 9")
        assert record.op == "delete"
        assert (record.u, record.v, record.timestamp) == (3, 4, 9.0)

    def test_unknown_op_token_is_bad_op(self):
        with pytest.raises(StreamFormatError) as excinfo:
            parse_stream_record("upsert 3 4 9")
        assert excinfo.value.reason == "bad_op"
        assert "op:" in str(excinfo.value)

    def test_append_only_grammar_rejects_ops(self):
        with pytest.raises(StreamFormatError):
            parse_stream_record("- 3 4", accept_ops=False)

    def test_edge_view(self):
        record = StreamRecord.delete_edge(5, 6, 2.0)
        assert record.edge == Edge(5, 6, 2.0)


class TestCoercionShims:
    def test_tuple_coerces_to_add_record(self):
        parsed = coerce_stream_record(SourceRecord(11, (3, 4), 1))
        assert parsed == StreamRecord("add", 3, 4, 11.0, 1.0)

    def test_edge_like_triple_carries_timestamp(self):
        parsed = coerce_stream_record(SourceRecord(0, (3, 4, 9.5), 1))
        assert parsed.timestamp == 9.5

    def test_stream_record_fields_are_validated_not_trusted(self):
        hostile = StreamRecord("add", -1, 4, 0.0, 1.0)
        with pytest.raises(ContractViolation) as excinfo:
            coerce_stream_record(SourceRecord(0, hostile, 1))
        assert excinfo.value.reason == "negative_vertex"

    def test_stream_record_bad_op_is_named(self):
        hostile = StreamRecord("upsert", 1, 4, 0.0, 1.0)
        with pytest.raises(ContractViolation) as excinfo:
            coerce_stream_record(SourceRecord(0, hostile, 1))
        assert excinfo.value.reason == "bad_op"

    def test_legacy_coerce_record_refuses_deletes(self):
        record = SourceRecord(0, StreamRecord.delete_edge(3, 4), 1)
        with pytest.raises(ContractViolation) as excinfo:
            coerce_record(record)
        assert excinfo.value.reason == "unsupported_delete"

    def test_legacy_coerce_record_still_returns_edges(self):
        assert coerce_record(SourceRecord(2, "3 4", 1)) == Edge(3, 4, 2.0)


class TestGuardDeleteSemantics:
    def test_append_only_guard_names_unsupported_delete(self):
        guard = StreamGuard(PolicySet())
        verdict = guard.evaluate(SourceRecord(0, "- 3 4", 1))
        assert verdict.disposition == "quarantine"
        assert verdict.reason == "unsupported_delete"

    def test_delete_of_unseen_edge_is_named(self):
        guard = StreamGuard(PolicySet(), supports_deletes=True)
        verdict = guard.evaluate(SourceRecord(0, "- 3 4", 1))
        assert verdict.disposition == "quarantine"
        assert verdict.reason == "delete_unseen_edge"

    def test_accepted_delete_retracts_guard_state(self):
        guard = StreamGuard(PolicySet(), supports_deletes=True)
        assert guard.evaluate(SourceRecord(0, "3 4 1", 1)).disposition == "ok"
        verdict = guard.evaluate(SourceRecord(1, "- 3 4 2", 2))
        assert verdict.disposition == "ok"
        assert verdict.record.op == "delete"
        # The edge is gone: re-adding it is fresh, not a duplicate.
        assert guard.evaluate(SourceRecord(2, "3 4 3", 3)).disposition == "ok"

    def test_pass_through_guard_still_blocks_deletes(self):
        guard = StreamGuard(None)  # legacy parse-level contract
        verdict = guard.evaluate(SourceRecord(0, "- 3 4", 1))
        assert verdict.reason == "unsupported_delete"


OPS_STREAM = [
    "1 2 10",
    "2 3 11",
    "+ 3 4 12",
    "- 1 2 13",
    "delete 2 3 14",
    "1 2 15",  # re-add after retraction
    "- 7 8 16",  # never added: delete_unseen_edge
]


class TestDynamicRunner:
    def config(self):
        return SketchConfig(k=16, seed=5, dynamic_mode=True)

    def test_scalar_and_batched_agree(self):
        runs = []
        for batch_size in (0, 3):
            runner = StreamRunner(
                IteratorEdgeSource(OPS_STREAM, name="ops"),
                config=self.config(),
                guard=StreamGuard(PolicySet(), supports_deletes=True),
                batch_size=batch_size,
            )
            stats = runner.run()
            assert stats["dynamic"] is True
            assert stats["records_ok"] == 6
            assert stats["dead_letter_reasons"] == {"delete_unseen_edge": 1}
            runs.append(sketch_fingerprint(runner.predictor))
        assert runs[0] == runs[1]

    def test_append_only_runner_quarantines_deletes(self):
        runner = StreamRunner(
            IteratorEdgeSource(OPS_STREAM, name="ops"),
            config=SketchConfig(k=16, seed=5),
        )
        stats = runner.run()
        assert stats["dynamic"] is False
        assert stats["dead_letter_reasons"] == {"unsupported_delete": 3}

    def test_delete_admitting_guard_needs_dynamic_predictor(self):
        with pytest.raises(ConfigurationError):
            StreamRunner(
                IteratorEdgeSource(OPS_STREAM, name="ops"),
                config=SketchConfig(k=16, seed=5),
                guard=StreamGuard(PolicySet(), supports_deletes=True),
            )

    def test_retraction_matches_never_adding(self):
        runner = StreamRunner(
            IteratorEdgeSource(["1 2 10", "3 4 11", "- 3 4 12"], name="churn"),
            config=self.config(),
        )
        runner.run()
        reference = StreamRunner(
            IteratorEdgeSource(["1 2 10"], name="plain"), config=self.config()
        )
        reference.run()
        ours = runner.predictor
        theirs = reference.predictor
        assert ours.degree(3) == 0
        assert ours.score(3, 4, "jaccard") == pytest.approx(0.0)
        assert ours.score(1, 2, "jaccard") == pytest.approx(
            theirs.score(1, 2, "jaccard")
        )

    def test_checkpoint_resume_under_deletions(self, tmp_path):
        # The stateless pass-through guard makes the stream's
        # judgements offset-independent, so kill-and-resume must be
        # bit-identical (a stateful guard's seen-set is deliberately
        # not checkpointed — same as the append-only contract).
        from repro.stream import CheckpointManager

        lines = OPS_STREAM * 3
        config = self.config()
        first = StreamRunner(
            IteratorEdgeSource(lines, name="ops"),
            config=config,
            checkpoint_manager=CheckpointManager(tmp_path / "ck"),
            checkpoint_every=5,
        )
        first.run(max_records=11)  # dies mid-stream, checkpoint at 10
        resumed = StreamRunner(
            IteratorEdgeSource(lines, name="ops"),
            config=config,
            checkpoint_manager=CheckpointManager(tmp_path / "ck"),
            checkpoint_every=5,
        )
        assert resumed.resume()
        assert isinstance(resumed.predictor, DynamicMinHashPredictor)
        resumed.run()
        uninterrupted = StreamRunner(
            IteratorEdgeSource(lines, name="ops"), config=config
        )
        uninterrupted.run()
        assert sketch_fingerprint(resumed.predictor) == sketch_fingerprint(
            uninterrupted.predictor
        )


class TestShardedDynamicRunner:
    def test_sharded_equals_serial_under_deletes(self):
        lines = []
        for i in range(120):
            u, v = i % 17, (i * 5 + 1) % 17
            if u != v:
                lines.append(f"{u} {v} {i}")
                if i % 4 == 3:
                    lines.append(f"- {u} {v} {i}.5")
        config = SketchConfig(k=16, seed=5, dynamic_mode=True)
        serial = StreamRunner(
            IteratorEdgeSource(lines, name="churn"),
            config=config,
            guard=StreamGuard(PolicySet(), supports_deletes=True),
        )
        serial_stats = serial.run()
        sharded = ShardedRunner(
            IteratorEdgeSource(lines, name="churn"),
            workers=3,
            config=config,
            guard=StreamGuard(PolicySet(), supports_deletes=True),
            batch_size=8,
        )
        sharded_stats = sharded.run()
        assert sharded_stats["dynamic"] is True
        assert sharded_stats["records_ok"] == serial_stats["records_ok"]
        assert sketch_fingerprint(sharded.predictor) == sketch_fingerprint(
            serial.predictor
        )


class TestDeletionCasebook:
    def test_with_deletes_check_passes_serially(self):
        report = check_casebook(with_deletes=True, per_case=1)
        assert report.ok, report.mismatches

    def test_delete_unseen_edge_is_in_the_matrix(self):
        report = check_casebook(with_deletes=True, per_case=1)
        cases = {row.case for row in report.rows}
        assert "delete_unseen_edge" in cases
        assert "bad_op" in cases

    def test_dynamic_mode_required(self):
        with pytest.raises(ConfigurationError):
            check_casebook(with_deletes=True, config=SketchConfig(k=16, seed=0))
