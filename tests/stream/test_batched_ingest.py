"""Batched stream ingestion (``batch_size``): bit-identical to scalar.

The serial runner, the sharded runner, and the ``repro.api.ingest``
facade all accept ``batch_size`` and route accepted edges through the
block-ingest kernel.  These tests pin the contract that makes the knob
safe to flip in production: the resulting predictor — and every
checkpoint written along the way — is bit-for-bit the one the scalar
path produces, dirty records, casebook policies, strict aborts, and
crash recovery included.
"""

from __future__ import annotations

import pytest

from repro.api import ingest
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError, DeadLetterError
from repro.stream import CheckpointManager, IteratorEdgeSource, StreamRunner
from repro.stream.casebook import sketch_fingerprint
from repro.stream.policies import PolicySet

CONFIG = SketchConfig(k=16, seed=9)

DIRTY = [
    (0, 1),
    (1, 2),
    (1, 2),          # duplicate (casebook policies flag it)
    (2, 2),          # self-loop
    (0, 1),          # duplicate
    (-1, 3),         # negative vertex
    "garbage",
    (3, 4),
    (4, 5, 7),       # timestamped
    (5, 6),
    (6, 7),
    (7, 8),
]


def run_stream(records, **kwargs):
    kwargs.setdefault("config", CONFIG)
    runner = StreamRunner(IteratorEdgeSource(records), **kwargs)
    stats = runner.run()
    return runner, stats


class TestSerialBatching:
    @pytest.mark.parametrize("batch_size", [2, 3, 100])
    def test_fingerprint_identical_to_scalar(self, batch_size):
        scalar, scalar_stats = run_stream(DIRTY)
        batched, batched_stats = run_stream(DIRTY, batch_size=batch_size)
        assert sketch_fingerprint(batched.predictor) == sketch_fingerprint(
            scalar.predictor
        )
        assert batched_stats["records_ok"] == scalar_stats["records_ok"]

    def test_with_casebook_policies(self):
        policies = PolicySet.parse("duplicate_edge=normalize")
        scalar, scalar_stats = run_stream(DIRTY, policies=policies)
        batched, batched_stats = run_stream(DIRTY, policies=policies, batch_size=4)
        assert sketch_fingerprint(batched.predictor) == sketch_fingerprint(
            scalar.predictor
        )
        assert (
            batched_stats["duplicate_edges_detected"]
            == scalar_stats["duplicate_edges_detected"]
            == 2
        )

    def test_strict_abort_flushes_pending_edges(self):
        records = [(0, 1), (1, 2), (2, 3), (-1, 9), (4, 5)]
        runner = StreamRunner(
            IteratorEdgeSource(records),
            config=CONFIG,
            policy="strict",
            batch_size=100,
        )
        with pytest.raises(DeadLetterError):
            runner.run()
        # Everything accepted before the poison record must be applied,
        # not stranded in the pending buffer.
        reference = MinHashLinkPredictor(CONFIG)
        for u, v in records[:3]:
            reference.update(u, v)
        assert sketch_fingerprint(runner.predictor) == sketch_fingerprint(reference)

    def test_exhaustion_flushes_partial_batch(self):
        runner, stats = run_stream([(0, 1), (1, 2), (2, 3)], batch_size=64)
        assert stats["records_ok"] == 3
        assert runner.predictor.vertex_count == 4

    def test_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            run_stream(DIRTY, batch_size=-1)

    def test_checkpoints_land_at_scalar_offsets(self, tmp_path):
        records = [(i, i + 1) for i in range(20)]
        scalar_dir, batched_dir = tmp_path / "scalar", tmp_path / "batched"
        for directory, batch_size in ((scalar_dir, 0), (batched_dir, 7)):
            run_stream(
                records,
                checkpoint_manager=CheckpointManager(directory),
                checkpoint_every=5,
                batch_size=batch_size,
            )
        scalar_gens = sorted(p.name for p in scalar_dir.glob("*.npz"))
        batched_gens = sorted(p.name for p in batched_dir.glob("*.npz"))
        assert scalar_gens == batched_gens
        latest = CheckpointManager(batched_dir).load_latest()
        assert latest.offset == 20

    def test_resume_with_batching_matches_uninterrupted_scalar(self, tmp_path):
        records = [(i % 9, i % 9 + 1 + i % 3) for i in range(40)]
        source_a = IteratorEdgeSource(records)
        runner = StreamRunner(
            source_a,
            config=CONFIG,
            checkpoint_manager=CheckpointManager(tmp_path),
            checkpoint_every=6,
            self_loops="drop",
            batch_size=5,
        )
        runner.run(max_records=17)  # simulated crash mid-stream
        resumed = StreamRunner(
            IteratorEdgeSource(records),
            config=CONFIG,
            checkpoint_manager=CheckpointManager(tmp_path),
            checkpoint_every=6,
            self_loops="drop",
            batch_size=5,
        )
        resumed.resume()
        resumed.run()
        scalar, _ = run_stream(records, self_loops="drop")
        assert sketch_fingerprint(resumed.predictor) == sketch_fingerprint(
            scalar.predictor
        )


class TestFacadeAndSharded:
    def test_api_ingest_batched_serial(self):
        scalar = ingest(DIRTY, config=CONFIG)
        batched = ingest(DIRTY, config=CONFIG, batch_size=8)
        assert sketch_fingerprint(batched.predictor) == sketch_fingerprint(
            scalar.predictor
        )

    def test_api_ingest_batched_sharded(self):
        records = [(i % 13, (i * 7) % 13) for i in range(120) if i % 13 != (i * 7) % 13]
        scalar = ingest(records, config=CONFIG)
        sharded = ingest(records, config=CONFIG, workers=2, batch_size=16)
        assert sketch_fingerprint(sharded.predictor) == sketch_fingerprint(
            scalar.predictor
        )

    def test_sharded_batched_checkpoint_resume(self, tmp_path):
        records = [(i % 11, (i * 5) % 11) for i in range(90) if i % 11 != (i * 5) % 11]
        interrupted = ingest(
            records,
            config=CONFIG,
            workers=2,
            batch_size=8,
            checkpoint_dir=tmp_path,
            checkpoint_every=10,
            max_records=40,
        )
        assert interrupted.records_ok < len(records)
        resumed = ingest(
            records,
            config=CONFIG,
            workers=2,
            batch_size=8,
            checkpoint_dir=tmp_path,
            checkpoint_every=10,
            resume=True,
        )
        scalar = ingest(records, config=CONFIG)
        assert sketch_fingerprint(resumed.predictor) == sketch_fingerprint(
            scalar.predictor
        )
