"""Sources: offset addressing, retry policy, and retry-exact delivery."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.stream import (
    FaultInjector,
    FileEdgeSource,
    IteratorEdgeSource,
    RetryingSource,
    RetryPolicy,
    SyntheticEdgeSource,
)


class TestFileEdgeSource:
    def test_offsets_skip_comments_and_blanks(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0 1\n% alt comment\n2 3\n\n4 5\n")
        records = list(FileEdgeSource(path).records())
        assert [(r.offset, r.value, r.line_number) for r in records] == [
            (0, "0 1", 3),
            (1, "2 3", 5),
            (2, "4 5", 7),
        ]

    def test_start_offset_resumes_mid_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n2 3\n4 5\n6 7\n")
        records = list(FileEdgeSource(path).records(start_offset=2))
        assert [(r.offset, r.value) for r in records] == [(2, "4 5"), (3, "6 7")]

    def test_malformed_lines_are_transported_not_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\nutter garbage here\n2 3\n")
        values = [r.value for r in FileEdgeSource(path).records()]
        assert values == ["0 1", "utter garbage here", "2 3"]


class TestIteratorEdgeSource:
    def test_sequence_replay_is_offset_exact(self):
        source = IteratorEdgeSource([(0, 1), (2, 3), (4, 5)])
        assert [r.offset for r in source.records()] == [0, 1, 2]
        assert [r.value for r in source.records(start_offset=1)] == [(2, 3), (4, 5)]
        # replay gives identical records
        assert list(source.records()) == list(source.records())

    def test_factory_replay(self):
        source = IteratorEdgeSource(lambda: iter([(0, 1), (2, 3)]))
        assert [r.value for r in source.records(1)] == [(2, 3)]
        assert [r.value for r in source.records(1)] == [(2, 3)]

    def test_one_shot_iterator_rejected(self):
        with pytest.raises(ConfigurationError, match="replay"):
            IteratorEdgeSource(iter([(0, 1)]))

    def test_synthetic_source_is_deterministic(self):
        a = list(SyntheticEdgeSource("synth-facebook", seed=3).records())
        b = list(SyntheticEdgeSource("synth-facebook", seed=3).records())
        assert a == b and len(a) > 0


class TestRetryPolicy:
    def test_schedule_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        import random

        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(0)
        for attempt in range(50):
            delay = policy.delay(attempt % 4, rng)
            assert 0.75 <= delay <= 1.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)


class TestRetryingSource:
    @staticmethod
    def _policy(sleeps, attempts=4):
        return RetryPolicy(
            max_attempts=attempts,
            base_delay=0.01,
            jitter=0.0,
            sleep=sleeps.append,
        )

    def test_transient_failures_recover_gaplessly(self):
        base = IteratorEdgeSource([(i, i + 1) for i in range(20)])
        flaky = FaultInjector(seed=7, io_error_rate=0.4, max_failures_per_offset=2).flaky(base)
        sleeps: list = []
        retrying = RetryingSource(flaky, self._policy(sleeps))
        records = list(retrying.records())
        assert [r.offset for r in records] == list(range(20))  # no gap, no dup
        assert flaky.failures_injected > 0
        assert len(sleeps) == flaky.failures_injected == retrying.retries

    def test_exhaustion_raises_typed_error(self):
        base = IteratorEdgeSource([(0, 1), (1, 2)])
        # offset 1 fails more times than the policy tolerates
        injector = FaultInjector(seed=1, io_error_rate=1.0, max_failures_per_offset=50)
        sleeps: list = []
        retrying = RetryingSource(injector.flaky(base), self._policy(sleeps, attempts=3))
        with pytest.raises(RetryExhaustedError) as excinfo:
            list(retrying.records())
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, IOError)
        assert len(sleeps) == 2  # attempts - 1 backoffs before giving up

    def test_success_resets_attempt_budget(self):
        # Every offset fails twice; with max_attempts=3 each offset
        # individually recovers, because delivery resets the counter.
        base = IteratorEdgeSource([(i, i + 1) for i in range(6)])
        injector = FaultInjector(seed=2, io_error_rate=1.0, max_failures_per_offset=2)
        sleeps: list = []
        retrying = RetryingSource(injector.flaky(base), self._policy(sleeps, attempts=3))
        records = list(retrying.records())
        assert [r.offset for r in records] == list(range(6))

    def test_backoff_delays_follow_policy(self):
        base = IteratorEdgeSource([(0, 1)])
        injector = FaultInjector(seed=3, io_error_rate=1.0, max_failures_per_offset=2)
        sleeps: list = []
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0,
            jitter=0.0, sleep=sleeps.append,
        )
        list(RetryingSource(injector.flaky(base), policy).records())
        failures = injector.failures_for_offset(0)
        assert failures >= 1
        assert sleeps == [0.1 * 2.0**i for i in range(failures)]
