"""StreamRunner: consumption, quarantine policy, checkpoints, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import ConfigurationError, DeadLetterError
from repro.stream import (
    CheckpointManager,
    FileDeadLetters,
    FileEdgeSource,
    IteratorEdgeSource,
    MemoryDeadLetters,
    StreamRunner,
)

CLEAN = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]


def make_runner(records, **kwargs):
    kwargs.setdefault("config", SketchConfig(k=16, seed=9))
    return StreamRunner(IteratorEdgeSource(records), **kwargs)


class TestHappyPath:
    def test_clean_stream_matches_direct_updates(self):
        runner = make_runner(CLEAN)
        stats = runner.run()
        reference = MinHashLinkPredictor(SketchConfig(k=16, seed=9))
        for u, v in CLEAN:
            reference.update(u, v)
        assert stats["records_in"] == stats["records_ok"] == len(CLEAN)
        assert stats["dead_lettered"] == 0
        assert stats["offset"] == len(CLEAN)
        assert stats["source_exhausted"] is True
        for vertex, sketch in reference._sketches.items():
            assert np.array_equal(sketch.values, runner.predictor._sketches[vertex].values)

    def test_file_source_end_to_end(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n0 1\n0 2\n1 2\n")
        runner = StreamRunner(FileEdgeSource(path), config=SketchConfig(k=8, seed=1))
        stats = runner.run()
        assert stats["records_ok"] == 3
        assert runner.predictor.vertex_count == 3

    def test_max_records_bounds_one_call(self):
        runner = make_runner(CLEAN)
        runner.run(max_records=2)
        assert runner.offset == 2
        assert runner.source_exhausted is False
        runner.run()  # picks up where it left off
        assert runner.offset == len(CLEAN)
        assert runner.records_in == len(CLEAN)


class TestQuarantine:
    DIRTY = [
        (0, 1),
        "garbage line here",   # bad_arity (3 tokens)... actually non-integer
        (2, 2),                # self-loop
        (-1, 3),               # negative vertex
        (4, 5),
        ("a", "b"),            # non-integer tuple
        (6, 7, "late"),        # bad timestamp
        {"u": 1},              # bad record type
        (8,),                  # bad arity tuple
        (9, 10),
    ]

    def test_dirty_records_quarantined_with_reasons(self):
        sink = MemoryDeadLetters()
        runner = make_runner(self.DIRTY, dead_letters=sink)
        stats = runner.run()
        assert stats["records_ok"] == 3  # (0,1), (4,5), (9,10)
        assert stats["records_in"] == len(self.DIRTY)
        assert stats["offset"] == len(self.DIRTY)
        reasons = stats["dead_letter_reasons"]
        assert reasons["self_loop"] == 1
        assert reasons["negative_vertex"] == 1
        assert reasons["non_integer_vertex"] == 2  # text line + ("a","b")
        assert reasons["bad_timestamp"] == 1
        assert reasons["bad_record_type"] == 1
        assert reasons["bad_arity"] == 1
        assert sink.total == 7

    def test_entries_carry_offset_and_raw(self):
        sink = MemoryDeadLetters()
        make_runner(self.DIRTY, dead_letters=sink).run()
        by_reason = {entry.reason: entry for entry in sink.entries}
        assert by_reason["self_loop"].offset == 2
        assert by_reason["negative_vertex"].raw == "(-1, 3)"

    def test_self_loops_droppable_silently(self):
        runner = make_runner([(0, 1), (2, 2), (3, 4)], self_loops="drop")
        stats = runner.run()
        assert stats["dead_lettered"] == 0
        assert stats["dropped"] == 1
        assert stats["records_ok"] == 2

    def test_strict_policy_fails_fast(self):
        runner = make_runner([(0, 1), (2, 2), (3, 4)], policy="strict")
        with pytest.raises(DeadLetterError) as excinfo:
            runner.run()
        assert excinfo.value.reason == "self_loop"
        assert excinfo.value.offset == 1
        # The bad record was not committed: a fix-and-rerun resumes there.
        assert runner.offset == 1

    def test_file_sink_appends_json_lines(self, tmp_path):
        import json

        path = tmp_path / "dead.jsonl"
        with FileDeadLetters(path) as sink:
            make_runner(self.DIRTY, dead_letters=sink).run()
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(entries) == 7
        assert {"offset", "reason", "raw", "line_number", "detail"} <= set(entries[0])

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            make_runner(CLEAN, policy="lenient")
        with pytest.raises(ConfigurationError):
            make_runner(CLEAN, self_loops="allow")
        with pytest.raises(ConfigurationError):
            make_runner(CLEAN, checkpoint_every=10)  # no manager


class TestCheckpointing:
    def test_cadence_counts_consumed_records(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        # 2 good + 2 bad + 2 good: cadence 3 must fire at records 3 and 6
        records = [(0, 1), (1, 2), (5, 5), (6, 6), (2, 3), (3, 4)]
        runner = make_runner(records, checkpoint_manager=manager, checkpoint_every=3)
        stats = runner.run()
        assert stats["checkpoints_written"] == 2
        assert manager.load_latest().offset == 6

    def test_final_checkpoint_on_exhaustion(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        runner = make_runner(CLEAN, checkpoint_manager=manager, checkpoint_every=1000)
        runner.run()
        assert manager.load_latest().offset == len(CLEAN)

    def test_resume_skips_processed_prefix(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        first = make_runner(CLEAN, checkpoint_manager=manager, checkpoint_every=2)
        first.run(max_records=4)  # checkpoints at 2 and 4

        second = make_runner(CLEAN, checkpoint_manager=manager)
        assert second.resume() is True
        assert second.offset == 4
        second.run()
        assert second.records_in == 1  # only the unprocessed suffix
        reference = MinHashLinkPredictor(SketchConfig(k=16, seed=9))
        for u, v in CLEAN:
            reference.update(u, v)
        assert second.predictor.score(0, 3, "adamic_adar") == reference.score(
            0, 3, "adamic_adar"
        )

    def test_resume_after_consumption_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        runner = make_runner(CLEAN, checkpoint_manager=manager, checkpoint_every=2)
        runner.run(max_records=3)
        with pytest.raises(ConfigurationError, match="double-count"):
            runner.resume()

    def test_resume_without_manager_rejected(self):
        with pytest.raises(ConfigurationError):
            make_runner(CLEAN).resume()


class TestStats:
    def test_checkpoint_age_uses_injected_clock(self, tmp_path):
        now = [100.0]
        manager = CheckpointManager(tmp_path)
        runner = make_runner(
            CLEAN, checkpoint_manager=manager, checkpoint_every=2, clock=lambda: now[0]
        )
        runner.run(max_records=2)  # checkpoint at t=100
        now[0] = 107.5
        stats = runner.stats()
        assert stats["last_checkpoint_age_seconds"] == 7.5
        assert stats["last_checkpoint_offset"] == 2

    def test_stats_before_any_checkpoint(self):
        stats = make_runner(CLEAN).stats()
        assert stats["last_checkpoint_age_seconds"] is None
        assert stats["last_checkpoint_offset"] is None
        assert stats["resumed_from_generation"] is None
        assert stats["vertices"] == 0
