"""The adversarial-input casebook: taxonomy, corpus, and convergence.

The casebook's acceptance contract, pinned:

1. every dead-letter reason has exactly one :class:`Case` with a
   default policy matching :data:`DEFAULT_POLICIES`;
2. the synthetic corpus lands every case with its expected disposition
   under all three uniform modes;
3. quarantine-then-replay converges **bit-identically** to clean
   ingest — serially and through the sharded runner.
"""

from __future__ import annotations

import pytest

from repro.core import SketchConfig
from repro.stream import (
    CASEBOOK,
    DEFAULT_POLICIES,
    FileDeadLetters,
    IteratorEdgeSource,
    MODES,
    MemoryDeadLetters,
    PolicySet,
    REASONS,
    StreamRunner,
    SyntheticCorpusGenerator,
    check_casebook,
    replay_dead_letters,
)
from repro.stream.casebook import (
    CASES_BY_REASON,
    DISPOSITIONS,
    _disposition_of,
    sketch_fingerprint,
)
from repro.stream.sources import SourceRecord

CONFIG = SketchConfig(k=16, seed=11)


class TestTaxonomy:
    def test_every_reason_has_exactly_one_case(self):
        assert [case.reason for case in CASEBOOK] == list(REASONS)

    def test_defaults_mirror_the_policy_table(self):
        for case in CASEBOOK:
            assert case.default_policy == DEFAULT_POLICIES[case.reason], case.reason

    def test_lookup_table_is_consistent(self):
        assert set(CASES_BY_REASON) == set(REASONS)
        for reason, case in CASES_BY_REASON.items():
            assert case.reason == reason

    def test_cases_are_fully_documented(self):
        for case in CASEBOOK:
            assert case.level in ("parse", "stream"), case.reason
            assert case.default_policy in MODES, case.reason
            assert case.example, case.reason
            assert case.fixture, case.reason
            if case.repairable:
                assert case.repair, case.reason

    def test_disposition_vocabulary_is_closed(self):
        assert DISPOSITIONS == ("applied", "dropped", "quarantined", "error")


class TestCorpusGenerator:
    def test_same_seed_same_corpus(self):
        first = SyntheticCorpusGenerator(seed=5).generate()
        second = SyntheticCorpusGenerator(seed=5).generate()
        assert first == second

    def test_every_text_case_is_represented(self):
        corpus = SyntheticCorpusGenerator(seed=0, per_case=3).generate()
        by_case = {}
        for line in corpus:
            if line.case is not None:
                by_case.setdefault(line.case, []).append(line)
        # bad_record_type is tuple-only; the delete cases belong to the
        # with_deletes variant (delete_unseen_edge) and the unit matrix
        # (unsupported_delete is a consumer property, not a corpus line).
        assert set(by_case) == set(REASONS) - {
            "bad_record_type",
            "delete_unseen_edge",
            "unsupported_delete",
        }
        assert all(len(lines) == 3 for lines in by_case.values())

    def test_deletion_variant_adds_the_delete_case(self):
        corpus = SyntheticCorpusGenerator(
            seed=0, per_case=3, with_deletes=True
        ).generate()
        cases = {line.case for line in corpus if line.case is not None}
        assert "delete_unseen_edge" in cases
        assert "bad_op" in cases

    def test_clean_lines_substitute_repairs(self):
        generator = SyntheticCorpusGenerator(seed=0)
        hostile = generator.hostile_lines()
        clean = generator.clean_lines()
        # The clean twin drops the unrepairable lines and keeps the rest.
        assert len(clean) < len(hostile)
        assert all("nan" not in line for line in clean)

    def test_parameters_are_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SyntheticCorpusGenerator(vertices=2)
        with pytest.raises(ConfigurationError):
            SyntheticCorpusGenerator(per_case=0)
        with pytest.raises(ConfigurationError):
            # Backbone degree would trip the hub detector on clean data.
            SyntheticCorpusGenerator(hub_degree_limit=1)


class TestDispositionManifest:
    @pytest.mark.parametrize("mode", MODES)
    def test_every_line_lands_as_labelled(self, mode):
        generator = SyntheticCorpusGenerator(seed=0)
        guard = generator.guard(PolicySet.uniform(mode))
        for offset, line in enumerate(generator.generate()):
            verdict = guard.evaluate(SourceRecord(offset, line.text, offset + 1))
            got = _disposition_of(verdict)
            assert got == line.expected[mode], (
                f"{line.case or 'pristine'}: {line.text!r} under {mode}: "
                f"expected {line.expected[mode]}, got {got}"
            )


def ingest(lines, *, guard=None):
    runner = StreamRunner(
        IteratorEdgeSource(list(lines), name="corpus"),
        config=CONFIG,
        guard=guard,
        dead_letters=MemoryDeadLetters(capacity=10_000),
    )
    runner.run()
    return runner


class TestConvergence:
    def test_normalize_matches_clean_ingest(self):
        generator = SyntheticCorpusGenerator(seed=0)
        reference = ingest(generator.clean_lines())
        normalized = ingest(
            generator.hostile_lines(),
            guard=generator.guard(PolicySet.uniform("normalize")),
        )
        assert sketch_fingerprint(normalized.predictor) == sketch_fingerprint(
            reference.predictor
        )

    def test_quarantine_plus_replay_matches_clean_ingest(self):
        generator = SyntheticCorpusGenerator(seed=0)
        reference = ingest(generator.clean_lines())
        runner = ingest(
            generator.hostile_lines(),
            guard=generator.guard(PolicySet.uniform("quarantine")),
        )
        assert runner.stats()["dead_lettered"] > 0
        report = replay_dead_letters(
            runner.dead_letters.entries,
            guard=runner.guard,
            predictor=runner.predictor,
        )
        # The unrepairable cases have no sound normalize repair: they
        # fall back to quarantine even on replay.  The clean reference
        # excludes them too, so convergence is unaffected.
        assert report.still_quarantined == {
            "bad_arity": 2,
            "bad_op": 2,
            "negative_vertex": 2,
            "non_integer_vertex": 2,
        }
        assert report.total == runner.stats()["dead_lettered"]
        assert sketch_fingerprint(runner.predictor) == sketch_fingerprint(
            reference.predictor
        )

    def test_replay_accepts_a_dead_letter_file(self, tmp_path):
        generator = SyntheticCorpusGenerator(seed=0)
        path = tmp_path / "quarantine.jsonl"
        runner = StreamRunner(
            IteratorEdgeSource(generator.hostile_lines(), name="corpus"),
            config=CONFIG,
            guard=generator.guard(PolicySet.uniform("quarantine")),
            dead_letters=FileDeadLetters(path),
        )
        runner.run()
        report = replay_dead_letters(
            path, guard=runner.guard, predictor=runner.predictor
        )
        assert set(report.still_quarantined) == {
            "bad_arity",
            "bad_op",
            "negative_vertex",
            "non_integer_vertex",
        }
        reference = ingest(generator.clean_lines())
        assert sketch_fingerprint(runner.predictor) == sketch_fingerprint(
            reference.predictor
        )

    def test_replay_with_strict_policies_reports_survivors(self):
        generator = SyntheticCorpusGenerator(seed=0)
        runner = ingest(
            generator.hostile_lines(),
            guard=generator.guard(PolicySet.uniform("quarantine")),
        )
        report = replay_dead_letters(
            runner.dead_letters.entries,
            guard=runner.guard,
            predictor=runner.predictor,
            policies=PolicySet.uniform("quarantine"),
        )
        # Re-judging under quarantine changes nothing: all still held.
        assert report.applied == 0 and report.removed == 0
        assert sum(report.still_quarantined.values()) == report.total


class TestCheckCasebook:
    def test_serial_check_passes(self):
        report = check_casebook(seed=0, config=CONFIG)
        assert report.ok
        assert report.mismatches == []
        assert report.normalize_converged and report.replay_converged
        assert report.sharded_normalize_converged is None
        # 13 text cases x 3 modes, every row fully matched.
        assert len(report.rows) == 39
        assert all(row.matched == row.total for row in report.rows)

    def test_sharded_check_passes(self):
        report = check_casebook(seed=0, config=CONFIG, workers=2)
        assert report.ok
        assert report.sharded_normalize_converged is True
        assert report.sharded_replay_converged is True
