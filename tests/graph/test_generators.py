"""Tests for the synthetic graph-stream generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph import AdjacencyGraph
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_exponent_mle,
    watts_strogatz,
)


def as_graph(edges):
    return AdjacencyGraph.from_edges(edges)


def assert_simple_stream(edges):
    """Every generator must emit a simple stream: no self-loops, no
    duplicate undirected edges, arrival-index timestamps."""
    seen = set()
    for index, edge in enumerate(edges):
        assert edge.u != edge.v
        pair = (min(edge.u, edge.v), max(edge.u, edge.v))
        assert pair not in seen
        seen.add(pair)
        assert edge.timestamp == float(index)


class TestErdosRenyi:
    def test_edge_count_and_simplicity(self):
        edges = erdos_renyi(100, 300, seed=1)
        assert len(edges) == 300
        assert_simple_stream(edges)

    def test_deterministic(self):
        assert erdos_renyi(50, 100, seed=3) == erdos_renyi(50, 100, seed=3)
        assert erdos_renyi(50, 100, seed=3) != erdos_renyi(50, 100, seed=4)

    def test_full_graph_possible(self):
        edges = erdos_renyi(10, 45, seed=0)
        assert as_graph(edges).edge_count == 45

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(1, 0)
        with pytest.raises(ConfigurationError):
            erdos_renyi(10, 46)  # exceeds C(10,2)

    def test_degrees_are_homogeneous(self):
        g = as_graph(erdos_renyi(500, 2500, seed=2))
        # mean degree 10; an ER max degree beyond 30 would be absurd.
        assert g.max_degree() < 30


class TestBarabasiAlbert:
    def test_edge_count(self):
        edges = barabasi_albert(n=200, m=3, seed=1)
        assert len(edges) == 3 + (200 - 4) * 3
        assert_simple_stream(edges)

    def test_growth_order_vertices_appear_in_sequence(self):
        # The newest endpoint of each edge never decreases: the stream
        # is the temporal growth order of the network.
        edges = barabasi_albert(n=100, m=2, seed=5)
        highest_seen = -1
        for edge in edges:
            newest = max(edge.u, edge.v)
            assert newest >= highest_seen
            highest_seen = newest
        assert highest_seen == 99

    def test_heavy_tail(self):
        g = as_graph(barabasi_albert(n=2000, m=3, seed=7))
        # Preferential attachment: the hub should dominate the mean.
        assert g.max_degree() > 5 * g.average_degree()

    def test_min_degree_is_m(self):
        g = as_graph(barabasi_albert(n=500, m=4, seed=2))
        degrees = [g.degree(v) for v in g.vertices()]
        assert min(degrees) >= 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert(n=5, m=5)
        with pytest.raises(ConfigurationError):
            barabasi_albert(n=10, m=0)


class TestWattsStrogatz:
    def test_zero_beta_is_ring_lattice(self):
        g = as_graph(watts_strogatz(n=50, k=4, beta=0.0, seed=1))
        assert g.edge_count == 100
        for v in g.vertices():
            assert g.degree(v) == 4

    def test_rewiring_changes_structure(self):
        lattice = as_graph(watts_strogatz(n=100, k=4, beta=0.0, seed=1))
        rewired = as_graph(watts_strogatz(n=100, k=4, beta=0.5, seed=1))
        lattice_edges = set(lattice.edges())
        rewired_edges = set(rewired.edges())
        assert lattice_edges != rewired_edges

    def test_simple_stream(self):
        assert_simple_stream(watts_strogatz(n=60, k=6, beta=0.2, seed=3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz(n=10, k=3, beta=0.1)  # odd k
        with pytest.raises(ConfigurationError):
            watts_strogatz(n=4, k=4, beta=0.1)  # n <= k
        with pytest.raises(ConfigurationError):
            watts_strogatz(n=10, k=4, beta=1.5)


class TestChungLu:
    def test_edge_count_and_simplicity(self):
        edges = chung_lu(n=500, edges=1500, exponent=2.5, seed=1)
        assert len(edges) == 1500
        assert_simple_stream(edges)

    def test_heavy_tail_versus_flat(self):
        heavy = as_graph(chung_lu(n=2000, edges=8000, exponent=2.0, seed=2))
        flat = as_graph(erdos_renyi(2000, 8000, seed=2))
        assert heavy.max_degree() > 3 * flat.max_degree()

    def test_exponent_controls_skew(self):
        steep = as_graph(chung_lu(n=3000, edges=9000, exponent=3.5, seed=3))
        shallow = as_graph(chung_lu(n=3000, edges=9000, exponent=1.8, seed=3))
        assert shallow.max_degree() > steep.max_degree()

    def test_deterministic(self):
        a = chung_lu(n=100, edges=300, seed=9)
        b = chung_lu(n=100, edges=300, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chung_lu(n=1, edges=0)
        with pytest.raises(ConfigurationError):
            chung_lu(n=10, edges=100)
        with pytest.raises(ConfigurationError):
            chung_lu(n=10, edges=5, exponent=1.0)


class TestPlantedPartition:
    def test_edge_counts(self):
        edges = planted_partition(
            n=200, communities=4, internal_edges=400, external_edges=50, seed=1
        )
        assert len(edges) == 450
        assert_simple_stream(edges)

    def test_internal_edges_dominate_within_blocks(self):
        edges = planted_partition(
            n=200, communities=4, internal_edges=400, external_edges=50, seed=2
        )
        block = 200 // 4
        internal = sum(1 for e in edges if e.u // block == e.v // block)
        assert internal >= 400  # external sampling cannot create intra-block pairs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            planted_partition(n=100, communities=1, internal_edges=1, external_edges=1)
        with pytest.raises(ConfigurationError):
            planted_partition(n=3, communities=2, internal_edges=1, external_edges=1)


class TestPowerlawFit:
    def test_recovers_known_exponent(self):
        g = as_graph(chung_lu(n=20000, edges=60000, exponent=2.5, seed=4))
        degrees = [g.degree(v) for v in g.vertices()]
        fitted = powerlaw_exponent_mle(degrees, minimum_degree=5)
        assert fitted == pytest.approx(2.5, abs=0.5)

    def test_needs_enough_tail(self):
        with pytest.raises(ConfigurationError):
            powerlaw_exponent_mle([1, 1, 1], minimum_degree=5)
