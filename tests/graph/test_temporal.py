"""Tests for timestamp-aware stream utilities."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.graph.stream import Edge
from repro.graph.temporal import (
    TimestampStats,
    clip_by_time,
    rate_profile,
    sort_by_timestamp,
    time_snapshots,
)


def timestamped(pairs_with_times):
    return [Edge(u, v, t) for u, v, t in pairs_with_times]


class TestSorting:
    def test_sorts_and_is_stable(self):
        stream = timestamped([(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0)])
        result = sort_by_timestamp(stream)
        assert [e.timestamp for e in result] == [1.0, 5.0, 5.0]
        # Stability: the two t=5 edges keep their input order.
        assert result[1] == Edge(0, 1, 5.0)

    def test_sorted_input_is_identity(self):
        stream = timestamped([(0, 1, 1.0), (1, 2, 2.0)])
        assert sort_by_timestamp(stream) == stream


class TestClipping:
    def test_half_open_range(self):
        stream = timestamped([(0, 1, 0.0), (1, 2, 5.0), (2, 3, 10.0)])
        clipped = list(clip_by_time(stream, start=0.0, end=10.0))
        assert [e.timestamp for e in clipped] == [0.0, 5.0]

    def test_open_ended(self):
        stream = timestamped([(0, 1, 1.0), (1, 2, 2.0)])
        assert len(list(clip_by_time(stream))) == 2
        assert len(list(clip_by_time(stream, start=1.5))) == 1
        assert len(list(clip_by_time(stream, end=1.5))) == 1

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            list(clip_by_time([], start=5.0, end=5.0))


class TestSnapshots:
    def test_cuts_at_intervals_and_at_end(self):
        stream = timestamped(
            [(0, 1, 0.0), (1, 2, 4.0), (2, 3, 11.0), (3, 4, 12.0)]
        )
        cuts = [(t, graph.edge_count) for t, graph in time_snapshots(stream, 10.0)]
        # First cut at 0+10: graph holds the first two edges; final
        # snapshot at t=12 holds all four.
        assert cuts[0] == (10.0, 2)
        assert cuts[-1] == (12.0, 4)

    def test_unsorted_input_rejected(self):
        stream = timestamped([(0, 1, 5.0), (1, 2, 1.0)])
        with pytest.raises(EvaluationError):
            list(time_snapshots(stream, 1.0))

    def test_empty_stream_yields_nothing(self):
        assert list(time_snapshots([], 1.0)) == []

    def test_interval_validation(self):
        with pytest.raises(ConfigurationError):
            list(time_snapshots([], 0.0))

    def test_long_gaps_emit_intermediate_cuts(self):
        stream = timestamped([(0, 1, 0.0), (1, 2, 35.0)])
        cuts = [t for t, _ in time_snapshots(stream, 10.0)]
        assert cuts == [10.0, 20.0, 30.0, 35.0]


class TestRateProfile:
    def test_bucketing(self):
        stream = timestamped([(0, 1, 0.5), (1, 2, 0.9), (2, 3, 2.1)])
        profile = rate_profile(stream, bucket=1.0)
        assert profile == {0.0: 2, 2.0: 1}

    def test_bucket_validation(self):
        with pytest.raises(ConfigurationError):
            rate_profile([], bucket=-1.0)


class TestTimestampStats:
    def test_span_and_order_tracking(self):
        stats = TimestampStats()
        for edge in timestamped([(0, 1, 1.0), (1, 2, 3.0), (2, 3, 2.0)]):
            stats.observe(edge)
        assert stats.count == 3
        assert stats.span() == 1.0  # first=1.0, last=2.0
        assert stats.out_of_order == 1
        assert not stats.is_sorted()

    def test_sorted_stream_reports_sorted(self):
        stats = TimestampStats()
        list(stats.observing(timestamped([(0, 1, 1.0), (1, 2, 2.0)])))
        assert stats.is_sorted()
        assert stats.span() == 1.0

    def test_empty(self):
        stats = TimestampStats()
        assert stats.span() == 0.0
        assert stats.is_sorted()
