"""Tests for the dataset registry."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graph import datasets
from repro.graph.adjacency import AdjacencyGraph


class TestRegistry:
    def test_names_non_empty_and_ordered(self):
        names = datasets.dataset_names()
        assert "synth-facebook" in names
        assert len(names) >= 6

    def test_spec_lookup(self):
        spec = datasets.spec("synth-grqc")
        assert spec.stands_in_for == "ca-GrQc"
        assert spec.vertices == 5242

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(DatasetError, match="synth-facebook"):
            datasets.spec("snap-road-network")
        with pytest.raises(DatasetError):
            datasets.load("nope")


class TestLoading:
    def test_load_is_cached(self):
        first = datasets.load("synth-grqc", seed=0)
        second = datasets.load("synth-grqc", seed=0)
        assert first is second

    def test_different_seeds_differ(self):
        assert datasets.load("synth-grqc", seed=0) != datasets.load(
            "synth-grqc", seed=1
        )

    def test_edge_count_matches_spec(self):
        spec = datasets.spec("synth-grqc")
        assert len(datasets.load("synth-grqc")) == spec.edges

    def test_load_graph(self):
        graph = datasets.load_graph("synth-grqc")
        assert isinstance(graph, AdjacencyGraph)
        assert graph.edge_count == datasets.spec("synth-grqc").edges


class TestStatistics:
    def test_statistics_fields(self):
        stats = datasets.statistics("synth-grqc")
        assert set(stats) == {
            "vertices",
            "edges",
            "mean_degree",
            "max_degree",
            "tail_exponent",
        }

    def test_profile_matches_snap_targets(self):
        # The stand-in must land near the published ca-GrQc profile:
        # 5242 vertices (non-isolated ones appear), 14496 edges,
        # mean degree ~5.5.
        stats = datasets.statistics("synth-grqc")
        assert stats["edges"] == 14496
        assert stats["vertices"] == pytest.approx(5242, rel=0.15)
        assert stats["mean_degree"] == pytest.approx(5.5, rel=0.25)

    def test_facebook_density(self):
        stats = datasets.statistics("synth-facebook")
        assert stats["mean_degree"] == pytest.approx(43.7, rel=0.10)

    def test_heavy_tail_on_social_standins(self):
        stats = datasets.statistics("synth-youtube")
        assert stats["max_degree"] > 50 * stats["mean_degree"]
