"""Tests for the adjacency-set graph."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownVertexError
from repro.graph import AdjacencyGraph


class TestEdges:
    def test_add_edge_is_undirected(self):
        g = AdjacencyGraph()
        assert g.add_edge(1, 2) is True
        assert g.has_edge(2, 1)
        assert g.edge_count == 1

    def test_duplicate_edge_collapses(self):
        g = AdjacencyGraph()
        g.add_edge(1, 2)
        assert g.add_edge(2, 1) is False
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            AdjacencyGraph().add_edge(3, 3)

    def test_negative_vertex_rejected(self):
        with pytest.raises(ConfigurationError):
            AdjacencyGraph().add_edge(-1, 2)
        with pytest.raises(ConfigurationError):
            AdjacencyGraph().add_vertex(-1)

    def test_remove_edge(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3)])
        assert g.remove_edge(1, 2) is True
        assert not g.has_edge(1, 2)
        assert g.edge_count == 1
        assert g.remove_edge(1, 2) is False

    def test_edges_iterates_each_once_canonical(self, toy_graph):
        edges = list(toy_graph.edges())
        assert len(edges) == toy_graph.edge_count
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_from_edges_ignores_extra_fields(self):
        g = AdjacencyGraph.from_edges([(1, 2, 0.5), (2, 3, 1.5)])
        assert g.edge_count == 2


class TestQueries:
    def test_neighbors_and_degree(self, toy_graph):
        assert toy_graph.neighbors(0) == {2, 3, 4}
        assert toy_graph.degree(0) == 3
        assert toy_graph.degree(2) == 2

    def test_unknown_vertex_raises(self, toy_graph):
        with pytest.raises(UnknownVertexError):
            toy_graph.neighbors(99)
        with pytest.raises(UnknownVertexError):
            toy_graph.degree(99)

    def test_degree_or_zero(self, toy_graph):
        assert toy_graph.degree_or_zero(99) == 0
        assert toy_graph.degree_or_zero(0) == 3

    def test_contains(self, toy_graph):
        assert 0 in toy_graph
        assert 99 not in toy_graph

    def test_average_and_max_degree(self, toy_graph):
        assert toy_graph.average_degree() == pytest.approx(12 / 5)
        assert toy_graph.max_degree() == 3

    def test_empty_graph_statistics(self):
        g = AdjacencyGraph()
        assert g.average_degree() == 0.0
        assert g.max_degree() == 0
        assert g.vertex_count == 0

    def test_degree_histogram(self, toy_graph):
        # Degrees: 0->3, 1->2, 2->2, 3->2, 4->3.
        assert toy_graph.degree_histogram() == {3: 2, 2: 3}

    def test_isolated_vertex_counts(self):
        g = AdjacencyGraph()
        g.add_vertex(5)
        assert g.vertex_count == 1
        assert g.degree(5) == 0


class TestDerived:
    def test_subgraph_keeps_induced_edges(self, toy_graph):
        sub = toy_graph.subgraph([0, 2, 4])
        assert sub.has_edge(0, 2)
        assert sub.has_edge(0, 4)
        assert not sub.has_edge(0, 3)
        assert sub.vertex_count == 3

    def test_subgraph_of_missing_vertices_is_empty(self, toy_graph):
        assert toy_graph.subgraph([100, 200]).vertex_count == 0

    def test_copy_is_deep(self, toy_graph):
        dup = toy_graph.copy()
        dup.add_edge(0, 1)
        assert not toy_graph.has_edge(0, 1)
        assert dup.edge_count == toy_graph.edge_count + 1

    def test_nominal_bytes_formula(self, toy_graph):
        assert toy_graph.nominal_bytes() == 16 * 6 + 8 * 5
