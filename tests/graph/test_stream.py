"""Tests for stream abstractions and transformations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph import (
    Edge,
    StreamStats,
    checkpoints,
    deduplicated,
    edge_key,
    from_pairs,
    prefix,
    shuffled,
    with_timestamps,
)


class TestEdge:
    def test_canonical_orders_endpoints(self):
        assert Edge(5, 2, 1.0).canonical() == Edge(2, 5, 1.0)
        assert Edge(2, 5, 1.0).canonical() == Edge(2, 5, 1.0)

    def test_default_timestamp(self):
        assert Edge(1, 2).timestamp == 0.0


class TestEdgeKey:
    def test_orientation_insensitive(self):
        assert edge_key(3, 7) == edge_key(7, 3)

    def test_injective_on_sample(self):
        keys = {edge_key(u, v) for u in range(50) for v in range(u + 1, 50)}
        assert len(keys) == 50 * 49 // 2

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ConfigurationError):
            edge_key(-1, 2)
        with pytest.raises(ConfigurationError):
            edge_key(0, 1 << 31)

    def test_accepts_boundary(self):
        limit = (1 << 31) - 1
        assert edge_key(limit, limit - 1) == edge_key(limit - 1, limit)


class TestTransformations:
    def test_from_pairs_timestamps_by_index(self):
        edges = list(from_pairs([(1, 2), (3, 4)]))
        assert edges == [Edge(1, 2, 0.0), Edge(3, 4, 1.0)]

    def test_with_timestamps_rewrites(self):
        edges = [Edge(1, 2, 99.0), Edge(3, 4, 98.0)]
        assert [e.timestamp for e in with_timestamps(edges)] == [0.0, 1.0]

    def test_prefix(self):
        edges = list(from_pairs([(0, 1)] * 10))
        assert len(list(prefix(edges, 4))) == 4
        assert len(list(prefix(edges, 100))) == 10
        with pytest.raises(ConfigurationError):
            list(prefix(edges, -1))

    def test_shuffled_preserves_multiset_and_retimestamps(self):
        edges = list(from_pairs([(0, 1), (1, 2), (2, 3), (3, 4)]))
        result = shuffled(edges, seed=1)
        assert sorted((e.u, e.v) for e in result) == sorted((e.u, e.v) for e in edges)
        assert [e.timestamp for e in result] == [0.0, 1.0, 2.0, 3.0]

    def test_shuffled_deterministic(self):
        edges = list(from_pairs([(i, i + 1) for i in range(50)]))
        assert shuffled(edges, seed=5) == shuffled(edges, seed=5)
        assert shuffled(edges, seed=5) != shuffled(edges, seed=6)

    def test_deduplicated_drops_rearrivals(self):
        edges = list(from_pairs([(1, 2), (2, 1), (1, 2), (3, 4)]))
        unique = list(deduplicated(edges, expected_edges=100))
        assert [(e.u, e.v) for e in unique] == [(1, 2), (3, 4)]

    def test_checkpoints_marks_intervals_and_end(self):
        edges = list(from_pairs([(0, i) for i in range(1, 8)]))
        marks = [(count, flag) for _, count, flag in checkpoints(edges, every=3)]
        assert marks == [
            (1, False), (2, False), (3, True),
            (4, False), (5, False), (6, True),
            (7, False), (7, True),
        ]

    def test_checkpoints_interval_validation(self):
        with pytest.raises(ConfigurationError):
            list(checkpoints([], every=0))


class TestStreamStats:
    def test_counts_records_and_distincts(self):
        stats = StreamStats()
        for edge in from_pairs([(i, i + 1) for i in range(2000)]):
            stats.observe(edge)
        assert stats.records == 2000
        assert stats.approximate_vertices() == pytest.approx(2001, rel=0.05)
        assert stats.approximate_edges() == pytest.approx(2000, rel=0.05)

    def test_duplicate_ratio(self):
        stats = StreamStats()
        for edge in from_pairs([(1, 2)] * 100 + [(i, i + 1) for i in range(900)]):
            stats.observe(edge)
        assert stats.duplicate_ratio() == pytest.approx(0.1, abs=0.03)

    def test_observing_passthrough(self):
        stats = StreamStats()
        edges = list(from_pairs([(0, 1), (1, 2)]))
        assert list(stats.observing(edges)) == edges
        assert stats.records == 2

    def test_timestamp_range(self):
        stats = StreamStats()
        stats.observe(Edge(0, 1, 5.0))
        stats.observe(Edge(1, 2, 9.0))
        assert stats.first_timestamp == 5.0
        assert stats.last_timestamp == 9.0

    def test_empty_stats(self):
        stats = StreamStats()
        assert stats.records == 0
        assert stats.duplicate_ratio() == 0.0
