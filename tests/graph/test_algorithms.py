"""Tests for the exact graph algorithms."""

from __future__ import annotations

import pytest

from repro.errors import UnknownVertexError
from repro.graph import AdjacencyGraph
from repro.graph.algorithms import (
    average_clustering,
    bfs_distances,
    connected_components,
    core_number,
    degeneracy_ordering,
    global_clustering,
    largest_component,
    local_clustering,
    triangle_count,
    triangles_through_vertex,
)
from repro.graph.generators import erdos_renyi, watts_strogatz


def triangle_graph():
    return AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])


def two_triangles_sharing_edge():
    # Triangles {0,1,2} and {1,2,3} share edge (1,2).
    return AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])


class TestComponents:
    def test_single_component(self, toy_graph):
        components = connected_components(toy_graph)
        assert len(components) == 1
        assert components[0] == {0, 1, 2, 3, 4}

    def test_multiple_components_sorted_by_size(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (10, 11), (20, 21), (21, 22), (22, 23)])
        components = connected_components(g)
        assert [len(c) for c in components] == [4, 3, 2]
        assert largest_component(g) == {20, 21, 22, 23}

    def test_isolated_vertices_are_singletons(self):
        g = AdjacencyGraph()
        g.add_vertex(5)
        g.add_edge(1, 2)
        assert sorted(len(c) for c in connected_components(g)) == [1, 2]

    def test_empty_graph(self):
        assert connected_components(AdjacencyGraph()) == []
        assert largest_component(AdjacencyGraph()) == set()


class TestBfs:
    def test_path_distances(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_vertices_absent(self):
        g = AdjacencyGraph.from_edges([(0, 1), (5, 6)])
        distances = bfs_distances(g, 0)
        assert 5 not in distances

    def test_unknown_source_raises(self, toy_graph):
        with pytest.raises(UnknownVertexError):
            bfs_distances(toy_graph, 99)


class TestTriangles:
    def test_single_triangle(self):
        assert triangle_count(triangle_graph()) == 1

    def test_shared_edge_triangles(self):
        assert triangle_count(two_triangles_sharing_edge()) == 2

    def test_triangle_free_graph(self):
        star = AdjacencyGraph.from_edges([(0, i) for i in range(1, 6)])
        assert triangle_count(star) == 0

    def test_toy_graph_by_hand(self, toy_graph):
        # Triangles: {0,3,4}, {0,1,4}? 0-1 not an edge. {0,2,?}: 2's
        # neighbors {0,1}, 0-1 missing.  {1,2,4}? 2-4 missing.
        # Edges: 02 12 03 04 14 34 -> only {0,3,4} closes.
        assert triangle_count(toy_graph) == 1

    def test_triangles_through_vertex(self):
        g = two_triangles_sharing_edge()
        assert triangles_through_vertex(g, 1) == 2
        assert triangles_through_vertex(g, 0) == 1
        assert triangles_through_vertex(g, 99) == 0

    def test_complete_graph_count(self):
        n = 7
        g = AdjacencyGraph.from_edges(
            [(u, v) for u in range(n) for v in range(u + 1, n)]
        )
        assert triangle_count(g) == n * (n - 1) * (n - 2) // 6


class TestClustering:
    def test_triangle_vertex_fully_clustered(self):
        assert local_clustering(triangle_graph(), 0) == 1.0

    def test_low_degree_convention(self):
        g = AdjacencyGraph.from_edges([(0, 1)])
        assert local_clustering(g, 0) == 0.0
        assert local_clustering(g, 99) == 0.0

    def test_average_and_global_on_complete_graph(self):
        g = AdjacencyGraph.from_edges(
            [(u, v) for u in range(5) for v in range(u + 1, 5)]
        )
        assert average_clustering(g) == 1.0
        assert global_clustering(g) == pytest.approx(1.0)

    def test_global_zero_without_triangles(self):
        star = AdjacencyGraph.from_edges([(0, i) for i in range(1, 6)])
        assert global_clustering(star) == 0.0

    def test_lattice_has_high_clustering_er_low(self):
        lattice = AdjacencyGraph.from_edges(watts_strogatz(200, 6, 0.0, seed=1))
        er = AdjacencyGraph.from_edges(erdos_renyi(200, 600, seed=1))
        assert average_clustering(lattice) > 3 * average_clustering(er)

    def test_empty_graph(self):
        assert average_clustering(AdjacencyGraph()) == 0.0
        assert global_clustering(AdjacencyGraph()) == 0.0


class TestDegeneracy:
    def test_tree_has_degeneracy_one(self):
        tree = AdjacencyGraph.from_edges([(0, 1), (0, 2), (1, 3), (1, 4)])
        ordering, degeneracy = degeneracy_ordering(tree)
        assert degeneracy == 1
        assert sorted(ordering) == [0, 1, 2, 3, 4]

    def test_complete_graph_degeneracy(self):
        n = 6
        g = AdjacencyGraph.from_edges(
            [(u, v) for u in range(n) for v in range(u + 1, n)]
        )
        _, degeneracy = degeneracy_ordering(g)
        assert degeneracy == n - 1

    def test_core_numbers_triangle_plus_tail(self):
        # Triangle {0,1,2} with a pendant 3-4 path off vertex 0.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3), (3, 4)])
        cores = core_number(g)
        assert cores[1] == cores[2] == 2
        assert cores[4] == 1
        assert cores[3] == 1
        assert cores[0] == 2

    def test_core_numbers_bounded_by_degeneracy(self, toy_graph):
        cores = core_number(toy_graph)
        _, degeneracy = degeneracy_ordering(toy_graph)
        assert max(cores.values()) == degeneracy
