"""Tests for SNAP-format edge-list I/O."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StreamFormatError
from repro.graph import (
    Edge,
    VertexRelabeler,
    iter_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.graph.io import parse_edge_line, scan_edge_list


class TestReading:
    def test_two_column_rows_timestamped_by_index(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header comment\n0\t1\n1\t2\n\n2\t3\n")
        edges = read_edge_list(path)
        assert edges == [Edge(0, 1, 0.0), Edge(1, 2, 1.0), Edge(2, 3, 2.0)]

    def test_three_column_rows_carry_timestamps(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 100.5\n1 2 200.5\n")
        edges = read_edge_list(path)
        assert edges == [Edge(0, 1, 100.5), Edge(1, 2, 200.5)]

    def test_percent_comments_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("% matrix-market style comment\n0 1\n")
        assert len(read_edge_list(path)) == 1

    def test_self_loops_dropped_by_default(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path) == [Edge(0, 1, 0.0)]
        assert len(read_edge_list(path, allow_self_loops=True)) == 2

    def test_malformed_field_count_reports_line(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n0 1 2 3\n")
        with pytest.raises(StreamFormatError, match="line 2"):
            read_edge_list(path)

    def test_non_integer_vertex_reports_line(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\n")
        with pytest.raises(StreamFormatError, match="VertexRelabeler"):
            read_edge_list(path)

    def test_negative_vertex_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("-1 2\n")
        with pytest.raises(StreamFormatError):
            read_edge_list(path)

    def test_bad_timestamp_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 yesterday\n")
        with pytest.raises(StreamFormatError, match="timestamp"):
            read_edge_list(path)

    def test_labelled_data_via_relabeler(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\nbob carol\nalice carol\n")
        relabeler = VertexRelabeler()
        edges = read_edge_list(path, relabeler=relabeler)
        assert [(e.u, e.v) for e in edges] == [(0, 1), (1, 2), (0, 2)]
        assert relabeler.decode(0) == "alice"

    def test_iter_is_lazy(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 2\n")
        iterator = iter_edge_list(path)
        assert next(iterator) == Edge(0, 1, 0.0)


#: Every malformed-line class the strict reader raises on, with the
#: machine-readable reason the lenient paths must attach.
MALFORMED_LINES = [
    ("0", "bad_arity"),
    ("0 1 2 3", "bad_arity"),
    ("alice bob", "non_integer_vertex"),
    ("1.5 2.5", "non_integer_vertex"),
    ("1_0 2", "non_integer_vertex"),  # int() would read 10
    ("+5 2", "non_integer_vertex"),  # int() would read 5
    ("-1 2", "negative_vertex"),
    ("0 -9", "negative_vertex"),
    ("0 1 yesterday", "bad_timestamp"),
    ("0 1 nan", "nonfinite_timestamp"),
    ("0 1 inf", "nonfinite_timestamp"),
    ("0 1 -inf", "nonfinite_timestamp"),
    ("1,2", "mixed_delimiter"),
    ("1;2;3", "mixed_delimiter"),
    ("1|2", "mixed_delimiter"),
    ("﻿0 1", "bad_encoding"),  # BOM from a shell pipeline
    ("0 1\x00", "bad_encoding"),  # NUL from a truncated binary write
    ("５ ６", "bad_encoding"),  # fullwidth digits (int() reads them)
]


class TestLenientParsing:
    """The on_error="skip" mode and the diagnostics generator."""

    @pytest.mark.parametrize("line,reason", MALFORMED_LINES)
    def test_parse_edge_line_tags_reason(self, line, reason):
        with pytest.raises(StreamFormatError) as excinfo:
            parse_edge_line(line, line_number=7)
        assert excinfo.value.reason == reason
        assert excinfo.value.line_number == 7

    @pytest.mark.parametrize("line,reason", MALFORMED_LINES)
    def test_skip_mode_drops_each_malformed_class(self, tmp_path, line, reason):
        path = tmp_path / "graph.txt"
        path.write_text(f"0 1\n{line}\n2 3\n")
        edges = read_edge_list(path, on_error="skip")
        assert [(e.u, e.v) for e in edges] == [(0, 1), (2, 3)]
        with pytest.raises(StreamFormatError):  # default stays strict
            read_edge_list(path)

    @pytest.mark.parametrize("line,reason", MALFORMED_LINES)
    def test_scan_yields_typed_diagnostics(self, tmp_path, line, reason):
        path = tmp_path / "graph.txt"
        path.write_text(f"0 1\n{line}\n2 3\n")
        diagnostics = list(scan_edge_list(path))
        assert len(diagnostics) == 3
        good, bad, tail = diagnostics
        assert good.edge == Edge(0, 1, 0.0) and good.error is None
        assert bad.edge is None
        assert bad.error.reason == reason
        assert bad.error.line_number == 2
        assert bad.raw == line
        assert tail.edge == Edge(2, 3, 1.0)  # index not burned by the bad line

    def test_skip_mode_preserves_index_timestamps(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\nbroken\n2 3\n4 5\n")
        edges = read_edge_list(path, on_error="skip")
        assert [e.timestamp for e in edges] == [0.0, 1.0, 2.0]

    def test_scan_skips_dropped_self_loops_silently(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 0\n1 2\n")
        diagnostics = list(scan_edge_list(path))
        assert len(diagnostics) == 1
        assert diagnostics[0].edge == Edge(1, 2, 0.0)

    def test_unknown_on_error_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        with pytest.raises(ConfigurationError):
            read_edge_list(path, on_error="ignore")

    def test_relabeler_makes_labels_wellformed(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\n")
        diagnostics = list(scan_edge_list(path, relabeler=VertexRelabeler()))
        assert diagnostics[0].edge == Edge(0, 1, 0.0)


class TestHostileTokens:
    """Python-int lenience and hostile bytes must not slip through."""

    def test_underscore_and_sign_are_not_vertex_ids(self):
        # int() happily parses both spellings; the contract does not.
        assert int("1_0") == 10 and int("+5") == 5
        for line in ("1_0 2", "+5 2"):
            with pytest.raises(StreamFormatError) as excinfo:
                parse_edge_line(line)
            assert excinfo.value.reason == "non_integer_vertex"

    def test_fullwidth_digits_tag_bad_encoding(self):
        assert int("５") == 5  # int() reads non-ASCII decimals
        with pytest.raises(StreamFormatError) as excinfo:
            parse_edge_line("５ ６")
        assert excinfo.value.reason == "bad_encoding"

    def test_nonfinite_timestamps_rejected(self):
        for token in ("nan", "inf", "-inf", "NaN", "Infinity"):
            with pytest.raises(StreamFormatError) as excinfo:
                parse_edge_line(f"0 1 {token}")
            assert excinfo.value.reason == "nonfinite_timestamp"

    def test_mixed_delimiters_only_flag_plausible_records(self):
        # A comma line that re-splits into a record is mixed_delimiter...
        with pytest.raises(StreamFormatError) as excinfo:
            parse_edge_line("3,4,100.5")
        assert excinfo.value.reason == "mixed_delimiter"
        # ...but one that re-splits into garbage stays bad_arity.
        with pytest.raises(StreamFormatError) as excinfo:
            parse_edge_line("a,b,c,d,e")
        assert excinfo.value.reason == "bad_arity"

    def test_relabeler_accepts_alien_delimiters_as_label_bytes(self):
        # Labelled data owns its characters: "a,b" is one opaque label.
        relabeler = VertexRelabeler()
        edge = parse_edge_line("a,b c", relabeler=relabeler)
        assert relabeler.decode(edge.u) == "a,b"

    def test_relabeler_still_rejects_control_characters(self):
        with pytest.raises(StreamFormatError) as excinfo:
            parse_edge_line("evil\x00label bob", relabeler=VertexRelabeler())
        assert excinfo.value.reason == "bad_encoding"

    def test_non_integer_message_still_points_at_relabeler(self):
        with pytest.raises(StreamFormatError, match="VertexRelabeler"):
            parse_edge_line("alice bob")


class TestWriting:
    def test_roundtrip_with_timestamps(self, tmp_path):
        path = tmp_path / "out.txt"
        edges = [Edge(0, 1, 10.0), Edge(1, 2, 20.0)]
        assert write_edge_list(path, edges) == 2
        assert read_edge_list(path) == edges

    def test_roundtrip_without_timestamps(self, tmp_path):
        path = tmp_path / "out.txt"
        edges = [Edge(5, 6, 99.0)]
        write_edge_list(path, edges, include_timestamps=False)
        assert read_edge_list(path) == [Edge(5, 6, 0.0)]

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "out.txt"
        write_edge_list(path, [Edge(0, 1)], header="my graph\ntwo lines")
        text = path.read_text()
        assert text.startswith("# my graph\n# two lines\n")
        assert len(read_edge_list(path)) == 1


class TestRelabeler:
    def test_first_appearance_order(self):
        r = VertexRelabeler()
        assert r.encode("z") == 0
        assert r.encode("a") == 1
        assert r.encode("z") == 0
        assert len(r) == 2

    def test_decode_roundtrip(self):
        r = VertexRelabeler()
        for label in ("x", "y", "z"):
            assert r.decode(r.encode(label)) == label

    def test_contains(self):
        r = VertexRelabeler()
        r.encode("present")
        assert "present" in r
        assert "absent" not in r

    def test_non_string_labels_coerced(self):
        r = VertexRelabeler()
        assert r.encode(42) == r.encode("42")
