"""Tests for the directed adjacency graph."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownVertexError
from repro.graph.digraph import DirectedGraph

# Small digraph used throughout:
#   0 -> 2, 1 -> 2, 2 -> 3, 0 -> 3, 3 -> 0
ARCS = [(0, 2), (1, 2), (2, 3), (0, 3), (3, 0)]


@pytest.fixture
def digraph():
    return DirectedGraph.from_arcs(ARCS)


class TestArcs:
    def test_direction_respected(self, digraph):
        assert digraph.has_arc(0, 2)
        assert not digraph.has_arc(2, 0)

    def test_duplicate_arc_collapses(self, digraph):
        assert digraph.add_arc(0, 2) is False
        assert digraph.arc_count == len(ARCS)

    def test_antiparallel_arcs_are_distinct(self, digraph):
        assert digraph.has_arc(0, 3) and digraph.has_arc(3, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            DirectedGraph().add_arc(1, 1)

    def test_negative_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            DirectedGraph().add_arc(-1, 2)

    def test_arcs_iteration(self, digraph):
        assert sorted(digraph.arcs()) == sorted(ARCS)


class TestNeighborhoods:
    def test_successors_and_predecessors(self, digraph):
        assert digraph.successors(0) == {2, 3}
        assert digraph.predecessors(2) == {0, 1}
        assert digraph.predecessors(0) == {3}

    def test_degrees(self, digraph):
        assert digraph.out_degree(0) == 2
        assert digraph.in_degree(0) == 1
        assert digraph.out_degree(99) == 0
        assert digraph.in_degree(99) == 0

    def test_direction_dispatch(self, digraph):
        assert digraph.neighborhood(2, "out") == {3}
        assert digraph.neighborhood(2, "in") == {0, 1}
        assert digraph.degree(2, "out") == 1
        assert digraph.degree(2, "in") == 2
        with pytest.raises(ConfigurationError):
            digraph.neighborhood(2, "sideways")
        with pytest.raises(ConfigurationError):
            digraph.degree(2, "both")

    def test_unknown_vertex_raises(self, digraph):
        with pytest.raises(UnknownVertexError):
            digraph.successors(99)
        with pytest.raises(UnknownVertexError):
            digraph.predecessors(99)

    def test_counts(self, digraph):
        assert digraph.vertex_count == 4
        assert digraph.arc_count == 5


class TestConversions:
    def test_as_undirected_collapses_antiparallel(self, digraph):
        undirected = digraph.as_undirected()
        # (0,3) and (3,0) collapse into one edge.
        assert undirected.edge_count == 4
        assert undirected.has_edge(0, 3)

    def test_nominal_bytes_counts_both_directions(self, digraph):
        assert digraph.nominal_bytes() == 16 * 5 + 16 * 4
