"""E2 — space consumption (the paper's space table analogue).

For each method at each sketch size: total nominal bytes, bytes per
vertex, and the ratio to the exact adjacency snapshot.  The measured
(interpreter) bytes are reported alongside for honesty; the paper's cost
model corresponds to the nominal column.

Reading the shape: the sketch's bytes/vertex is a *constant* chosen up
front; exact adjacency's grows with the mean degree.  The sketch wins
whenever mean degree exceeds ~2k (witnesses on) and unconditionally
bounds the worst-case per-vertex cost, which adjacency cannot.
"""

from __future__ import annotations

from _common import emit, oracle_for, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig, memory_report
from repro.eval.reporting import format_table

DATASET = "synth-facebook"  # the dense stand-in: mean degree ~44


def build_rows():
    rows = []
    exact_report = memory_report(oracle_for(DATASET))
    rows.append(
        [
            "exact adjacency",
            "-",
            exact_report.vertices,
            exact_report.nominal_bytes,
            exact_report.nominal_bytes / exact_report.vertices,
            1.0,
            exact_report.measured_bytes,
        ]
    )
    for k in (32, 64, 128, 256):
        for witnesses in (False, True):
            config = SketchConfig(k=k, seed=1, track_witnesses=witnesses)
            predictor = MinHashLinkPredictor(config)
            predictor.process(stream_of(DATASET))
            report = memory_report(predictor)
            rows.append(
                [
                    f"minhash k={k}" + (" +wit" if witnesses else ""),
                    k,
                    report.vertices,
                    report.nominal_bytes,
                    report.nominal_bytes_per_vertex,
                    report.nominal_bytes / exact_report.nominal_bytes,
                    report.measured_bytes,
                ]
            )
    return rows


def test_e2_space_consumption(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        [
            "method",
            "k",
            "vertices",
            "nominal B",
            "B/vertex",
            "vs exact",
            "measured B",
        ],
        rows,
        title=f"E2: space on {DATASET} (mean degree ~44)",
        precision=2,
    )
    emit("e2_space", table)
    # Shape assertions.
    by_method = {row[0]: row for row in rows}
    # (1) Sketch bytes/vertex is exactly the configured constant.
    assert by_method["minhash k=64 +wit"][4] == 64 * 16 + 8
    # (2) Witnesses double the slot cost (plus the same degree word).
    assert by_method["minhash k=64 +wit"][3] < 2 * by_method["minhash k=64"][3]
    # (3) A value-only k=32 sketch undercuts exact adjacency on this
    #     dense graph (264 B/vertex vs ~360).
    assert by_method["minhash k=32"][4] < by_method["exact adjacency"][4]
