"""E17 — the serving tier under live load: QPS, p99, zero torn reads.

The gate for ``repro.serve.server``: a real :class:`SketchServer` is
started over a growing edge feed (background ingest + periodic
generation hot-swaps) and driven closed-loop by
:mod:`repro.serve.loadgen` while the feed keeps growing.  The run
passes only if, with ingest and ≥3 snapshot hot-swaps happening
*during* the measurement window:

* **zero failed reads** — every request returns 200 with a well-formed
  body of the right length;
* **zero torn reads** — no generation number is ever observed with two
  pack fingerprints (the hot-swap is a single reference assignment;
  this is the empirical check of that claim);
* **≥ 3 generations** are actually served within the window (the swaps
  happened under load, not before or after it);
* **sustained QPS** and **p99 latency** clear the floor/ceiling for
  the scale;
* **bit-identity** — sampled responses are re-scored *offline*: each
  sampled generation's packed arrays are rebuilt into an independent
  predictor (:meth:`PackedSketches.to_predictor`), wrapped in a fresh
  :class:`QueryEngine`, and ``score_many`` must reproduce the served
  float64 scores exactly;
* the final SIGTERM-style drain completes cleanly and leaves a
  checkpoint.

Usage::

    python benchmarks/bench_e17_serving.py --smoke --json BENCH_e17_serving.json

``--smoke`` is the CI scale (a few seconds of load); the default scale
runs longer and holds higher bars.  Exit code 0 iff every gate holds.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _common import emit, emit_json, bench_arg_parser
from repro.serve.engine import QueryEngine
from repro.serve.loadgen import run_load
from repro.serve.server import SketchServer
from repro.stream.checkpoint import CheckpointManager
from repro.stream.runner import StreamRunner
from repro.stream.sources import FileEdgeSource

EXPERIMENT = "e17_serving"


class _Gates:
    """Scale-dependent pass bars."""

    def __init__(self, smoke: bool) -> None:
        self.smoke = smoke
        # Load shape.
        self.duration = 4.0 if smoke else 12.0
        self.workers = 4 if smoke else 8
        self.batch_pairs = 16
        self.vertices = 200 if smoke else 1000
        self.initial_edges = 2000 if smoke else 20000
        self.append_edges = 400 if smoke else 2000
        self.append_every = 0.25
        self.refresh_every = 0.4 if smoke else 0.8
        # Bars.  QPS/latency are deliberately conservative: shared CI
        # runners are noisy, and the *correctness* gates (failures,
        # torn reads, swaps, bit-identity) are the point of E17.  Local
        # hardware sustains ~1.2k QPS at p99 < 10 ms on this shape.
        self.min_qps = 100.0 if smoke else 300.0
        self.max_p99_seconds = 0.25 if smoke else 0.10
        self.min_generations = 3
        self.min_samples = 8


def _appender(feed: Path, gates: _Gates, stop: threading.Event, seed: int) -> None:
    """Keep the feed growing so ingest (and hence hot-swaps) continue
    throughout the measurement window."""
    rng = np.random.default_rng(seed)
    while not stop.wait(gates.append_every):
        block = rng.integers(0, gates.vertices, size=(gates.append_edges, 2))
        with feed.open("a", encoding="utf-8") as handle:
            for u, v in block.tolist():
                handle.write(f"{u} {v}\n")


def _verify_bit_identity(report, history) -> tuple:
    """Re-score every sampled response offline; returns (checked, errors).

    For each sampled generation: find the retained Generation, rebuild
    an independent predictor from its packed arrays, and demand exact
    float64 equality with what the server returned over HTTP.
    """
    retained = {generation.number: generation for generation in history}
    engines = {}
    checked, errors = 0, []
    for sample in report.samples:
        generation = retained.get(sample.generation)
        if generation is None:
            continue  # swapped out of the bounded history; fine
        if generation.fingerprint != sample.fingerprint:
            errors.append(
                f"generation {sample.generation}: served fingerprint "
                f"{sample.fingerprint[:12]} != retained {generation.fingerprint[:12]}"
            )
            continue
        engine = engines.get(sample.generation)
        if engine is None:
            # The independent path: packed arrays -> fresh predictor ->
            # fresh pack -> fresh engine.  Shares no state with the one
            # that answered over HTTP.
            engine = QueryEngine(generation.engine.store.to_predictor())
            if engine.store.fingerprint() != generation.fingerprint:
                errors.append(
                    f"generation {sample.generation}: to_predictor round-trip "
                    "changed the fingerprint"
                )
                continue
            engines[sample.generation] = engine
        offline = engine.score_many(sample.pairs, sample.measure)
        if not np.array_equal(offline, sample.scores):
            worst = int(np.argmax(offline != sample.scores))
            errors.append(
                f"generation {sample.generation}: served score "
                f"{sample.scores[worst]!r} != offline {offline[worst]!r} "
                f"for pair {sample.pairs[worst].tolist()}"
            )
            continue
        checked += 1
    return checked, errors


def main(argv=None) -> int:
    parser = bench_arg_parser("E17: serving-tier QPS/p99/torn-read gate")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args(argv)
    gates = _Gates(arguments.smoke)
    rng = np.random.default_rng(arguments.seed)

    workdir = Path(tempfile.mkdtemp(prefix="bench_e17_"))
    feed = workdir / "feed.txt"
    with feed.open("w", encoding="utf-8") as handle:
        for u, v in rng.integers(0, gates.vertices, size=(gates.initial_edges, 2)).tolist():
            handle.write(f"{u} {v}\n")

    from repro.core.config import SketchConfig

    runner = StreamRunner(
        FileEdgeSource(feed),
        config=SketchConfig(k=32, seed=arguments.seed, track_witnesses=True),
        checkpoint_manager=CheckpointManager(workdir / "checkpoints"),
        checkpoint_every=50_000,  # the drain writes the one that matters
        batch_size=1024,
    )
    server = SketchServer(
        runner=runner,
        port=0,
        refresh_every=gates.refresh_every,
        ingest_chunk=2048,
        idle_wait=0.02,
        keep_history=64,
        drain_timeout=10.0,
    )
    server_thread = threading.Thread(
        target=lambda: server.run(install_signals=False), daemon=True
    )
    server_thread.start()
    if not server.wait_ready(30):
        print("FAIL  server never became ready", file=sys.stderr)
        return 1

    stop_appending = threading.Event()
    appender = threading.Thread(
        target=_appender, args=(feed, gates, stop_appending, arguments.seed + 1), daemon=True
    )
    appender.start()
    pool = rng.integers(0, gates.vertices, size=(4096, 2))
    report = run_load(
        "127.0.0.1",
        server.port,
        pool,
        measure="jaccard",
        workers=gates.workers,
        duration=gates.duration,
        batch_pairs=gates.batch_pairs,
        record_samples=max(2, gates.min_samples // gates.workers),
        seed=arguments.seed,
    )
    stop_appending.set()
    appender.join()

    server.request_shutdown()
    drained = server.wait_finished(30)
    server_thread.join(timeout=5)
    final_checkpoints = sorted((workdir / "checkpoints").glob("checkpoint-*.npz"))

    checked, identity_errors = _verify_bit_identity(report, server.history)

    summary = report.summary()
    summary["identity_samples_checked"] = checked
    summary["drained_cleanly"] = bool(drained)
    summary["final_checkpoints"] = len(final_checkpoints)
    p99 = report.latency_quantile(0.99)

    checks = [
        ("zero failed reads", report.failures == 0),
        ("zero torn reads across hot-swaps", report.torn_reads == 0),
        (
            f">= {gates.min_generations} generations served under load "
            f"(saw {len(report.generations)})",
            len(report.generations) >= gates.min_generations,
        ),
        (
            f"sustained QPS >= {gates.min_qps:.0f} (saw {report.qps:.0f})",
            report.qps >= gates.min_qps,
        ),
        (
            f"p99 <= {gates.max_p99_seconds * 1e3:.0f} ms "
            f"(saw {p99 * 1e3:.2f} ms)",
            p99 <= gates.max_p99_seconds,
        ),
        (
            f"offline bit-identity on >= {gates.min_samples} sampled responses "
            f"(checked {checked}, {len(identity_errors)} mismatches)",
            checked >= gates.min_samples and not identity_errors,
        ),
        ("graceful drain completed", drained),
        ("drain left a final checkpoint", len(final_checkpoints) > 0),
    ]

    lines = [
        f"scale={'smoke' if gates.smoke else 'full'}  workers={gates.workers}  "
        f"duration={gates.duration:.0f}s  refresh_every={gates.refresh_every}s",
        f"requests={report.requests}  qps={report.qps:.0f}  "
        f"pairs/s={report.pairs_per_second:.0f}",
        f"latency p50={report.latency_quantile(0.5) * 1e3:.2f}ms  "
        f"p95={report.latency_quantile(0.95) * 1e3:.2f}ms  p99={p99 * 1e3:.2f}ms",
        f"generations={sorted(report.generations)}  torn={report.torn_reads}  "
        f"failures={report.failures}",
        f"bit-identity: {checked} sampled responses re-scored offline, "
        f"{len(identity_errors)} mismatches",
    ]
    for error in identity_errors[:5]:
        lines.append(f"  identity mismatch: {error}")
    for error in report.errors[:5]:
        lines.append(f"  request error: {error}")
    failed = [label for label, passed in checks if not passed]
    for label, passed in checks:
        lines.append(f"{'PASS' if passed else 'FAIL'}  {label}")
    emit(EXPERIMENT, "\n".join(lines))
    emit_json(EXPERIMENT, summary, arguments.json or None)
    if failed:
        print(f"E17 FAILED: {len(failed)} gate(s): {'; '.join(failed)}", file=sys.stderr)
        return 1
    print("E17 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
