"""Shared machinery for the experiment benchmarks (E1–E10).

Every benchmark prints its paper-style table/series to stdout *and*
writes it under ``benchmarks/results/<experiment>.txt``, so
``pytest benchmarks/ --benchmark-only`` leaves a diffable record that
EXPERIMENTS.md indexes.

Benchmarks run at a CI-friendly scale by default; set
``REPRO_BENCH_SCALE=full`` for the paper-scale runs (the same code, a
bigger grid — figures in EXPERIMENTS.md note which scale produced them).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.eval.candidates import sample_two_hop_pairs
from repro.exact import ExactOracle
from repro.graph import datasets
from repro.graph.stream import Edge

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: "quick" (default) or "full" — experiment grids key off this.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it to results/<experiment>.txt."""
    banner = f"\n{'=' * 72}\n[{experiment}]\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(
    experiment: str,
    record: Dict[str, object],
    path: Optional[Union[str, Path]] = None,
) -> Path:
    """Persist a machine-readable result record; returns its path.

    The human tables in ``results/<experiment>.txt`` are unparseable by
    trend tooling, so every benchmark also writes a
    ``results/BENCH_<experiment>.json`` record (or ``path``, the
    standalone runners' ``--json`` flag) of the shape::

        {"experiment": ..., "scale": ..., "unix_time": ...,
         "python": ..., "results": {...}}

    One record per file, overwritten per run — the perf *trajectory*
    lives in version control / CI artifacts, not in an append log.
    """
    target = Path(path) if path else RESULTS_DIR / f"BENCH_{experiment}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": experiment,
        "scale": SCALE,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "results": record,
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def bench_arg_parser(description: str) -> argparse.ArgumentParser:
    """Shared CLI for the standalone (non-pytest) benchmark runners:
    ``--smoke`` (CI scale), ``--json PATH`` (machine-readable record)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke", action="store_true", help="CI scale: fewer records, same checks"
    )
    parser.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the BENCH_*.json result record here "
        "(default: benchmarks/results/BENCH_<experiment>.json)",
    )
    return parser


_ORACLES: Dict[Tuple[str, int], ExactOracle] = {}


def oracle_for(dataset: str, seed: int = 0) -> ExactOracle:
    """Exact oracle over a registry dataset, cached per process (the
    benchmarks share ground truth instead of re-ingesting)."""
    key = (dataset, seed)
    oracle = _ORACLES.get(key)
    if oracle is None:
        oracle = ExactOracle()
        oracle.process(datasets.load(dataset, seed))
        _ORACLES[key] = oracle
    return oracle


def query_pairs(dataset: str, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """Two-hop query pairs over a registry dataset's final graph."""
    return sample_two_hop_pairs(oracle_for(dataset).graph, count, seed=seed)


def stream_of(dataset: str, seed: int = 0) -> Sequence[Edge]:
    """The dataset's edge stream (registry-cached)."""
    return datasets.load(dataset, seed)


def k_grid() -> List[int]:
    """Sketch sizes for the accuracy sweeps."""
    if SCALE == "full":
        return [16, 32, 64, 128, 256, 512]
    return [16, 64, 256]


def accuracy_datasets() -> List[str]:
    """Datasets for the accuracy experiments."""
    if SCALE == "full":
        return ["synth-grqc", "synth-facebook", "synth-condmat", "synth-wiki-vote"]
    return ["synth-grqc"]
