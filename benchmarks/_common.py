"""Shared machinery for the experiment benchmarks (E1–E10).

Every benchmark prints its paper-style table/series to stdout *and*
writes it under ``benchmarks/results/<experiment>.txt``, so
``pytest benchmarks/ --benchmark-only`` leaves a diffable record that
EXPERIMENTS.md indexes.

Benchmarks run at a CI-friendly scale by default; set
``REPRO_BENCH_SCALE=full`` for the paper-scale runs (the same code, a
bigger grid — figures in EXPERIMENTS.md note which scale produced them).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.eval.candidates import sample_two_hop_pairs
from repro.exact import ExactOracle
from repro.graph import datasets
from repro.graph.stream import Edge

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: "quick" (default) or "full" — experiment grids key off this.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it to results/<experiment>.txt."""
    banner = f"\n{'=' * 72}\n[{experiment}]\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n", encoding="utf-8")


_ORACLES: Dict[Tuple[str, int], ExactOracle] = {}


def oracle_for(dataset: str, seed: int = 0) -> ExactOracle:
    """Exact oracle over a registry dataset, cached per process (the
    benchmarks share ground truth instead of re-ingesting)."""
    key = (dataset, seed)
    oracle = _ORACLES.get(key)
    if oracle is None:
        oracle = ExactOracle()
        oracle.process(datasets.load(dataset, seed))
        _ORACLES[key] = oracle
    return oracle


def query_pairs(dataset: str, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """Two-hop query pairs over a registry dataset's final graph."""
    return sample_two_hop_pairs(oracle_for(dataset).graph, count, seed=seed)


def stream_of(dataset: str, seed: int = 0) -> Sequence[Edge]:
    """The dataset's edge stream (registry-cached)."""
    return datasets.load(dataset, seed)


def k_grid() -> List[int]:
    """Sketch sizes for the accuracy sweeps."""
    if SCALE == "full":
        return [16, 32, 64, 128, 256, 512]
    return [16, 64, 256]


def accuracy_datasets() -> List[str]:
    """Datasets for the accuracy experiments."""
    if SCALE == "full":
        return ["synth-grqc", "synth-facebook", "synth-condmat", "synth-wiki-vote"]
    return ["synth-grqc"]
