"""E4 — update throughput (the paper's edges/second figure).

Measures single-pass ingestion rate: the MinHash predictor at several
sketch sizes, the biased predictor, the sampling baselines, and the
exact snapshot.  pytest-benchmark provides the timing; the table reports
derived edges/second.

Expected shape (asserted): sketch update cost is O(k) — throughput
drops roughly linearly as k doubles — and stays within a small constant
factor of the exact method's (which does O(1) set inserts but pays
unbounded memory).  Absolute numbers are pure-Python figures; the paper
used a compiled testbed (see DESIGN.md substitution table).
"""

from __future__ import annotations

import pytest

from _common import SCALE, emit
from repro.core import BiasedMinHashLinkPredictor, MinHashLinkPredictor, SketchConfig
from repro.eval.reporting import format_table
from repro.exact import EdgeReservoirBaseline, ExactOracle, NeighborReservoirBaseline
from repro.graph.generators import barabasi_albert

EDGES = 60_000 if SCALE == "full" else 20_000
_STREAM = barabasi_albert(n=EDGES // 4, m=4, seed=9)[:EDGES]

_RESULTS = {}


def _ingest(factory):
    predictor = factory()
    for edge in _STREAM:
        predictor.update(edge.u, edge.v)
    return predictor


METHODS = {
    "minhash k=32": lambda: MinHashLinkPredictor(SketchConfig(k=32, seed=1)),
    "minhash k=128": lambda: MinHashLinkPredictor(SketchConfig(k=128, seed=1)),
    "minhash k=512": lambda: MinHashLinkPredictor(SketchConfig(k=512, seed=1)),
    "biased k=128": lambda: BiasedMinHashLinkPredictor(SketchConfig(k=128, seed=1)),
    "neighbor reservoir": lambda: NeighborReservoirBaseline(256, seed=1),
    "edge reservoir": lambda: EdgeReservoirBaseline(EDGES // 4, seed=1),
    "exact snapshot": lambda: ExactOracle(),
}


@pytest.mark.parametrize("method", list(METHODS))
def test_e4_ingest_throughput(benchmark, method):
    benchmark.pedantic(_ingest, args=(METHODS[method],), rounds=1, iterations=1)
    _RESULTS[method] = EDGES / benchmark.stats.stats.mean


def test_e4_report_and_shape(benchmark):
    """Runs after the parametrized timings; prints the derived table.

    (Takes the benchmark fixture so --benchmark-only does not skip it;
    the timed workload is the table construction itself.)
    """
    assert len(_RESULTS) == len(METHODS), "timing cases must run first"

    def build_rows():
        return [
            [method, int(rate), f"{rate / _RESULTS['exact snapshot']:.2f}x"]
            for method, rate in _RESULTS.items()
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit(
        "e4_throughput",
        format_table(
            ["method", "edges/s", "vs exact"],
            rows,
            title=f"E4: ingestion throughput ({EDGES} BA stream edges, pure Python)",
        ),
    )
    # Shape: O(k) updates — k=512 must be slower than k=32.  The gap to
    # the exact method is a pure language artifact: a CPython set-insert
    # is one C call, a sketch update is a handful of numpy array ops
    # whose fixed overhead dominates at small k (the paper's compiled
    # implementation pays neither).  Assert only that the constant
    # factor stays within two orders of magnitude and that throughput
    # is not collapsing with k faster than linearly.
    assert _RESULTS["minhash k=512"] < _RESULTS["minhash k=32"]
    assert _RESULTS["minhash k=32"] > _RESULTS["exact snapshot"] / 100.0
    assert _RESULTS["minhash k=512"] > _RESULTS["minhash k=32"] / 16.0
