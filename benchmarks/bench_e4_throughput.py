"""E4 — update throughput (the paper's edges/second figure).

Measures single-pass ingestion rate: the MinHash predictor at several
sketch sizes, the biased predictor, the sampling baselines, and the
exact snapshot.  pytest-benchmark provides the timing; the table reports
derived edges/second.

Expected shape (asserted): sketch update cost is O(k) — throughput
drops roughly linearly as k doubles — and stays within a small constant
factor of the exact method's (which does O(1) set inserts but pays
unbounded memory).  Absolute numbers are pure-Python figures; the paper
used a compiled testbed (see DESIGN.md substitution table).

Also runnable without pytest for the CI ingest-metrics smoke::

    PYTHONPATH=src python benchmarks/bench_e4_throughput.py --smoke \
        --json results.json --metrics-out metrics.jsonl

The standalone runner drives the full ``StreamRunner`` ingest path
twice — registry enabled vs. explicitly disabled — and gates on the
observability acceptance bar: instrumented throughput within 5% of
uninstrumented.
"""

from __future__ import annotations

import sys
import time

import pytest

from _common import SCALE, bench_arg_parser, emit, emit_json
from repro.core import BiasedMinHashLinkPredictor, MinHashLinkPredictor, SketchConfig
from repro.eval.reporting import format_table
from repro.exact import EdgeReservoirBaseline, ExactOracle, NeighborReservoirBaseline
from repro.graph.generators import barabasi_albert

#: Acceptance bar: metrics may cost at most this fraction of throughput.
OVERHEAD_BAR = 0.05

EDGES = 60_000 if SCALE == "full" else 20_000
_STREAM = barabasi_albert(n=EDGES // 4, m=4, seed=9)[:EDGES]

_RESULTS = {}


def _ingest(factory):
    predictor = factory()
    for edge in _STREAM:
        predictor.update(edge.u, edge.v)
    return predictor


METHODS = {
    "minhash k=32": lambda: MinHashLinkPredictor(SketchConfig(k=32, seed=1)),
    "minhash k=128": lambda: MinHashLinkPredictor(SketchConfig(k=128, seed=1)),
    "minhash k=512": lambda: MinHashLinkPredictor(SketchConfig(k=512, seed=1)),
    "biased k=128": lambda: BiasedMinHashLinkPredictor(SketchConfig(k=128, seed=1)),
    "neighbor reservoir": lambda: NeighborReservoirBaseline(256, seed=1),
    "edge reservoir": lambda: EdgeReservoirBaseline(EDGES // 4, seed=1),
    "exact snapshot": lambda: ExactOracle(),
}


@pytest.mark.parametrize("method", list(METHODS))
def test_e4_ingest_throughput(benchmark, method):
    benchmark.pedantic(_ingest, args=(METHODS[method],), rounds=1, iterations=1)
    _RESULTS[method] = EDGES / benchmark.stats.stats.mean


def test_e4_report_and_shape(benchmark):
    """Runs after the parametrized timings; prints the derived table.

    (Takes the benchmark fixture so --benchmark-only does not skip it;
    the timed workload is the table construction itself.)
    """
    assert len(_RESULTS) == len(METHODS), "timing cases must run first"

    def build_rows():
        return [
            [method, int(rate), f"{rate / _RESULTS['exact snapshot']:.2f}x"]
            for method, rate in _RESULTS.items()
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit(
        "e4_throughput",
        format_table(
            ["method", "edges/s", "vs exact"],
            rows,
            title=f"E4: ingestion throughput ({EDGES} BA stream edges, pure Python)",
        ),
    )
    emit_json(
        "e4_throughput",
        {
            "edges": EDGES,
            "edges_per_second": {m: rate for m, rate in _RESULTS.items()},
        },
    )
    # Shape: O(k) updates — k=512 must be slower than k=32.  The gap to
    # the exact method is a pure language artifact: a CPython set-insert
    # is one C call, a sketch update is a handful of numpy array ops
    # whose fixed overhead dominates at small k (the paper's compiled
    # implementation pays neither).  Assert only that the constant
    # factor stays within two orders of magnitude and that throughput
    # is not collapsing with k faster than linearly.
    assert _RESULTS["minhash k=512"] < _RESULTS["minhash k=32"]
    assert _RESULTS["minhash k=32"] > _RESULTS["exact snapshot"] / 100.0
    assert _RESULTS["minhash k=512"] > _RESULTS["minhash k=32"] / 16.0


# ----------------------------------------------------------------------
# Standalone runner: the observability overhead gate (no pytest)
# ----------------------------------------------------------------------


def _runner_ingest(edges, registry, k=64):
    """Full StreamRunner ingest of ``edges``; returns (seconds, runner)."""
    from repro.obs import PeriodicReporter  # noqa: F401  (import parity)
    from repro.stream import IteratorEdgeSource, StreamRunner

    runner = StreamRunner(
        IteratorEdgeSource([(e.u, e.v) for e in edges], name="bench-e4"),
        config=SketchConfig(k=k, seed=1),
        metrics=registry,
    )
    started = time.perf_counter()
    runner.run()
    return time.perf_counter() - started, runner


def main(argv=None):
    """Compare instrumented vs. uninstrumented StreamRunner ingest.

    Gates on ``OVERHEAD_BAR``: the enabled registry may slow ingest by
    at most 5% relative to ``MetricsRegistry(enabled=False)``.  Best of
    three rounds per arm smooths scheduler noise.  ``--metrics-out``
    additionally dumps the instrumented run's final snapshot (the CI
    artifact).
    """
    from repro.obs import MetricsRegistry, snapshot

    parser = bench_arg_parser("E4 ingest throughput + metrics overhead gate")
    parser.add_argument(
        "--metrics-out",
        default="",
        metavar="FILE",
        help="write the instrumented run's metrics snapshot (JSON) here",
    )
    args = parser.parse_args(argv)

    edges = _STREAM[:10_000] if args.smoke else _STREAM
    # Interleaved rounds + best-of-N per arm: single runs in a shared CI
    # environment jitter by ±8%, far above the signal being gated on
    # (one bound Counter.inc against a ~30µs sketch update).
    rounds = 5
    disabled_best = enabled_best = float("inf")
    final_registry = None
    for _ in range(rounds):
        seconds, _runner = _runner_ingest(edges, MetricsRegistry(enabled=False))
        disabled_best = min(disabled_best, seconds)
        registry = MetricsRegistry()
        seconds, _runner = _runner_ingest(edges, registry)
        enabled_best = min(enabled_best, seconds)
        final_registry = registry

    overhead = enabled_best / disabled_best - 1.0
    record = {
        "edges": len(edges),
        "rounds": rounds,
        "uninstrumented_edges_per_second": len(edges) / disabled_best,
        "instrumented_edges_per_second": len(edges) / enabled_best,
        "overhead_fraction": overhead,
        "overhead_bar": OVERHEAD_BAR,
    }
    json_path = emit_json("e4_ingest_overhead", record, path=args.json or None)
    print(
        f"e4 smoke={args.smoke} edges={len(edges)} "
        f"uninstrumented={len(edges) / disabled_best:,.0f}/s "
        f"instrumented={len(edges) / enabled_best:,.0f}/s "
        f"overhead={overhead:+.1%} (bar {OVERHEAD_BAR:.0%}) -> {json_path}"
    )
    if args.metrics_out:
        import json as _json

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            _json.dump(snapshot(final_registry), handle, indent=2)
            handle.write("\n")
        print(f"metrics snapshot -> {args.metrics_out}")
    if overhead > OVERHEAD_BAR:
        print(
            f"FAIL: metrics overhead {overhead:.1%} exceeds {OVERHEAD_BAR:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
