"""E4b — block-ingest kernel: batched hashing + scatter-min updates.

The companion gate to E4: the same Barabási–Albert edge stream pushed
through three ingestion arms —

* **scalar** — ``predictor.update(u, v)`` per edge (the E4 baseline);
* **block** — ``predictor.update_block`` in spans of ``--batch-size``
  edges (the vectorized kernel);
* **sharded-block** — the :class:`~repro.parallel.ShardedRunner` with
  the same batch size across worker processes.

Two properties are checked, with different teeth:

1. **Bit identity** (always a hard gate): the sha256 sketch
   fingerprints of all three arms must be identical.  The kernel buys
   throughput with vectorization, never with approximation — any
   divergence is a correctness bug, at smoke scale or full.
2. **Speedup**: the block arm must beat scalar by ``SMOKE_SPEEDUP_BAR``
   (3x) at every scale.  The full-scale bar of ``FULL_SPEEDUP_BAR``
   (10x) additionally requires the sharded arm and is only enforced on
   hosts with at least ``FULL_GATE_MIN_CORES`` cores — a laptop or a
   throttled single-core CI runner cannot parallelize its way to 10x,
   so there the full-scale figure is reported but not gated.

Runs standalone (no pytest) and writes the machine-readable record to
the repository root — ``BENCH_e4_block.json`` — so the trend is a
first-class, version-controlled artifact rather than a buried results
file::

    PYTHONPATH=src python benchmarks/bench_e4_block_ingest.py --smoke
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

from _common import SCALE, bench_arg_parser, emit_json
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.graph.generators import barabasi_albert
from repro.stream.casebook import sketch_fingerprint

#: Block-vs-scalar bar enforced at every scale (CI smoke included).
SMOKE_SPEEDUP_BAR = 3.0
#: Sharded-block-vs-scalar bar at full scale on multi-core hosts.
FULL_SPEEDUP_BAR = 10.0
FULL_GATE_MIN_CORES = 4

EDGES = 60_000 if SCALE == "full" else 20_000
_STREAM = barabasi_albert(n=EDGES // 4, m=4, seed=9)[:EDGES]

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_e4_block.json"


def _scalar_arm(edges, k):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=1))
    started = time.perf_counter()
    for u, v in edges:
        predictor.update(u, v)
    return time.perf_counter() - started, predictor


def _block_arm(edges, k, batch_size):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=1))
    us = [u for u, _ in edges]
    vs = [v for _, v in edges]
    started = time.perf_counter()
    for start in range(0, len(edges), batch_size):
        predictor.update_block(
            us[start : start + batch_size], vs[start : start + batch_size]
        )
    return time.perf_counter() - started, predictor


def _sharded_arm(edges, k, batch_size, workers):
    from repro.api import ingest

    started = time.perf_counter()
    report = ingest(
        edges, config=SketchConfig(k=k, seed=1), workers=workers, batch_size=batch_size
    )
    return time.perf_counter() - started, report.predictor


def main(argv=None):
    parser = bench_arg_parser("E4b block-ingest kernel: speedup + bit-identity gate")
    parser.add_argument(
        "--batch-size", type=int, default=4096, help="block span size (default 4096)"
    )
    parser.add_argument("--k", type=int, default=64, help="sketch size (default 64)")
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of-N timing rounds per arm"
    )
    args = parser.parse_args(argv)

    edges = [(e.u, e.v) for e in (_STREAM[:10_000] if args.smoke else _STREAM)]
    cores = os.cpu_count() or 1
    workers = min(FULL_GATE_MIN_CORES, cores) if cores > 1 else 2

    scalar_best = block_best = sharded_best = float("inf")
    fingerprints = {}
    for _ in range(max(1, args.rounds)):
        seconds, predictor = _scalar_arm(edges, args.k)
        scalar_best = min(scalar_best, seconds)
        fingerprints["scalar"] = sketch_fingerprint(predictor)
        seconds, predictor = _block_arm(edges, args.k, args.batch_size)
        block_best = min(block_best, seconds)
        fingerprints["block"] = sketch_fingerprint(predictor)
    # The sharded arm forks worker processes — once is enough for the
    # identity gate, and its timing is informational below 4 cores.
    seconds, predictor = _sharded_arm(edges, args.k, args.batch_size, workers)
    sharded_best = min(sharded_best, seconds)
    fingerprints["sharded_block"] = sketch_fingerprint(predictor)

    block_speedup = scalar_best / block_best
    sharded_speedup = scalar_best / sharded_best
    full_gate_armed = SCALE == "full" and not args.smoke and cores >= FULL_GATE_MIN_CORES

    record = {
        "edges": len(edges),
        "k": args.k,
        "batch_size": args.batch_size,
        "workers": workers,
        "cores": cores,
        "scalar_edges_per_second": len(edges) / scalar_best,
        "block_edges_per_second": len(edges) / block_best,
        "sharded_block_edges_per_second": len(edges) / sharded_best,
        "block_speedup": block_speedup,
        "sharded_block_speedup": sharded_speedup,
        "smoke_speedup_bar": SMOKE_SPEEDUP_BAR,
        "full_speedup_bar": FULL_SPEEDUP_BAR if full_gate_armed else None,
        "fingerprints": fingerprints,
        "fingerprints_identical": len(set(fingerprints.values())) == 1,
    }
    json_path = emit_json("e4_block_ingest", record, path=args.json or ROOT_JSON)
    print(
        f"e4_block smoke={args.smoke} edges={len(edges)} k={args.k} "
        f"bs={args.batch_size} scalar={len(edges) / scalar_best:,.0f}/s "
        f"block={len(edges) / block_best:,.0f}/s ({block_speedup:.1f}x) "
        f"sharded[{workers}w]={len(edges) / sharded_best:,.0f}/s "
        f"({sharded_speedup:.1f}x) -> {json_path}"
    )

    failures = []
    if not record["fingerprints_identical"]:
        failures.append(
            "sketch fingerprints diverge across arms: "
            + ", ".join(f"{arm}={fp[:12]}" for arm, fp in fingerprints.items())
        )
    if block_speedup < SMOKE_SPEEDUP_BAR:
        failures.append(
            f"block speedup {block_speedup:.2f}x below the "
            f"{SMOKE_SPEEDUP_BAR:.0f}x bar"
        )
    if full_gate_armed and max(block_speedup, sharded_speedup) < FULL_SPEEDUP_BAR:
        failures.append(
            f"full-scale speedup {max(block_speedup, sharded_speedup):.2f}x below "
            f"the {FULL_SPEEDUP_BAR:.0f}x bar ({cores} cores)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
