"""E16 — sharded parallel ingestion: wall-clock speedup + crash recovery.

Times one pass over a synthetic edge stream through the serial
``StreamRunner`` and through ``ShardedRunner(workers=4)``, asserting the
two predictors are **bit-identical** (the sharded pipeline's headline
contract), then runs a kill-a-worker drill: SIGKILL one shard worker
mid-stream, confirm the coordinator surfaces
:class:`~repro.errors.WorkerCrashError`, resume from the per-shard
checkpoints, and confirm the recovered predictor is bit-identical too.

Acceptance bar (full scale, 1M edges): 4 workers must beat serial by at
least ``SPEEDUP_BAR`` (2x).  The bar gates only when the host actually
has ``WORKERS`` CPUs — on a single-core container the laws of physics
rule a wall-clock speedup out, and short smoke streams spend a visible
fraction of the run on process spawn — otherwise the speedup is
reported, not gated.  The identity and recovery checks gate at every
scale on every host.

Also runnable without pytest for the CI smoke::

    PYTHONPATH=src python benchmarks/bench_e16_parallel_ingest.py --smoke \
        --json results.json
"""

from __future__ import annotations

import os
import random
import signal
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from _common import SCALE, bench_arg_parser, emit, emit_json
from repro.core import SketchConfig
from repro.errors import WorkerCrashError
from repro.eval.reporting import format_table
from repro.parallel import ShardedRunner
from repro.stream import FileEdgeSource, StreamRunner
from repro.stream.sources import EdgeSource

#: Acceptance bar at full scale: 4 workers must at least halve wall clock.
SPEEDUP_BAR = 2.0
WORKERS = 4
CORES = os.cpu_count() or 1

FULL_EDGES = 1_000_000
SMOKE_EDGES = 150_000
EDGES = FULL_EDGES if SCALE == "full" else SMOKE_EDGES
CONFIG = SketchConfig(k=64, seed=7, degree_mode="exact")

ARRAYS = ("vertex_ids", "values", "witnesses", "update_counts", "degrees")

_STATE = {}
_RESULTS = {}


def _write_stream(path, edges, seed=3):
    """Uniform random multigraph stream: every line a distinct arrival."""
    vertices = max(edges // 20, 100)
    rng = random.Random(seed)
    with open(path, "w", encoding="utf-8") as handle:
        for _ in range(edges):
            u = rng.randrange(vertices)
            v = rng.randrange(vertices)
            while v == u:
                v = rng.randrange(vertices)
            handle.write(f"{u} {v}\n")


def _stream_path(edges=EDGES):
    path = _STATE.get(("path", edges))
    if path is None:
        path = Path(tempfile.mkdtemp(prefix="bench-e16-")) / "edges.txt"
        _write_stream(path, edges)
        _STATE[("path", edges)] = path
    return path


def _serial(path):
    runner = StreamRunner(FileEdgeSource(path), config=CONFIG)
    started = time.perf_counter()
    runner.run()
    return time.perf_counter() - started, runner


def _sharded(path, workers=WORKERS):
    runner = ShardedRunner(FileEdgeSource(path), workers=workers, config=CONFIG)
    started = time.perf_counter()
    runner.run()
    return time.perf_counter() - started, runner


def _mismatches(ours, theirs):
    return [
        name
        for name in ARRAYS
        if not np.array_equal(getattr(ours, name), getattr(theirs, name))
    ]


class _KillOneWorker(EdgeSource):
    """Wrap a source; SIGKILL one shard worker after ``after`` records."""

    def __init__(self, inner, after, victim):
        self.inner = inner
        self.after = after
        self.victim = victim  # () -> Process
        self.name = f"kill-after-{after}:{inner.name}"

    def records(self, start_offset=0):
        for count, record in enumerate(self.inner.records(start_offset)):
            if count == self.after:
                process = self.victim()
                os.kill(process.pid, signal.SIGKILL)
                process.join()  # make the death visible, not racy
            yield record


def _recovery_drill(path, serial_arrays, checkpoint_dir, edges):
    """Kill shard 0 mid-stream, resume, and verify bit-identity.

    Returns a result dict; ``ok`` is True only when the crash surfaced
    as WorkerCrashError *and* the resumed run reproduced the serial
    predictor exactly.
    """
    checkpoint_every = max(edges // (WORKERS * 40), 100)
    holder = {}
    source = _KillOneWorker(
        FileEdgeSource(path),
        after=edges // 2,
        victim=lambda: holder["runner"].processes[0],
    )
    runner = ShardedRunner(
        source,
        workers=WORKERS,
        config=CONFIG,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    holder["runner"] = runner
    try:
        runner.run()
    except WorkerCrashError as crash:
        crashed_shard = crash.shard
    else:
        return {"ok": False, "detail": "SIGKILL did not surface as WorkerCrashError"}

    recovered = ShardedRunner(
        FileEdgeSource(path),
        workers=WORKERS,
        config=CONFIG,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    if not recovered.resume():
        return {"ok": False, "detail": "no shard checkpoints found to resume from"}
    started = time.perf_counter()
    stats = recovered.run()
    elapsed = time.perf_counter() - started
    mismatched = _mismatches(recovered.predictor.export_arrays(), serial_arrays)
    return {
        "ok": not mismatched and stats["source_exhausted"],
        "detail": f"arrays differ: {mismatched}" if mismatched else "bit-identical",
        "crashed_shard": crashed_shard,
        "replayed": stats["replayed"],
        "resume_seconds": elapsed,
    }


def _render(edges, serial_seconds, sharded_seconds, speedup, recovery):
    rows = [
        ["serial StreamRunner", serial_seconds, edges / serial_seconds, 1.0],
        [
            f"ShardedRunner workers={WORKERS}",
            sharded_seconds,
            edges / sharded_seconds,
            speedup,
        ],
    ]
    table = format_table(
        ["pipeline", "seconds", "edges/s", "speedup"],
        rows,
        title=(
            f"E16 — parallel ingest, {edges:,} edges "
            f"(scale={SCALE}, host cpus={CORES})"
        ),
        precision=2,
    )
    if SCALE != "full":
        why = "report-only at smoke scale"
    elif CORES < WORKERS:
        why = f"report-only: host has {CORES} cpu(s) for {WORKERS} workers"
    else:
        why = "gating"
    gate = f"bar {SPEEDUP_BAR:.1f}x ({why})"
    recovery_line = (
        f"recovery drill: shard {recovery.get('crashed_shard', '?')} killed, "
        f"replayed={recovery.get('replayed', '?')}, {recovery['detail']}"
    )
    return f"{table}\n{gate}\n{recovery_line}"


# --------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only)
# --------------------------------------------------------------------------


def test_e16_serial_baseline(benchmark):
    holder = {}

    def run():
        holder["runner"] = StreamRunner(
            FileEdgeSource(_stream_path()), config=CONFIG
        )
        holder["runner"].run()

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["serial"] = benchmark.stats.stats.mean
    _STATE["serial_arrays"] = holder["runner"].predictor.export_arrays()


def test_e16_sharded_is_bit_identical(benchmark):
    assert "serial_arrays" in _STATE, "serial baseline must run first"
    holder = {}

    def run():
        holder["runner"] = ShardedRunner(
            FileEdgeSource(_stream_path()), workers=WORKERS, config=CONFIG
        )
        holder["runner"].run()

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["sharded"] = benchmark.stats.stats.mean
    mismatched = _mismatches(
        holder["runner"].predictor.export_arrays(), _STATE["serial_arrays"]
    )
    assert not mismatched, f"sharded arrays differ from serial: {mismatched}"


def test_e16_recovery_and_report(benchmark, tmp_path):
    """Runs last: the kill-a-worker drill plus the table/JSON emit.

    (Takes the benchmark fixture so --benchmark-only does not skip it;
    the timed workload is the drill itself.)
    """
    assert {"serial", "sharded"} <= set(_RESULTS), "timing cases must run first"

    recovery = benchmark.pedantic(
        lambda: _recovery_drill(
            _stream_path(), _STATE["serial_arrays"], str(tmp_path / "ck"), EDGES
        ),
        rounds=1,
        iterations=1,
    )
    assert recovery["ok"], recovery

    speedup = _RESULTS["serial"] / _RESULTS["sharded"]
    text = _render(EDGES, _RESULTS["serial"], _RESULTS["sharded"], speedup, recovery)
    emit("e16_parallel_ingest", text)
    emit_json(
        "e16_parallel_ingest",
        {
            "edges": EDGES,
            "workers": WORKERS,
            "host_cpus": CORES,
            "serial_seconds": _RESULTS["serial"],
            "sharded_seconds": _RESULTS["sharded"],
            "speedup": speedup,
            "speedup_bar": SPEEDUP_BAR,
            "recovery": recovery,
        },
    )
    if SCALE == "full" and CORES >= WORKERS:
        assert speedup >= SPEEDUP_BAR, (
            f"{WORKERS} workers gave {speedup:.2f}x, below the {SPEEDUP_BAR}x bar"
        )


# --------------------------------------------------------------------------
# standalone runner (the CI smoke step)
# --------------------------------------------------------------------------


def main(argv=None):
    parser = bench_arg_parser("E16 sharded parallel ingest speedup + recovery drill")
    parser.add_argument(
        "--workers", type=int, default=WORKERS, help="shard worker count (default 4)"
    )
    args = parser.parse_args(argv)

    edges = SMOKE_EDGES if args.smoke else EDGES
    gating = not args.smoke and SCALE == "full" and CORES >= args.workers
    path = _stream_path(edges)

    serial_seconds, serial = _serial(path)
    serial_arrays = serial.predictor.export_arrays()
    sharded_seconds, sharded = _sharded(path, workers=args.workers)
    speedup = serial_seconds / sharded_seconds
    mismatched = _mismatches(sharded.predictor.export_arrays(), serial_arrays)

    with tempfile.TemporaryDirectory(prefix="bench-e16-ck-") as ckpt:
        recovery = _recovery_drill(path, serial_arrays, ckpt, edges)

    text = _render(edges, serial_seconds, sharded_seconds, speedup, recovery)
    emit("e16_parallel_ingest", text)
    emit_json(
        "e16_parallel_ingest",
        {
            "edges": edges,
            "workers": args.workers,
            "host_cpus": CORES,
            "serial_seconds": serial_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": speedup,
            "speedup_bar": SPEEDUP_BAR,
            "speedup_gating": gating,
            "bit_identical": not mismatched,
            "recovery": recovery,
        },
        path=args.json or None,
    )

    failed = False
    if mismatched:
        print(f"FAIL: sharded arrays differ from serial: {mismatched}", file=sys.stderr)
        failed = True
    if not recovery["ok"]:
        print(f"FAIL: recovery drill: {recovery['detail']}", file=sys.stderr)
        failed = True
    if gating and speedup < SPEEDUP_BAR:
        print(
            f"FAIL: {args.workers} workers gave {speedup:.2f}x, "
            f"below the {SPEEDUP_BAR}x bar",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
