"""E5 — pairwise query latency (the paper's query-time figure).

Measures online per-pair scoring cost on a warm store: MinHash at
several k (O(k) slot comparison), the biased predictor, and the exact
snapshot (O(min-degree) set intersection).

Expected shape (asserted): sketch query time is independent of vertex
degree — the hub-pair and leaf-pair latencies coincide — while the
exact oracle's hub queries cost measurably more than its leaf queries.
"""

from __future__ import annotations

import pytest

from _common import emit, oracle_for, query_pairs, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.eval.reporting import format_table
from repro.exact import ExactOracle

DATASET = "synth-facebook"
_RESULTS = {}


def _warm_predictor(k: int) -> MinHashLinkPredictor:
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=2))
    predictor.process(stream_of(DATASET))
    return predictor


def _pairs_by_degree(oracle: ExactOracle):
    degrees = sorted(
        oracle.graph.vertices(), key=oracle.graph.degree, reverse=True
    )
    hubs = degrees[:40]
    leaves = degrees[-40:]
    hub_pairs = [(hubs[i], hubs[i + 1]) for i in range(0, 38, 2)]
    leaf_pairs = [(leaves[i], leaves[i + 1]) for i in range(0, 38, 2)]
    return hub_pairs, leaf_pairs


CASES = {}


def _build_cases():
    if CASES:
        return
    oracle = oracle_for(DATASET)
    hub_pairs, leaf_pairs = _pairs_by_degree(oracle)
    mixed = query_pairs(DATASET, 200, seed=5)
    for k in (32, 128, 512):
        predictor = _warm_predictor(k)
        CASES[f"minhash k={k} (mixed)"] = (predictor, mixed)
    predictor128 = _warm_predictor(128)
    CASES["minhash k=128 (hubs)"] = (predictor128, hub_pairs)
    CASES["minhash k=128 (leaves)"] = (predictor128, leaf_pairs)
    CASES["exact (mixed)"] = (oracle, mixed)
    CASES["exact (hubs)"] = (oracle, hub_pairs)
    CASES["exact (leaves)"] = (oracle, leaf_pairs)


def _query_all(predictor, pairs):
    for u, v in pairs:
        predictor.score(u, v, "adamic_adar")


@pytest.mark.parametrize(
    "case",
    [
        "minhash k=32 (mixed)",
        "minhash k=128 (mixed)",
        "minhash k=512 (mixed)",
        "minhash k=128 (hubs)",
        "minhash k=128 (leaves)",
        "exact (mixed)",
        "exact (hubs)",
        "exact (leaves)",
    ],
)
def test_e5_query_latency(benchmark, case):
    _build_cases()
    predictor, pairs = CASES[case]
    benchmark.pedantic(_query_all, args=(predictor, pairs), rounds=3, iterations=1)
    _RESULTS[case] = benchmark.stats.stats.mean / len(pairs)


def test_e5_report_and_shape(benchmark):
    assert len(_RESULTS) == 8, "timing cases must run first"

    def build_rows():
        return [
            [case, seconds * 1e6] for case, seconds in _RESULTS.items()
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit(
        "e5_query_latency",
        format_table(
            ["case", "µs / query"],
            rows,
            title=f"E5: pairwise Adamic–Adar query latency on {DATASET}",
            precision=1,
        ),
    )
    # Shape: sketch latency is degree-independent (hubs ~ leaves within
    # noise), the exact oracle pays for hub degrees.
    sketch_ratio = (
        _RESULTS["minhash k=128 (hubs)"] / _RESULTS["minhash k=128 (leaves)"]
    )
    exact_ratio = _RESULTS["exact (hubs)"] / _RESULTS["exact (leaves)"]
    assert sketch_ratio < 3.0
    assert exact_ratio > sketch_ratio
