"""E6 — accuracy along the stream (the paper's stability figure).

Runs the predictor and the exact oracle in lockstep over a temporal
(growth-order) stream and measures the mean relative error at evenly
spaced checkpoints.  Expected shape (asserted): the error stays flat —
sketch accuracy does not degrade as the graph accumulates, which is
what makes the method usable on unbounded streams.
"""

from __future__ import annotations

from _common import SCALE, emit
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.eval.experiments import progressive_accuracy
from repro.eval.reporting import format_series, sparkline
from repro.graph.generators import barabasi_albert

MEASURES = ("jaccard", "common_neighbors", "adamic_adar")
EDGES = 40_000 if SCALE == "full" else 15_000
CHECKPOINTS = 8 if SCALE == "full" else 5


def run_experiment():
    stream = barabasi_albert(n=EDGES // 5, m=5, seed=12)[:EDGES]
    return progressive_accuracy(
        lambda: MinHashLinkPredictor(SketchConfig(k=256, seed=13)),
        stream,
        checkpoint_count=CHECKPOINTS,
        pairs_per_checkpoint=200,
        measures=list(MEASURES),
        seed=14,
    )


def test_e6_progressive_accuracy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    curves = {
        measure: [(row["edges"], row[measure]) for row in rows]
        for measure in MEASURES
    }
    shapes = "\n".join(
        f"  {measure:<18} {sparkline([row[measure] for row in rows])}"
        for measure in MEASURES
    )
    emit(
        "e6_progressive",
        format_series(
            "E6: mean relative error at stream checkpoints "
            f"(BA growth stream, k=256, {EDGES} edges)",
            "edges",
            curves,
            precision=3,
        )
        + "\nshape (flat = no degradation):\n"
        + shapes,
    )
    # Shape: no degradation — the last checkpoint must not be much
    # worse than the curve's overall level.
    for measure in MEASURES:
        errors = [row[measure] for row in rows]
        mean_error = sum(errors) / len(errors)
        assert errors[-1] < 1.6 * mean_error, measure
        assert mean_error < 0.6, measure
