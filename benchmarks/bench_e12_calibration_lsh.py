"""E12 — self-reported uncertainty and LSH retrieval, checked against
their theory.

**E12a: error-bar calibration.**  The predictor ships a ±σ̂ with every
Jaccard estimate; the table reports how often ``Ĵ ± z·σ̂`` actually
covers the exact value, overall and bucketed by the expected collision
count ``k·Ĵ`` (the normal approximation's validity knob).

**E12b: LSH S-curve.**  For controlled set pairs with known Jaccard,
the empirical probability that the banding index reports the pair,
versus the closed form ``1 - (1 - J^rows)^bands``.
"""

from __future__ import annotations

from _common import SCALE, emit, oracle_for, query_pairs, stream_of
from repro.core import LshCandidateIndex, MinHashLinkPredictor, SketchConfig
from repro.eval.calibration import coverage_report
from repro.eval.reporting import format_table
from repro.graph import from_pairs

DATASET = "synth-grqc"
_SHAPE = {}


def run_coverage():
    oracle = oracle_for(DATASET)
    predictor = MinHashLinkPredictor(SketchConfig(k=256, seed=81))
    predictor.process(stream_of(DATASET))
    pairs = query_pairs(DATASET, 400, seed=82)
    report = coverage_report(predictor, oracle, pairs, z_levels=(1.0, 1.96, 3.0))
    rows = [[f"z={z}", "(all pairs)", cov] for z, cov in sorted(report.by_z.items())]
    rows += [
        ["z=1.96", bucket, cov] for bucket, cov in report.by_magnitude.items()
    ]
    _SHAPE["coverage"] = report
    return rows


TRIALS = 200 if SCALE == "full" else 80
BANDS, ROWS = 16, 8


def _pair_with_jaccard(j: float, size: int = 240):
    # Construct |A| = |B| = size with |∩| chosen so J hits the target:
    # J = o / (2*size - o)  =>  o = 2*size*J / (1+J).
    o = round(2 * size * j / (1 + j))
    set_a = list(range(0, size))
    set_b = list(range(size - o, 2 * size - o))
    true_j = o / (2 * size - o)
    return set_a, set_b, true_j


def run_scurve():
    rows = []
    for target in (0.2, 0.4, 0.6, 0.8):
        set_a, set_b, true_j = _pair_with_jaccard(target)
        caught = 0
        for trial in range(TRIALS):
            predictor = MinHashLinkPredictor(
                SketchConfig(k=BANDS * ROWS, seed=trial * 31 + 7)
            )
            edges = [(1_000_000, w + 10) for w in set_a] + [
                (2_000_000, w + 10) for w in set_b
            ]
            predictor.process(from_pairs(edges))
            index = LshCandidateIndex(predictor, bands=BANDS, rows=ROWS)
            pairs = {(c.u, c.v) for c in index.candidate_pairs()}
            if (1_000_000, 2_000_000) in pairs:
                caught += 1
        empirical = caught / TRIALS
        predicted = 1.0 - (1.0 - true_j**ROWS) ** BANDS
        rows.append([true_j, empirical, predicted])
        _SHAPE[("scurve", round(true_j, 2))] = (empirical, predicted)
    return rows


def test_e12_error_bar_calibration(benchmark):
    rows = benchmark.pedantic(run_coverage, rounds=1, iterations=1)
    emit(
        "e12_calibration",
        format_table(
            ["interval", "bucket", "empirical coverage"],
            rows,
            title=f"E12a: coverage of Ĵ ± z·σ̂ on {DATASET} (k=256, 400 pairs)",
            precision=3,
        ),
    )
    report = _SHAPE["coverage"]
    # Shape: monotone in z; z=3 covers the bulk; large-kJ bucket is
    # well calibrated at 1.96 (>= 85%).
    assert report.by_z[1.0] <= report.by_z[1.96] <= report.by_z[3.0]
    assert report.by_z[3.0] > 0.85
    if "kJ>=20" in report.by_magnitude:
        assert report.by_magnitude["kJ>=20"] > 0.85


def test_e12_lsh_s_curve(benchmark):
    rows = benchmark.pedantic(run_scurve, rounds=1, iterations=1)
    emit(
        "e12_lsh_scurve",
        format_table(
            ["true J", "empirical capture", "1-(1-J^r)^b"],
            rows,
            title=f"E12b: LSH capture probability, {BANDS} bands x {ROWS} rows "
            f"({TRIALS} independent hash draws)",
            precision=3,
        ),
    )
    scurve_items = [
        (key[1], value)
        for key, value in _SHAPE.items()
        if isinstance(key, tuple) and key[0] == "scurve"
    ]
    for j, (empirical, predicted) in scurve_items:
        # Binomial noise: allow ~4 standard errors around the formula.
        slack = 4.0 * (max(predicted * (1 - predicted), 0.01) / TRIALS) ** 0.5
        assert abs(empirical - predicted) <= slack + 0.03, j
    # The S shape itself: capture at J=0.8 far exceeds capture at J=0.2.
    assert _SHAPE[("scurve", 0.8)][0] > _SHAPE[("scurve", 0.2)][0] + 0.5
