"""E9 — ablation: vertex-biased sampling and the weight-drift policies.

Compares, for the weighted witness-sum measures, three estimators:

* the *uniform* HT estimator (MinHash witnesses, DESIGN.md decision 1),
* the *biased* sketch with frozen arrival weights, and
* the *biased* sketch with the refresh (hybrid) policy.

Workload: the regime vertex-biased sampling is *for*.  Weighted
sampling beats uniform sampling when the intersection's weight mass is
concentrated in members that uniform sampling rarely hits — i.e. pairs
whose common neighborhood contains low-degree witnesses (huge
``1/d`` / large ``1/ln d`` weights) inside large unions.  We construct
such pairs on the heavy-tailed ``synth-wiki-vote`` stand-in by sampling
a low-degree witness first and taking two of its neighbors.  Two
measures bracket the weight-skew spectrum: Adamic–Adar (mild skew,
small expected gain) and resource allocation (orders-of-magnitude skew,
the showcase).

Expected shape (asserted): (1) refresh removes most of freeze's drift
bias on both measures; (2) on resource allocation, the refreshed biased
estimator beats uniform sampling.
"""

from __future__ import annotations

import random
import statistics

from _common import SCALE, emit, oracle_for, stream_of
from repro.core import BiasedMinHashLinkPredictor, MinHashLinkPredictor, SketchConfig
from repro.eval.reporting import format_table

DATASET = "synth-wiki-vote"
K = 256
PAIRS = 200 if SCALE == "full" else 120
_SHAPE = {}


def low_witness_pairs(count: int, seed: int = 61):
    """Non-adjacent pairs sharing at least one degree-[2,6] witness."""
    graph = oracle_for(DATASET).graph
    rng = random.Random(seed)
    low_degree = [v for v in graph.vertices() if 2 <= graph.degree(v) <= 6]
    pairs = set()
    attempts = 0
    while len(pairs) < count and attempts < 200 * count:
        attempts += 1
        witness = rng.choice(low_degree)
        neighbors = list(graph.neighbors(witness))
        if len(neighbors) < 2:
            continue
        u, v = rng.sample(neighbors, 2)
        if u != v and not graph.has_edge(u, v):
            pairs.add((min(u, v), max(u, v)))
    return sorted(pairs)


def deviations(predictor, oracle, pairs, measure):
    out = []
    for u, v in pairs:
        truth = oracle.score(u, v, measure)
        if truth <= 0:
            continue
        out.append((predictor.score(u, v, measure) - truth) / truth)
    return out


def run_experiment():
    oracle = oracle_for(DATASET)
    pairs = low_witness_pairs(PAIRS)
    rows = []
    for measure in ("adamic_adar", "resource_allocation"):
        estimators = {
            "uniform HT": MinHashLinkPredictor(SketchConfig(k=K, seed=62)),
            "biased freeze": BiasedMinHashLinkPredictor(
                SketchConfig(k=K, seed=62, weight_policy="freeze"),
                measure_name=measure,
            ),
            "biased refresh": BiasedMinHashLinkPredictor(
                SketchConfig(k=K, seed=62, weight_policy="refresh", refresh_buffer=512),
                measure_name=measure,
            ),
        }
        for name, predictor in estimators.items():
            predictor.process(stream_of(DATASET))
            devs = deviations(predictor, oracle, pairs, measure)
            mre = statistics.mean(abs(d) for d in devs)
            bias = statistics.mean(devs)
            rows.append([measure, name, mre, bias, len(devs)])
            _SHAPE[(measure, name)] = (mre, bias)
    return rows


def test_e9_bias_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        "e9_ablation_bias",
        format_table(
            ["measure", "estimator", "mean |rel err|", "mean signed dev", "pairs"],
            rows,
            title=(
                f"E9: vertex-biased sampling ablation on {DATASET} "
                f"(k={K}, low-degree-witness pairs)"
            ),
            precision=3,
        ),
    )
    # Shape 1: refresh removes most of freeze's drift bias.
    for measure in ("adamic_adar", "resource_allocation"):
        assert abs(_SHAPE[(measure, "biased refresh")][1]) < abs(
            _SHAPE[(measure, "biased freeze")][1]
        ), measure
        assert (
            _SHAPE[(measure, "biased refresh")][0]
            < _SHAPE[(measure, "biased freeze")][0]
        ), measure
    # Shape 2: where weights are heavily skewed (resource allocation),
    # refreshed biased sampling beats uniform sampling.
    assert (
        _SHAPE[("resource_allocation", "biased refresh")][0]
        < _SHAPE[("resource_allocation", "uniform HT")][0]
    )
