"""E11c — fully dynamic sketches under churn: deletes and TTL vs drift.

The deletion-tolerance gate, runnable standalone (CI artifact) and as
the ``test_e11c_*`` pytest-benchmark in ``bench_e11_extensions.py``::

    PYTHONPATH=src python benchmarks/bench_e11c_dynamic.py --smoke

Scenario: a churned stream.  Structure A is added, structure B is
added, then every structure-A record is retracted — the *live* graph
at the end is exactly B.  Three predictors consume it:

* **append-only full history** — the paper's insert-only sketches;
  deletes are invisible to it (an operator would see them quarantined
  as ``unsupported_delete``), so its estimates blend the retracted
  A-overlaps forever: drift.
* **dynamic (explicit deletes)** — counter-backed sketches applying
  the retractions; its state collapses to B's.
* **dynamic (TTL expiry)** — no explicit deletes; A sits below the
  sliding-window horizon and falls out on its own.

The gate: both dynamic arms must estimate *live* common neighbors at
most half the error of the append-only arm.
"""

from __future__ import annotations

import random
import sys

from _common import bench_arg_parser, emit_json
from repro.core import DynamicMinHashPredictor, MinHashLinkPredictor, SketchConfig
from repro.eval.metrics import mean_relative_error
from repro.exact import ExactOracle
from repro.graph.generators import planted_partition
from repro.graph.stream import Edge

EXPERIMENT = "e11c_dynamic"

#: Error-ratio bar: each dynamic arm must halve the append-only error.
RATIO_BAR = 0.5


def churn_scenario(*, n, communities, internal, external, seed=81):
    """Stale structure A and live structure B (B relabeled to straddle
    A's blocks, so the two phases' overlaps genuinely differ)."""
    shift = (n // communities) // 2
    stale = list(
        planted_partition(
            n=n, communities=communities, internal_edges=internal,
            external_edges=external, seed=seed,
        )
    )
    live_raw = planted_partition(
        n=n, communities=communities, internal_edges=internal,
        external_edges=external, seed=seed + 1,
    )
    live = [
        Edge((e.u + shift) % n, (e.v + shift) % n, e.timestamp)
        for e in live_raw
        if (e.u + shift) % n != (e.v + shift) % n
    ]
    return stale, live


def _query_pairs(truth_graph, *, n, communities, count, seed):
    """Non-adjacent pairs inside live communities (blocks shifted)."""
    rng = random.Random(seed)
    block = n // communities
    shift = block // 2
    pairs = []
    while len(pairs) < count:
        community = rng.randrange(communities)
        low = (community * block + shift) % n
        u = (low + rng.randrange(block)) % n
        v = (low + rng.randrange(block)) % n
        if (
            u != v
            and u in truth_graph
            and v in truth_graph
            and not truth_graph.has_edge(u, v)
        ):
            pairs.append((u, v))
    return pairs


def run_churn(*, n=1000, communities=10, internal=14000, external=1000, k=192, seed=81):
    """Run all three arms; returns the per-arm mean relative errors."""
    stale, live = churn_scenario(
        n=n, communities=communities, internal=internal, external=external, seed=seed
    )
    # Stream times: A lives in [0, 1), B in [2, 3) — a TTL of 1.5
    # (measured at B's clock) expires every A edge and no B edge.
    stale_ts = [0.5] * len(stale)
    live_ts = [2.5] * len(live)
    ttl = 1.5

    truth = ExactOracle()
    truth.process(live)

    append_only = MinHashLinkPredictor(SketchConfig(k=k, seed=seed + 1))
    for edge in stale + live:
        append_only.update(edge.u, edge.v)

    deletes = DynamicMinHashPredictor(
        SketchConfig(k=k, seed=seed + 1, dynamic_mode=True)
    )
    deletes.update_block([e.u for e in stale], [e.v for e in stale], stale_ts)
    deletes.update_block([e.u for e in live], [e.v for e in live], live_ts)
    deletes.delete_block(
        [e.u for e in stale], [e.v for e in stale], [3.0] * len(stale)
    )

    expiry = DynamicMinHashPredictor(
        SketchConfig(k=k, seed=seed + 1, dynamic_mode=True, ttl=ttl)
    )
    expiry.update_block([e.u for e in stale], [e.v for e in stale], stale_ts)
    expiry.update_block([e.u for e in live], [e.v for e in live], live_ts)

    pairs = _query_pairs(
        truth.graph, n=n, communities=communities, count=150, seed=seed + 2
    )
    truths = [truth.score(u, v, "common_neighbors") for u, v in pairs]
    results = {}
    for label, predictor in (
        ("append_only", append_only),
        ("dynamic_deletes", deletes),
        ("dynamic_ttl", expiry),
    ):
        estimates = [predictor.score(u, v, "common_neighbors") for u, v in pairs]
        results[f"{label}_mre"] = mean_relative_error(estimates, truths)
    results["pairs"] = len(pairs)
    results["stale_edges"] = len(stale)
    results["live_edges"] = len(live)
    results["k"] = k
    results["ttl"] = ttl
    return results


def main(argv=None) -> int:
    parser = bench_arg_parser(
        "E11c: dynamic deletes/TTL track the live graph where "
        "append-only drifts"
    )
    parser.add_argument("--k", type=int, default=192, help="sketch size")
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_churn(
            n=300, communities=6, internal=3000, external=300, k=args.k
        )
    else:
        results = run_churn(k=args.k)

    record = dict(results)
    record["ratio_bar"] = RATIO_BAR
    json_path = emit_json(EXPERIMENT, record, path=args.json or None)
    print(
        f"e11c smoke={args.smoke} "
        f"append_only={results['append_only_mre']:.3f} "
        f"deletes={results['dynamic_deletes_mre']:.3f} "
        f"ttl={results['dynamic_ttl_mre']:.3f} -> {json_path}"
    )

    failures = []
    for arm in ("dynamic_deletes", "dynamic_ttl"):
        ratio = results[f"{arm}_mre"] / results["append_only_mre"]
        if ratio >= RATIO_BAR:
            failures.append(
                f"{arm} error is {ratio:.2f}x append-only "
                f"(bar: < {RATIO_BAR:.2f}x)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
