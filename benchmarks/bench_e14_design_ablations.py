"""E14 — ablations of the remaining DESIGN.md decisions.

**E14a (decision 4): k-mins vs bottom-k for Jaccard.**  Both sketch a
set in ``8·k`` bytes (value-only).  k-mins hashes each key k times and
compares slot-wise; bottom-k hashes once and compares the union's k
minima.  Bottom-k is strictly more memory-efficient — its k samples are
drawn *without replacement* from the union, and below k distinct keys
it stores the set outright — but it offers **no per-slot witness
alignment**, which the Adamic–Adar estimator requires.  The comparison
runs on the dense stream (neighborhoods ≫ k, so neither sketch is in
its trivially-exact regime) and quantifies the accuracy premium the
paper's k-mins choice pays for witness support.

**E14b (decision 3): exact vs Count-Min degrees.**  The CN estimator
consumes degrees; the ablation replaces the exact per-vertex counters
(8 bytes/vertex) with conservative Count-Min tables at 4×, 1× and ⅛×
that byte total.  Expected (and asserted) shape: error grows
monotonically as the table shrinks, and Count-Min needs a multiple of
the exact table's bytes to match it — confirming exact words as the
right default.
"""

from __future__ import annotations

import random

from _common import emit, oracle_for, query_pairs, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.eval.experiments import accuracy_profile
from repro.eval.metrics import mean_relative_error
from repro.eval.reporting import format_table
from repro.hashing import HashBank
from repro.sketches import BottomK, KMinHash

_SHAPE = {}


# ----------------------------------------------------------------------
# E14a — k-mins vs bottom-k on equal bytes
# ----------------------------------------------------------------------


def _set_pairs(seed: int = 101, count: int = 120):
    """Dense neighbor-set pairs (degrees ~147 >> k: the sampled regime)."""
    graph = oracle_for("synth-dense").graph
    rng = random.Random(seed)
    chosen = set()
    while len(chosen) < count:
        community = rng.randrange(6)
        low = community * 200
        u, v = rng.sample(range(low, low + 200), 2)
        if u != v and not graph.has_edge(u, v):
            chosen.add((min(u, v), max(u, v)))
    return [
        (sorted(graph.neighbors(u)), sorted(graph.neighbors(v)),
         len(graph.neighbors(u) & graph.neighbors(v))
         / len(graph.neighbors(u) | graph.neighbors(v)))
        for u, v in sorted(chosen)
    ]


def run_kmins_vs_bottomk():
    rows = []
    populations = _set_pairs()
    for k in (32, 128):
        kmins_estimates, bottomk_estimates, truths = [], [], []
        bank = HashBank(seed=102 + k, size=k)
        for set_a, set_b, true_j in populations:
            km_a, km_b = KMinHash(bank, False), KMinHash(bank, False)
            km_a.update_many(set_a)
            km_b.update_many(set_b)
            bk_a, bk_b = BottomK(max(k, 2), seed=103 + k), BottomK(max(k, 2), seed=103 + k)
            bk_a.update_many(set_a)
            bk_b.update_many(set_b)
            truths.append(true_j)
            kmins_estimates.append(km_a.jaccard(km_b))
            bottomk_estimates.append(bk_a.jaccard(bk_b))
        kmins_error = mean_relative_error(kmins_estimates, truths)
        bottomk_error = mean_relative_error(bottomk_estimates, truths)
        rows.append([8 * k, "k-mins", kmins_error])
        rows.append([8 * k, "bottom-k", bottomk_error])
        _SHAPE[("sketch", k, "kmins")] = kmins_error
        _SHAPE[("sketch", k, "bottomk")] = bottomk_error
    return rows


def test_e14a_kmins_vs_bottomk(benchmark):
    rows = benchmark.pedantic(run_kmins_vs_bottomk, rounds=1, iterations=1)
    emit(
        "e14a_kmins_vs_bottomk",
        format_table(
            ["bytes/set", "sketch", "Jaccard mean rel err"],
            rows,
            title="E14a: k-mins vs bottom-k at equal bytes (synth-dense "
            "neighbor-set pairs, degrees >> k)",
            precision=3,
        ),
    )
    for k in (32, 128):
        # bottom-k is the more memory-efficient Jaccard sketch (without-
        # replacement sampling); k-mins must stay within a small factor
        # of it — the documented premium for witness alignment — and
        # both must improve with k.
        kmins = _SHAPE[("sketch", k, "kmins")]
        bottomk = _SHAPE[("sketch", k, "bottomk")]
        assert bottomk <= kmins + 0.05, k
        assert kmins < 4.0 * bottomk + 0.05, k
    assert _SHAPE[("sketch", 128, "kmins")] < _SHAPE[("sketch", 32, "kmins")]
    assert _SHAPE[("sketch", 128, "bottomk")] < _SHAPE[("sketch", 32, "bottomk")]


# ----------------------------------------------------------------------
# E14b — exact vs Count-Min degrees
# ----------------------------------------------------------------------

DATASET = "synth-dense"


def run_degree_ablation():
    oracle = oracle_for(DATASET)
    graph = oracle.graph
    # Query within-community pairs: substantial true CN, so relative
    # error reflects degree quality rather than tiny denominators.
    pairs = []
    rng = random.Random(104)
    while len(pairs) < 100:
        community = rng.randrange(6)
        low = community * 200
        u, v = rng.sample(range(low, low + 200), 2)
        if u != v and not graph.has_edge(u, v):
            pairs.append((u, v))
    rows = []
    vertex_count = oracle.vertex_count
    budgets = (
        ("exact degrees (1x)", None),
        ("count-min 4x bytes", vertex_count),
        ("count-min 1x bytes", max(1, vertex_count // 4)),
        ("count-min 1/8x bytes", max(1, vertex_count // 32)),
    )
    for label, width in budgets:
        if width is None:
            config = SketchConfig(k=64, seed=105, track_witnesses=False)
        else:
            config = SketchConfig(
                k=64,
                seed=105,
                track_witnesses=False,
                degree_mode="countmin",
                countmin_width=width,
                countmin_depth=4,
            )
        predictor = MinHashLinkPredictor(config)
        predictor.process(stream_of(DATASET))
        profile = accuracy_profile(predictor, oracle, pairs, ["common_neighbors"])
        error = profile["common_neighbors"]["mre"]
        rows.append([label, error])
        _SHAPE[("degrees", label)] = error
    return rows


def test_e14b_degree_mode(benchmark):
    rows = benchmark.pedantic(run_degree_ablation, rounds=1, iterations=1)
    emit(
        "e14b_degree_mode",
        format_table(
            ["degree tracking", "CN mean rel err"],
            rows,
            title=f"E14b: exact vs Count-Min degrees on {DATASET} (k=64)",
            precision=3,
        ),
    )
    exact_error = _SHAPE[("degrees", "exact degrees (1x)")]
    generous = _SHAPE[("degrees", "count-min 4x bytes")]
    equal = _SHAPE[("degrees", "count-min 1x bytes")]
    tight = _SHAPE[("degrees", "count-min 1/8x bytes")]
    # Shape: error degrades monotonically as the table shrinks, a
    # 4x-budget Count-Min approaches the exact counters, and even at 4x
    # it is not better — confirming exact words as the right default.
    assert generous <= equal <= tight
    assert generous < 2.0 * exact_error + 0.05
    assert exact_error <= generous + 0.05
