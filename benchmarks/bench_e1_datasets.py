"""E1 — dataset statistics table (the paper's Table 1 analogue).

Regenerates the per-dataset structural statistics: |V|, |E|, mean and
max degree, fitted degree-tail exponent.  The benchmark timing measures
stream generation + statistics, i.e. the cost of standing a dataset up.
"""

from __future__ import annotations

from _common import emit
from repro.eval.reporting import format_table
from repro.graph import datasets


def build_table() -> str:
    rows = []
    for name in datasets.dataset_names():
        spec = datasets.spec(name)
        stats = datasets.statistics(name, include_triangles=True)
        rows.append(
            [
                name,
                spec.stands_in_for,
                int(stats["vertices"]),
                int(stats["edges"]),
                stats["mean_degree"],
                int(stats["max_degree"]),
                stats["tail_exponent"],
                int(stats["triangles"]),
                stats["transitivity"],
                f"{spec.scale:g}",
            ]
        )
    return format_table(
        [
            "dataset",
            "stands in for",
            "|V|",
            "|E|",
            "mean d",
            "max d",
            "tail α",
            "triangles",
            "transitivity",
            "scale",
        ],
        rows,
        title="E1: dataset statistics (synthetic SNAP stand-ins)",
        precision=2,
    )


def test_e1_dataset_statistics(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("e1_datasets", table)
    # Shape assertions: the stand-ins must hit their published targets.
    for name in datasets.dataset_names():
        spec = datasets.spec(name)
        stats = datasets.statistics(name)
        assert stats["edges"] == spec.edges
        assert stats["vertices"] <= spec.vertices  # isolated ids may be unused
        assert stats["vertices"] >= 0.7 * spec.vertices
