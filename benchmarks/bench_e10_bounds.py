"""E10 — the theoretical accuracy guarantee, checked empirically.

The abstract promises estimators "with theoretical accuracy guarantee";
for the collision estimator that is the Hoeffding tail::

    P[|Ĵ - J| >= ε] <= 2 exp(-2 k ε²)

This experiment measures the empirical violation rate over many
independent sketch pairs (fresh seeds) of known-Jaccard set pairs, for
several (k, ε), and asserts the bound is never exceeded (it should in
fact be loose — the binomial tail is tighter).
"""

from __future__ import annotations

from _common import SCALE, emit
from repro.core import hoeffding_failure_probability
from repro.eval.reporting import format_table
from repro.hashing import HashBank
from repro.sketches import KMinHash

TRIALS = 400 if SCALE == "full" else 150
TRUE_JACCARD = 0.25  # sets: |A|=|B|=400, overlap 160 -> J = 160/640


def violation_rate(k: int, epsilon: float) -> float:
    violations = 0
    set_a = list(range(0, 400))
    set_b = list(range(240, 640))
    for trial in range(TRIALS):
        bank = HashBank(seed=trial * 7919 + k, size=k)
        sa, sb = KMinHash(bank, False), KMinHash(bank, False)
        sa.update_many(set_a)
        sb.update_many(set_b)
        if abs(sa.jaccard(sb) - TRUE_JACCARD) >= epsilon:
            violations += 1
    return violations / TRIALS


GRID = [(32, 0.20), (64, 0.15), (128, 0.10), (256, 0.10), (256, 0.05)]


def run_experiment():
    rows = []
    for k, epsilon in GRID:
        empirical = violation_rate(k, epsilon)
        bound = hoeffding_failure_probability(k, epsilon)
        rows.append([k, epsilon, empirical, bound, empirical <= bound])
    return rows


def test_e10_hoeffding_bound(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        "e10_bounds",
        format_table(
            ["k", "ε", "empirical P[|Ĵ-J|≥ε]", "Hoeffding bound", "holds"],
            rows,
            title=(
                f"E10: guarantee check over {TRIALS} independent sketch pairs "
                f"(true J = {TRUE_JACCARD})"
            ),
            precision=4,
        ),
    )
    # Shape: the bound holds everywhere (the guarantee the abstract
    # advertises), with slack for finite-sample noise on the tightest
    # cells: allow the empirical rate one standard error above.
    import math

    for k, epsilon, empirical, bound, _ in rows:
        slack = math.sqrt(max(bound * (1 - bound), 0.25 / TRIALS) / TRIALS)
        assert empirical <= min(1.0, bound + 3 * slack + 0.02), (k, epsilon)
