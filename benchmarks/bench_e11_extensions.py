"""E11 — extension features: windows, streaming triangles, deletions.

Not part of the original paper's evaluation: these validate the
"future-work-flavoured" extensions DESIGN.md documents, at benchmark
scale.

**Windowed recency (E11a).**  A drifting stream: community structure A
for the first half, structure B for the second.  After the whole
stream, the full-history predictor still blends in stale structure-A
overlaps; the pane-rotated windowed predictor (window ≈ second half)
should estimate *recent* common neighbors markedly better.

**Streaming triangles (E11b).**  The one-pass triangle estimate
``Σ ĈN_before(edge)`` versus the exact count, on two registry datasets.

**Fully dynamic sketches (E11c).**  A churned stream whose stale
structure is explicitly retracted: the append-only predictor drifts
(deletes are invisible to it) while the dynamic predictor — via
explicit deletes or TTL expiry — tracks the live ground truth.  The
scenario lives in ``bench_e11c_dynamic.py`` (also a standalone CI
runner).
"""

from __future__ import annotations

import random

from _common import emit, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.core.triangles import StreamingTriangleCounter
from repro.core.windowed import WindowedMinHashPredictor
from repro.eval.metrics import mean_relative_error
from repro.eval.reporting import format_table
from repro.exact import ExactOracle
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.algorithms import triangle_count
from repro.graph.generators import planted_partition
from repro.graph.stream import Edge

_SHAPE = {}


def drifting_stream(seed: int = 71):
    """Two structural phases: community blocks shift between halves."""
    phase_a = planted_partition(
        n=1000, communities=10, internal_edges=14000, external_edges=1000, seed=seed
    )
    phase_b_raw = planted_partition(
        n=1000, communities=10, internal_edges=14000, external_edges=1000, seed=seed + 1
    )
    # Relabel phase B by +50 mod 1000 so its communities straddle two
    # phase-A blocks: overlaps genuinely change.
    phase_b = [
        Edge((e.u + 50) % 1000, (e.v + 50) % 1000, e.timestamp)
        for e in phase_b_raw
        if (e.u + 50) % 1000 != (e.v + 50) % 1000
    ]
    return list(phase_a), phase_b


def run_windowed():
    phase_a, phase_b = drifting_stream()
    stream = phase_a + phase_b
    recent_truth = ExactOracle()
    recent_truth.process(phase_b)
    config = SketchConfig(k=192, seed=72)
    full = MinHashLinkPredictor(config)
    # Window = 2 panes of half the second phase: covers phase B only.
    windowed = WindowedMinHashPredictor(
        config, pane_edges=len(phase_b) // 2, panes=2
    )
    for predictor in (full, windowed):
        predictor.process(stream)
    # Query pairs inside phase-B communities (blocks shifted by 50).
    rng = random.Random(73)
    pairs = []
    graph_b = recent_truth.graph
    while len(pairs) < 150:
        community = rng.randrange(10)
        low = (community * 100 + 50) % 1000
        u = (low + rng.randrange(100)) % 1000
        v = (low + rng.randrange(100)) % 1000
        if u != v and u in graph_b and v in graph_b and not graph_b.has_edge(u, v):
            pairs.append((u, v))
    truths = [recent_truth.score(u, v, "common_neighbors") for u, v in pairs]
    rows = []
    for label, predictor in (("full history", full), ("windowed (recent)", windowed)):
        estimates = [predictor.score(u, v, "common_neighbors") for u, v in pairs]
        error = mean_relative_error(estimates, truths)
        rows.append([label, error])
        _SHAPE[label] = error
    return rows


def run_triangles():
    rows = []
    for dataset in ("synth-grqc", "synth-communities"):
        edges = stream_of(dataset)
        exact = triangle_count(AdjacencyGraph.from_edges(edges))
        counter = StreamingTriangleCounter(SketchConfig(k=256, seed=74))
        counter.process(edges)
        estimate = counter.triangle_estimate()
        error = abs(estimate - exact) / exact
        rows.append([dataset, exact, estimate, error])
        _SHAPE[("triangles", dataset)] = error
    return rows


def test_e11_windowed_recency(benchmark):
    rows = benchmark.pedantic(run_windowed, rounds=1, iterations=1)
    emit(
        "e11_windowed",
        format_table(
            ["predictor", "CN mean rel err vs recent truth"],
            rows,
            title="E11a: drifting stream — estimating *recent* common "
            "neighbors (k=192)",
            precision=3,
        ),
    )
    assert _SHAPE["windowed (recent)"] < 0.5 * _SHAPE["full history"]


def test_e11_streaming_triangles(benchmark):
    rows = benchmark.pedantic(run_triangles, rounds=1, iterations=1)
    emit(
        "e11_triangles",
        format_table(
            ["dataset", "exact triangles", "streaming estimate", "rel err"],
            rows,
            title="E11b: one-pass triangle counting from the sketches (k=256)",
            precision=3,
        ),
    )
    for dataset in ("synth-grqc", "synth-communities"):
        assert _SHAPE[("triangles", dataset)] < 0.25, dataset


def test_e11c_dynamic_deletions(benchmark):
    from bench_e11c_dynamic import RATIO_BAR, run_churn

    results = benchmark.pedantic(run_churn, rounds=1, iterations=1)
    rows = [
        ["append-only full history", results["append_only_mre"]],
        ["dynamic (explicit deletes)", results["dynamic_deletes_mre"]],
        ["dynamic (TTL expiry)", results["dynamic_ttl_mre"]],
    ]
    emit(
        "e11_dynamic",
        format_table(
            ["predictor", "CN mean rel err vs live truth"],
            rows,
            title="E11c: churned stream — estimating the *live* graph "
            "after retractions (k=192)",
            precision=3,
        ),
    )
    for arm in ("dynamic_deletes_mre", "dynamic_ttl_mre"):
        assert results[arm] < RATIO_BAR * results["append_only_mre"], arm
