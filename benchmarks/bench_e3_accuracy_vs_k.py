"""E3 — estimation accuracy vs sketch size (the paper's accuracy figure).

For each dataset: mean relative error of Ĵ / ĈN / ÂA over two-hop query
pairs, as k sweeps.  Expected shape (and asserted): every curve decays,
consistently with the O(1/sqrt(k)) standard error of the underlying
collision estimator.
"""

from __future__ import annotations

from _common import accuracy_datasets, emit, k_grid, oracle_for, query_pairs, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.eval.experiments import accuracy_profile
from repro.eval.reporting import format_series

MEASURES = ("jaccard", "common_neighbors", "adamic_adar")
PAIRS = 400


def run_dataset(dataset: str):
    oracle = oracle_for(dataset)
    pairs = query_pairs(dataset, PAIRS, seed=3)
    curves = {measure: [] for measure in MEASURES}
    for k in k_grid():
        predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=4))
        predictor.process(stream_of(dataset))
        profile = accuracy_profile(predictor, oracle, pairs, MEASURES)
        for measure in MEASURES:
            curves[measure].append((k, profile[measure]["mre"]))
    return curves


def test_e3_accuracy_vs_k(benchmark):
    datasets_to_run = accuracy_datasets()

    def run_all():
        return {dataset: run_dataset(dataset) for dataset in datasets_to_run}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    blocks = []
    for dataset, curves in results.items():
        blocks.append(
            format_series(
                f"E3: mean relative error vs k on {dataset} ({PAIRS} two-hop pairs)",
                "k",
                curves,
                precision=3,
            )
        )
    emit("e3_accuracy_vs_k", "\n\n".join(blocks))

    for dataset, curves in results.items():
        for measure, points in curves.items():
            errors = [error for _, error in points]
            # Shape: smallest k must be markedly worse than largest k
            # (1/sqrt(k) decay), and the largest-k error must be usable.
            assert errors[0] > errors[-1], (dataset, measure)
            assert errors[-1] < 0.45, (dataset, measure)
