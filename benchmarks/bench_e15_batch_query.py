"""E15 — batch query throughput (the serving-tier benchmark).

Compares the per-pair ``predictor.score`` loop against the vectorized
``QueryEngine.score_many`` kernel on the same warm store and the same
pair batch, and measures how many candidates LSH pruning saves a
``top_k`` query relative to brute force.

Expected shape (asserted):

* ``score_many`` is at least **10×** the single-pair loop on a
  100k-pair batch (the tentpole acceptance bar),
* pruned ``top_k`` scores strictly fewer candidates than brute force
  while returning the *identical* ranked list (exact-recall banding).

Also runnable without pytest for the CI smoke step::

    PYTHONPATH=src python benchmarks/bench_e15_batch_query.py --smoke
"""

from __future__ import annotations

import sys
import time

import numpy as np

from _common import SCALE, bench_arg_parser, emit, emit_json, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.eval.reporting import format_table
from repro.serve import QueryEngine

DATASET = "synth-facebook" if SCALE == "full" else "synth-grqc"
N_PAIRS = 100_000
MEASURE = "adamic_adar"
SPEEDUP_BAR = 10.0

_STATE = {}
_RESULTS = {}


def _build(n_pairs=N_PAIRS, k=128):
    predictor = MinHashLinkPredictor(SketchConfig(k=k, seed=2))
    predictor.process(stream_of(DATASET))
    engine = QueryEngine(predictor)
    rng = np.random.default_rng(7)
    vertices = engine.store.vertex_ids
    pairs = np.column_stack(
        [
            rng.choice(vertices, size=n_pairs),
            rng.choice(vertices, size=n_pairs),
        ]
    ).astype(np.int64)
    return predictor, engine, pairs


def _get_state():
    if not _STATE:
        predictor, engine, pairs = _build()
        _STATE.update(predictor=predictor, engine=engine, pairs=pairs)
    return _STATE


def _loop_scores(predictor, pairs):
    return [predictor.score(int(u), int(v), MEASURE) for u, v in pairs]


def test_e15_single_pair_loop(benchmark):
    state = _get_state()
    benchmark.pedantic(
        _loop_scores,
        args=(state["predictor"], state["pairs"]),
        rounds=2,
        iterations=1,
    )
    _RESULTS["loop_seconds"] = benchmark.stats.stats.mean


def test_e15_score_many(benchmark):
    state = _get_state()
    benchmark.pedantic(
        state["engine"].score_many,
        args=(state["pairs"], MEASURE),
        rounds=5,
        iterations=1,
    )
    _RESULTS["batch_seconds"] = benchmark.stats.stats.mean


def test_e15_batch_matches_loop(benchmark):
    state = _get_state()
    sample = state["pairs"][:2_000]
    batch = benchmark.pedantic(
        state["engine"].score_many, args=(sample, MEASURE), rounds=1, iterations=1
    )
    loop = _loop_scores(state["predictor"], sample)
    np.testing.assert_allclose(batch, loop, rtol=1e-12, atol=1e-12)


def test_e15_topk_prune_vs_brute(benchmark):
    state = _get_state()
    engine = state["engine"]
    probes = [int(v) for v in engine.store.vertex_ids[:25]]

    def run_pruned():
        return [engine.top_k(u, "jaccard", k=10, prune=True) for u in probes]

    pruned_lists = benchmark.pedantic(run_pruned, rounds=2, iterations=1)
    pruned_scored = engine.stats()["candidates_scored"]
    engine.refresh()
    brute_lists = [engine.top_k(u, "jaccard", k=10, prune=False) for u in probes]
    brute_scored = engine.stats()["candidates_scored"]
    engine.refresh()

    assert pruned_lists[-len(brute_lists):] == brute_lists  # identical answers
    _RESULTS["pruned_candidates"] = pruned_scored // 2  # 2 pedantic rounds
    _RESULTS["brute_candidates"] = brute_scored


def test_e15_report_and_shape(benchmark):
    assert {"loop_seconds", "batch_seconds"} <= set(_RESULTS)
    rows = benchmark.pedantic(_report_rows, rounds=1, iterations=1)
    emit(
        "e15_batch_query",
        format_table(
            ["metric", "value"],
            rows,
            title=f"E15: batch {MEASURE} throughput on {DATASET} ({N_PAIRS} pairs)",
            precision=1,
        ),
    )
    speedup = _RESULTS["loop_seconds"] / _RESULTS["batch_seconds"]
    emit_json(
        "e15_batch_query",
        {
            "dataset": DATASET,
            "pairs": N_PAIRS,
            "loop_pairs_per_second": N_PAIRS / _RESULTS["loop_seconds"],
            "batch_pairs_per_second": N_PAIRS / _RESULTS["batch_seconds"],
            "speedup": speedup,
            "topk_candidates_brute": _RESULTS["brute_candidates"],
            "topk_candidates_pruned": _RESULTS["pruned_candidates"],
        },
    )
    assert speedup >= SPEEDUP_BAR, f"score_many only {speedup:.1f}x the loop"
    assert 0 < _RESULTS["pruned_candidates"] < _RESULTS["brute_candidates"]


def _report_rows():
    loop = _RESULTS["loop_seconds"]
    batch = _RESULTS["batch_seconds"]
    return [
        ["loop pairs/sec", int(N_PAIRS / loop)],
        ["score_many pairs/sec", int(N_PAIRS / batch)],
        ["speedup", loop / batch],
        ["top-k candidates (brute)", _RESULTS["brute_candidates"]],
        ["top-k candidates (pruned)", _RESULTS["pruned_candidates"]],
    ]


def main(argv=None):
    """Standalone entry point for the CI smoke step (no pytest)."""
    args = bench_arg_parser("E15 batch query throughput smoke").parse_args(argv)
    smoke = args.smoke
    n_pairs = 20_000 if smoke else N_PAIRS
    predictor, engine, pairs = _build(n_pairs=n_pairs)

    started = time.perf_counter()
    loop = _loop_scores(predictor, pairs)
    loop_seconds = time.perf_counter() - started

    engine.score_many(pairs[:100], MEASURE)  # warm the kernel path
    started = time.perf_counter()
    batch = engine.score_many(pairs, MEASURE)
    batch_seconds = time.perf_counter() - started

    np.testing.assert_allclose(batch, loop, rtol=1e-12, atol=1e-12)
    speedup = loop_seconds / batch_seconds

    probes = [int(v) for v in engine.store.vertex_ids[:10]]
    engine.refresh()
    pruned_lists = [engine.top_k(u, "jaccard", k=10, prune=True) for u in probes]
    pruned_scored = engine.stats()["candidates_scored"]
    engine.refresh()
    brute_lists = [engine.top_k(u, "jaccard", k=10, prune=False) for u in probes]
    brute_scored = engine.stats()["candidates_scored"]

    print(
        f"e15 smoke={smoke} pairs={n_pairs} "
        f"loop={n_pairs / loop_seconds:,.0f}/s "
        f"batch={n_pairs / batch_seconds:,.0f}/s speedup={speedup:.1f}x "
        f"topk candidates {brute_scored} -> {pruned_scored}"
    )
    emit_json(
        "e15_batch_query_smoke" if smoke else "e15_batch_query",
        {
            "dataset": DATASET,
            "pairs": n_pairs,
            "loop_pairs_per_second": n_pairs / loop_seconds,
            "batch_pairs_per_second": n_pairs / batch_seconds,
            "speedup": speedup,
            "topk_candidates_brute": brute_scored,
            "topk_candidates_pruned": pruned_scored,
        },
        path=args.json or None,
    )
    if pruned_lists != brute_lists:
        print("FAIL: pruned top-k disagrees with brute force", file=sys.stderr)
        return 1
    if not 0 < pruned_scored < brute_scored:
        print("FAIL: pruning did not reduce candidate work", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_BAR:
        print(f"FAIL: speedup {speedup:.1f}x below {SPEEDUP_BAR}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
