"""E7 — end-task link-prediction quality (the paper's AUC/precision figure).

Temporal protocol: train on the first 70% of each stream, score the
held-out future edges against sampled non-edges (5x random negatives),
and compare methods by AUC / precision@N / average precision — plus the
rank agreement (Kendall τ) between each sketch ranking and the exact
ranking.

Stream order: the SNAP stand-ins are replayed in *seeded random order*,
matching the standard link-prediction protocol (and the arrival
statistics of real interaction streams, where edges among existing users
keep arriving).  A pure growth-order stream (Barabási–Albert) is
included as a labelled stress row — there, *every* neighborhood measure
anti-predicts, because future edges attach brand-new vertices; this is
a property of the workload, not of any estimator, so the stress row is
excluded from the shape assertions.

Expected shape (asserted): the sketch methods recover most of the exact
snapshot's AUC margin and beat the degree-only
(preferential-attachment) floor on every non-stress dataset.
"""

from __future__ import annotations

from _common import SCALE, emit, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.errors import EvaluationError
from repro.eval.experiments import (
    rank_agreement,
    ranking_quality,
    temporal_ranking_task,
)
from repro.eval.reporting import format_table
from repro.exact import ExactOracle, NeighborReservoirBaseline
from repro.graph.generators import barabasi_albert
from repro.graph.stream import shuffled

DATASETS = (
    ["synth-communities", "synth-facebook", "synth-grqc", "synth-condmat"]
    if SCALE == "full"
    else ["synth-communities", "synth-facebook"]
)
_SHAPE = {}


def _task_stream(dataset: str):
    if dataset == "growth-order BA (stress)":
        return barabasi_albert(n=3000, m=6, seed=23)
    if dataset == "synth-communities":
        return stream_of(dataset)  # already order-randomised
    return shuffled(stream_of(dataset), seed=23)


def run_dataset(dataset: str):
    train, positives, negatives = temporal_ranking_task(
        _task_stream(dataset),
        train_fraction=0.7,
        negative_ratio=5.0,
        max_positives=300,
        seed=21,
    )
    oracle = ExactOracle()
    oracle.process(train)
    methods = {
        "exact": oracle,
        "minhash k=128": MinHashLinkPredictor(SketchConfig(k=128, seed=22)),
        "neighbor reservoir": NeighborReservoirBaseline(256, seed=22),
    }
    for name, predictor in methods.items():
        if name != "exact":
            predictor.process(train)
    rows = []
    eval_pairs = positives + negatives
    for name, predictor in methods.items():
        result = ranking_quality(
            predictor, positives, negatives, "adamic_adar",
            precision_levels=(10, 50, 100),
        )
        if name == "exact":
            tau = 1.0
        else:
            try:
                tau = rank_agreement(predictor, oracle, eval_pairs, "adamic_adar")[
                    "kendall_tau"
                ]
            except EvaluationError:
                # Constant score list (e.g. all-zero AA on the growth-
                # order stress case): agreement is undefined.
                tau = float("nan")
        rows.append(
            [
                dataset,
                name,
                result.auc,
                result.precision.get(10, float("nan")),
                result.precision.get(100, float("nan")),
                result.average_precision,
                tau,
            ]
        )
        _SHAPE[(dataset, name)] = result.auc
        if name == "minhash k=128":
            _SHAPE[(dataset, "minhash p@10")] = result.precision.get(10, float("nan"))
    floor = ranking_quality(oracle, positives, negatives, "preferential_attachment")
    rows.append(
        [
            dataset,
            "degree floor (PA)",
            floor.auc,
            floor.precision.get(10, float("nan")),
            floor.precision.get(100, float("nan")),
            floor.average_precision,
            float("nan"),
        ]
    )
    _SHAPE[(dataset, "floor")] = floor.auc
    return rows


def test_e7_prediction_quality(benchmark):
    cases = DATASETS + ["growth-order BA (stress)"]

    def run_all():
        rows = []
        for dataset in cases:
            rows.extend(run_dataset(dataset))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "e7_prediction_quality",
        format_table(
            ["dataset", "method", "AUC", "p@10", "p@100", "AP", "τ vs exact"],
            rows,
            title="E7: temporal link prediction (Adamic–Adar ranking, "
            "70/30 split, 5x random negatives)",
            precision=3,
        ),
    )
    for dataset in DATASETS:
        exact_auc = _SHAPE[(dataset, "exact")]
        sketch_auc = _SHAPE[(dataset, "minhash k=128")]
        # The task is predictable at all.  (Chung–Lu stand-ins carry no
        # planted clustering, so their AA margins are genuinely smaller
        # than the community datasets' — e.g. exact AUC ~0.73 on
        # synth-condmat at full scale.)
        assert exact_auc > 0.70, dataset
        # The sketch recovers at least half of the exact AUC margin
        # over chance ...
        assert sketch_auc - 0.5 > 0.5 * (exact_auc - 0.5), dataset
        # ... and is essentially perfect at the top of the ranking —
        # the regime a recommender serves.
        assert _SHAPE[(dataset, "minhash p@10")] >= 0.8, dataset
    # The degree-only floor is only a meaningful floor where the
    # generative process is not itself preferential attachment (on the
    # BA-built stand-ins, degree product is the true model and tops
    # every neighborhood measure — an artifact of the synthetic data,
    # noted in EXPERIMENTS.md).
    assert (
        _SHAPE[("synth-communities", "minhash k=128")]
        > _SHAPE[("synth-communities", "floor")]
    )
