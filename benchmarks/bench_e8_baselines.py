"""E8 — equal-space comparison against the sampling baselines.

The paper's claim is about the *massive-graph regime*: vertex degrees
dwarf any affordable per-vertex budget, and the stream is far longer
than memory.  Laptop-scale SNAP graphs are too small to exhibit that
regime (an edge reservoir given the sketch's total budget simply keeps
most of the graph), so this experiment uses the ``synth-dense`` stream
(mean degree ~147) and budgets of 64–256 bytes/vertex — the same
degree-to-budget ratio as a k=128 sketch on a mean-degree-10⁴ graph.

At each per-vertex budget B the three methods get equal space:
witnessless MinHash with ``k = B/8`` slots, a neighbor reservoir of
``B/8`` ids per vertex, and an edge reservoir with the same *total*
pool (``|V|·B/8`` packed edges).  Error metric: mean relative error of
common-neighbor estimates over within-community non-adjacent pairs.

Expected shape (asserted): MinHash wins at every budget, and the gap
widens as the budget tightens — the edge reservoir pays a quadratic
``1/p²`` penalty and the neighbor reservoir a product-of-inclusions
penalty, while MinHash estimates the overlap ratio directly.
"""

from __future__ import annotations

import random

from _common import emit, oracle_for, stream_of
from repro.core import MinHashLinkPredictor, SketchConfig
from repro.eval.experiments import accuracy_profile
from repro.eval.reporting import format_series
from repro.exact import EdgeReservoirBaseline, NeighborReservoirBaseline

DATASET = "synth-dense"
BUDGET_SLOTS = (8, 16, 32)  # witnessless slots; bytes/vertex = 8 * slots
COMMUNITIES = 6
COMMUNITY_SIZE = 200


def community_pairs(count: int = 120, seed: int = 51):
    """Non-adjacent within-community pairs (high CN, the query regime)."""
    graph = oracle_for(DATASET).graph
    rng = random.Random(seed)
    pairs = set()
    while len(pairs) < count:
        community = rng.randrange(COMMUNITIES)
        low = community * COMMUNITY_SIZE
        u, v = rng.sample(range(low, low + COMMUNITY_SIZE), 2)
        if not graph.has_edge(u, v):
            pairs.add((min(u, v), max(u, v)))
    return sorted(pairs)


def run_experiment():
    oracle = oracle_for(DATASET)
    pairs = community_pairs()
    vertices = oracle.vertex_count
    curves = {"minhash": [], "neighbor reservoir": [], "edge reservoir": []}
    for slots in BUDGET_SLOTS:
        budget = 8 * slots
        methods = {
            "minhash": MinHashLinkPredictor(
                SketchConfig(k=slots, seed=52, track_witnesses=False)
            ),
            "neighbor reservoir": NeighborReservoirBaseline(slots, seed=52),
            "edge reservoir": EdgeReservoirBaseline(
                max(1, vertices * budget // 8), seed=52
            ),
        }
        for name, predictor in methods.items():
            predictor.process(stream_of(DATASET))
            profile = accuracy_profile(predictor, oracle, pairs, ["common_neighbors"])
            curves[name].append((budget, profile["common_neighbors"]["mre"]))
    return curves


def test_e8_equal_space_baselines(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        "e8_baselines",
        format_series(
            f"E8: CN mean relative error at equal per-vertex bytes on "
            f"{DATASET} (mean degree ~147, within-community pairs)",
            "bytes/vertex",
            curves,
            precision=3,
        ),
    )
    # Shape: minhash wins at every matched budget...
    for index in range(len(BUDGET_SLOTS)):
        assert curves["minhash"][index][1] < curves["edge reservoir"][index][1]
        assert curves["minhash"][index][1] < curves["neighbor reservoir"][index][1]
    # ...and the margin over the edge reservoir widens as the budget
    # tightens (the 1/p² penalty).
    tight_margin = curves["edge reservoir"][0][1] / curves["minhash"][0][1]
    loose_margin = curves["edge reservoir"][-1][1] / curves["minhash"][-1][1]
    assert tight_margin > loose_margin
