"""E13 — directed extension: per-direction accuracy and what folding loses.

Not part of the original paper (which folds directed datasets to
undirected before sketching).  Two studies on a directed power-law
stream:

* **accuracy** — mean relative error of the directed sketch against the
  exact directed oracle, per direction, at two sketch sizes; the same
  1/√k behaviour as the undirected E3 is expected;
* **information loss of folding** — among co-cited candidate pairs
  (sharing in-neighbors), how often the in/out similarities diverge
  strongly; the directed Kendall τ between in- and out-rankings
  quantifies that the two directions rank candidates differently,
  i.e. folding collapses two distinct signals into one.
"""

from __future__ import annotations

import random

from _common import SCALE, emit
from repro.core import DirectedExactOracle, DirectedMinHashPredictor, SketchConfig
from repro.eval.metrics import kendall_tau, mean_relative_error
from repro.eval.reporting import format_table
from repro.graph.generators import chung_lu

ARCS = 24_000 if SCALE == "full" else 12_000
_SHAPE = {}


def build_workload():
    arcs = chung_lu(n=ARCS // 8, edges=ARCS, exponent=2.2, seed=91)
    oracle = DirectedExactOracle()
    for arc in arcs:
        oracle.update(arc.u, arc.v)
    rng = random.Random(92)
    followers = [
        v for v in oracle.graph.vertices() if oracle.graph.out_degree(v) >= 2
    ]
    pairs = set()
    while len(pairs) < 250:
        follower = rng.choice(followers)
        u, v = rng.sample(sorted(oracle.graph.successors(follower)), 2)
        pairs.add((min(u, v), max(u, v)))
    return arcs, oracle, sorted(pairs)


def run_experiment():
    arcs, oracle, pairs = build_workload()
    rows = []
    for k in (64, 256):
        sketch = DirectedMinHashPredictor(SketchConfig(k=k, seed=93))
        for arc in arcs:
            sketch.update(arc.u, arc.v)
        for direction in ("in", "out"):
            estimates, truths = [], []
            for u, v in pairs:
                truth = oracle.score_directed(u, v, "common_neighbors", direction)
                if truth <= 0:
                    continue
                truths.append(truth)
                estimates.append(
                    sketch.score_directed(u, v, "common_neighbors", direction)
                )
            error = mean_relative_error(estimates, truths)
            rows.append([k, direction, len(truths), error])
            _SHAPE[(k, direction)] = error
    # Folding-loss statistic: rank agreement between the two exact
    # directional rankings over the candidate pairs.
    in_scores = [
        oracle.score_directed(u, v, "common_neighbors", "in") for u, v in pairs
    ]
    out_scores = [
        oracle.score_directed(u, v, "common_neighbors", "out") for u, v in pairs
    ]
    tau = kendall_tau(in_scores, out_scores)
    _SHAPE["tau"] = tau
    return rows, tau


def test_e13_directed(benchmark):
    rows, tau = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["k", "direction", "pairs", "CN mean rel err"],
        rows,
        title=(
            f"E13: directed sketch accuracy ({ARCS} arcs, co-cited pairs); "
            f"exact in-vs-out ranking agreement τ = {tau:.3f}"
        ),
        precision=3,
    )
    emit("e13_directed", table)
    # Shape 1: accuracy improves with k in both directions.
    for direction in ("in", "out"):
        assert _SHAPE[(256, direction)] < _SHAPE[(64, direction)], direction
        assert _SHAPE[(256, direction)] < 0.5, direction
    # Shape 2: the two directions rank candidates differently (folding
    # loses information): τ clearly below 0.8.
    assert _SHAPE["tau"] < 0.8
