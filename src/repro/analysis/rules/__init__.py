"""The repro-lint rule catalog.

============  =======================================================
rule id       invariant
============  =======================================================
``RL001``     hot-path modules are deterministic (no clocks, no
              ambient randomness, no float ``==``, no hash-order
              leaking into returned containers)
``RL002``     raises use the :mod:`repro.errors` taxonomy; dead-letter
              reason literals stay inside the closed ``REASONS``
              vocabulary
``RL003``     instrument names are lowercase snake_case, one name has
              one kind across the tree, label sets are literal
``RL004``     attributes written on both sides of a thread/asyncio
              boundary are declared in the module's publication set
``RL005``     ``repro.api.__all__`` matches its public defs; examples
              and docstring snippets import facade names from the
              facade
============  =======================================================

:func:`default_rules` builds one fresh instance of each — rules carry
cross-file state (RL003's kind registry), so a runner must never share
instances between concurrent runs.
"""

from __future__ import annotations

from typing import List

from repro.analysis.rules.api_surface import ApiSurfaceRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.concurrency import ConcurrencyBoundaryRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.metrics import MetricsHygieneRule
from repro.analysis.rules.taxonomy import TaxonomyRule

__all__ = [
    "ApiSurfaceRule",
    "ConcurrencyBoundaryRule",
    "DeterminismRule",
    "MetricsHygieneRule",
    "Rule",
    "TaxonomyRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """One fresh instance of every shipped rule, in rule-id order."""
    return [
        DeterminismRule(),
        TaxonomyRule(),
        MetricsHygieneRule(),
        ConcurrencyBoundaryRule(),
        ApiSurfaceRule(),
    ]
