"""RL001 — determinism in kernel/hot-path modules.

The block-ingest kernel, the packed scoring kernels, and every hashing
and sketch module promise **bit-identical** results across the scalar,
block and sharded paths.  That promise dies quietly the moment a hot
path consults a wall clock, reaches for ambient randomness, compares
floats with ``==``, or lets set/dict iteration order leak into a
returned container.  RL001 rejects those constructs at the AST level
in the modules that carry the promise:

* calls into ``random.*`` (an explicitly seeded ``random.Random(seed)``
  construction is allowed — that is how :mod:`repro.sketches.reservoir`
  gets *reproducible* randomness), ``time.*``, ``os.urandom``,
  ``secrets.*``, ``uuid.*``;
* ``np.random.*`` — the legacy global RNG is never acceptable in a
  kernel; ``np.random.default_rng(seed)`` with an explicit seed passes;
* ``==`` / ``!=`` where either side is a float literal or a ``float()``
  call — sketch equality must be integer-exact or tolerance-based;
* iteration over a ``set``/``dict`` literal (or a locally built
  ``set()``/``frozenset()``) whose elements flow into a returned
  container — hash-order becomes output order.  Wrapping the iterable
  in ``sorted(...)`` restores determinism and passes.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["DeterminismRule", "HOT_PATH_MODULES", "HOT_PATH_DIRS"]

#: Modules under the repro package that carry the bit-identity contract.
HOT_PATH_MODULES = frozenset(
    {"core/block.py", "serve/kernels.py", "serve/packed.py"}
)

#: Whole directories under the repro package that are hot paths.
HOT_PATH_DIRS = ("hashing", "sketches")

_BANNED_MODULES = {"time", "secrets", "uuid"}
_MUTATORS = {"append", "add", "extend", "insert", "update", "setdefault", "__setitem__"}


class DeterminismRule(Rule):
    rule_id = "RL001"
    title = "hot-path modules must be deterministic"

    def __init__(
        self,
        hot_modules: Sequence[str] = HOT_PATH_MODULES,
        hot_dirs: Sequence[str] = HOT_PATH_DIRS,
    ) -> None:
        self.hot_modules = frozenset(hot_modules)
        self.hot_dirs = tuple(hot_dirs)

    def applies_to(self, ctx: ModuleContext) -> bool:
        rel = ctx.package_rel
        if rel in self.hot_modules:
            return True
        head = rel.split("/", 1)[0]
        return head in self.hot_dirs

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not self.applies_to(ctx):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node))
            elif isinstance(node, ast.Compare):
                findings.extend(self._check_compare(ctx, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_unordered_flow(ctx, node))
        return findings

    # -- nondeterministic calls ----------------------------------------

    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterable[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return []
        parts = name.split(".")
        head = parts[0]
        if head == "random":
            if name == "random.Random" and node.args:
                return []  # explicitly seeded: reproducible by construction
            return [
                ctx.finding(
                    node, self.rule_id,
                    f"call to {name}() in a hot-path module (ambient randomness "
                    f"breaks the bit-identity contract; seed an explicit "
                    f"random.Random(seed) instead)",
                )
            ]
        if head in _BANNED_MODULES and len(parts) > 1:
            return [
                ctx.finding(
                    node, self.rule_id,
                    f"call to {name}() in a hot-path module (wall clocks and "
                    f"ambient entropy are nondeterministic inputs)",
                )
            ]
        if name == "os.urandom":
            return [
                ctx.finding(
                    node, self.rule_id,
                    "call to os.urandom() in a hot-path module",
                )
            ]
        if head in ("np", "numpy") and len(parts) >= 2 and parts[1] == "random":
            if len(parts) == 3 and parts[2] == "default_rng" and node.args:
                return []  # np.random.default_rng(seed): explicitly seeded
            return [
                ctx.finding(
                    node, self.rule_id,
                    f"call to {name}() in a hot-path module (the global numpy "
                    f"RNG is unseeded shared state; pass an explicit "
                    f"np.random.default_rng(seed))",
                )
            ]
        return []

    # -- float equality -------------------------------------------------

    def _check_compare(self, ctx: ModuleContext, node: ast.Compare) -> Iterable[Finding]:
        comparators = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, comparators, comparators[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if self._is_floatish(side):
                    spelled = "==" if isinstance(op, ast.Eq) else "!="
                    return [
                        ctx.finding(
                            node, self.rule_id,
                            f"float {spelled} comparison in a hot-path module "
                            f"(use an integer representation or an explicit "
                            f"tolerance)",
                        )
                    ]
        return []

    @staticmethod
    def _is_floatish(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant) \
                and type(node.operand.value) is float:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "float":
            return True
        return False

    # -- unordered iteration flowing into returns -----------------------

    def _check_unordered_flow(
        self, ctx: ModuleContext, func: ast.AST
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        returned = self._returned_names(func)
        unordered_locals = self._unordered_locals(func)

        def is_unordered(expr: ast.AST) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
                return True
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                    and expr.func.id in ("set", "frozenset"):
                return True
            if isinstance(expr, ast.Name) and expr.id in unordered_locals:
                return True
            return False

        def comp_over_unordered(expr: ast.AST) -> bool:
            for sub in ast.walk(expr):
                if isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                    if any(is_unordered(gen.iter) for gen in sub.generators):
                        return True
            return False

        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                if comp_over_unordered(node.value):
                    findings.append(
                        ctx.finding(
                            node, self.rule_id,
                            "returned container is built by iterating a set/dict "
                            "(hash order becomes output order; sort first)",
                        )
                    )
            elif isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if any(t in returned for t in targets) and comp_over_unordered(node.value):
                    findings.append(
                        ctx.finding(
                            node, self.rule_id,
                            "returned value is built by iterating a set/dict "
                            "(hash order becomes output order; sort first)",
                        )
                    )
            elif isinstance(node, ast.For) and is_unordered(node.iter):
                if self._mutates_returned(node, returned):
                    findings.append(
                        ctx.finding(
                            node, self.rule_id,
                            "loop over a set/dict feeds a returned container "
                            "(hash order becomes output order; sort first)",
                        )
                    )
        return findings

    @staticmethod
    def _returned_names(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            candidates: List[ast.AST] = [value]
            if isinstance(value, ast.Tuple):
                candidates = list(value.elts)
            elif isinstance(value, ast.Call):
                candidates = list(value.args)
            for candidate in candidates:
                if isinstance(candidate, ast.Name):
                    names.add(candidate.id)
        return names

    @staticmethod
    def _unordered_locals(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = node.value
                if isinstance(value, (ast.Set, ast.SetComp, ast.DictComp)) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("set", "frozenset")
                ):
                    names.add(node.targets[0].id)
        return names

    @staticmethod
    def _mutates_returned(loop: ast.For, returned: Set[str]) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in returned:
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in returned:
                        return True
        return False
