"""RL005 — the facade is the API; the API is the facade.

:mod:`repro.api` is the stable, five-verb surface embedders are told
to program against, and :mod:`repro` re-exports the supporting types.
Deep modules stay importable for power users, but two kinds of drift
quietly erode the contract:

* a public ``def`` added to ``repro/api.py`` without an ``__all__``
  entry (or an ``__all__`` entry whose def was renamed away) — the
  facade's docs and its reality diverge;
* an example or docstring snippet that imports a *facade-available*
  name from a deep path (``from repro.core import SketchConfig``) —
  copy-paste propagates the deep spelling, and the facade stops being
  load-bearing.

RL005 therefore checks three things:

1. in ``repro/api.py``: the ``__all__`` literal is exactly the set of
   public top-level ``def``/``class`` names;
2. in any module with a literal ``__all__``: every entry is actually
   bound at module top level (def, class, assignment, or import);
3. in ``examples/`` and in ``>>>`` docstring snippets anywhere: a name
   exported by the facade is imported *from* the facade (``repro`` or
   ``repro.api``), never from a deep module; underscore-private names
   are never imported in examples at all.

Names the facade does **not** export (``format_table``, the dataset
loaders, directed variants, ...) are exactly the power-user surface —
deep imports of those are fine and are not flagged.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules.base import Rule

__all__ = ["ApiSurfaceRule", "FACADE_MODULES"]

#: Modules whose exports *are* the supported surface.
FACADE_MODULES = ("repro", "repro.api")

_SNIPPET_IMPORT_RE = re.compile(
    r">>>\s+from\s+(repro(?:\.[A-Za-z0-9_.]+)?)\s+import\s+([A-Za-z0-9_,\s]+)"
)


class ApiSurfaceRule(Rule):
    rule_id = "RL005"
    title = "repro.api.__all__ matches its defs; examples import through the facade"

    def __init__(
        self,
        facade_modules: Sequence[str] = FACADE_MODULES,
        facade_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.facade_modules = tuple(facade_modules)
        self._facade_names: Optional[FrozenSet[str]] = (
            None if facade_names is None else frozenset(facade_names)
        )

    @property
    def facade_names(self) -> FrozenSet[str]:
        """Union of the facade modules' live ``__all__`` lists.

        Resolved lazily from the running package so that renaming a
        facade export immediately re-scopes the rule — the lint pass
        checks the contract as it is, not a copy of it.
        """
        if self._facade_names is None:
            import repro
            import repro.api

            self._facade_names = frozenset(repro.__all__) | frozenset(repro.api.__all__)
        return self._facade_names

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        exported = self._all_literal(ctx.tree)
        if ctx.package_rel == "api.py":
            findings.extend(self._check_facade_module(ctx, exported))
        if exported is not None:
            findings.extend(self._check_all_resolves(ctx, exported))
        if ctx.is_example:
            findings.extend(self._check_example_imports(ctx))
        findings.extend(self._check_docstring_snippets(ctx))
        return findings

    # -- facade definition ----------------------------------------------

    @staticmethod
    def _all_literal(tree: ast.Module) -> Optional[ast.Assign]:
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == "__all__" \
                    and isinstance(node.value, (ast.List, ast.Tuple)):
                return node
        return None

    def _check_facade_module(
        self, ctx: ModuleContext, exported: Optional[ast.Assign]
    ) -> Iterable[Finding]:
        if exported is None:
            return [
                ctx.finding(
                    1, self.rule_id,
                    "repro/api.py must pin its surface with a literal __all__",
                )
            ]
        names: Set[str] = set()
        for element in exported.value.elts:  # type: ignore[union-attr]
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.add(element.value)
        public_defs = {
            node.name
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        }
        findings: List[Finding] = []
        for missing in sorted(public_defs - names):
            findings.append(
                ctx.finding(
                    exported, self.rule_id,
                    f"public def {missing!r} in repro/api.py is not listed in "
                    f"__all__ (the facade surface must be exact — export it or "
                    f"prefix it with an underscore)",
                )
            )
        for extra in sorted(names - public_defs):
            if self._bound_at_top_level(ctx.tree, extra):
                continue  # re-exported value (e.g. a dataclass imported here)
            findings.append(
                ctx.finding(
                    exported, self.rule_id,
                    f"__all__ entry {extra!r} in repro/api.py has no public "
                    f"definition behind it",
                )
            )
        return findings

    def _check_all_resolves(
        self, ctx: ModuleContext, exported: ast.Assign
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for element in exported.value.elts:  # type: ignore[union-attr]
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                findings.append(
                    ctx.finding(
                        element, self.rule_id,
                        "__all__ must contain only string literals",
                    )
                )
                continue
            if not self._bound_at_top_level(ctx.tree, element.value):
                findings.append(
                    ctx.finding(
                        element, self.rule_id,
                        f"__all__ entry {element.value!r} is not bound at module "
                        f"top level (stale export?)",
                    )
                )
        return findings

    @staticmethod
    def _bound_at_top_level(tree: ast.Module, name: str) -> bool:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name == name:
                    return True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return True
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.target.id == name:
                    return True
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    if bound == name:
                        return True
            elif isinstance(node, (ast.If, ast.Try)):
                # TYPE_CHECKING / optional-dependency guards
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            bound = alias.asname or alias.name.split(".", 1)[0]
                            if bound == name:
                                return True
                    elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)) \
                            and sub.name == name:
                        return True
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if isinstance(target, ast.Name) and target.id == name:
                                return True
        return False

    # -- example imports ------------------------------------------------

    def _check_example_imports(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        facade = self.facade_names
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            module = node.module
            if module != "repro" and not module.startswith("repro."):
                continue
            deep = module not in self.facade_modules
            for alias in node.names:
                if alias.name.startswith("_"):
                    findings.append(
                        ctx.finding(
                            node, self.rule_id,
                            f"example imports private name {alias.name!r} from "
                            f"{module} (examples demonstrate the supported "
                            f"surface only)",
                        )
                    )
                elif deep and alias.name in facade:
                    findings.append(
                        ctx.finding(
                            node, self.rule_id,
                            f"example imports {alias.name!r} from {module}, but "
                            f"the facade exports it — import it from 'repro' so "
                            f"examples exercise the supported surface",
                        )
                    )
        return findings

    # -- docstring snippets ---------------------------------------------

    def _check_docstring_snippets(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        facade = self.facade_names
        for owner in ast.walk(ctx.tree):
            if not isinstance(
                owner, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            docstring_node = self._docstring_node(owner)
            if docstring_node is None:
                continue
            text = docstring_node.value
            base_line = docstring_node.lineno
            for offset, line in enumerate(text.splitlines()):
                match = _SNIPPET_IMPORT_RE.search(line)
                if match is None:
                    continue
                module = match.group(1)
                if module in self.facade_modules:
                    continue
                imported = [name.strip() for name in match.group(2).split(",")]
                for name in imported:
                    if name in facade:
                        findings.append(
                            ctx.finding(
                                base_line + offset, self.rule_id,
                                f"docstring snippet imports {name!r} from "
                                f"{module}; the facade exports it — spell the "
                                f"snippet 'from repro import {name}'",
                            )
                        )
        return findings

    @staticmethod
    def _docstring_node(owner: ast.AST) -> Optional[ast.Constant]:
        body = getattr(owner, "body", None)
        if not body:
            return None
        first = body[0]
        if isinstance(first, ast.Expr) and isinstance(first.value, ast.Constant) \
                and isinstance(first.value.value, str):
            return first.value
        return None
