"""RL004 — the thread/asyncio publication boundary (hot-swap contract).

The serving tier's core invariant is *immutable-generation publication*:
the ingest thread builds a frozen snapshot off the event loop and
publishes it with **one reference assignment**; the asyncio side reads
that reference exactly once per request.  Any *other* ``self.<attr>``
that both sides write is a latent race — exactly the class of bug an
example-based test only catches when the interleaving cooperates.

RL004 is a lightweight static race detector for that contract.  In any
module that mixes threads and coroutines it:

1. finds **thread entry points** — ``run`` methods of
   ``threading.Thread`` subclasses and functions passed as
   ``Thread(target=...)``;
2. finds **event-loop entry points** — every ``async def``, plus sync
   callables registered via ``add_signal_handler`` / ``call_soon`` /
   ``call_soon_threadsafe`` / ``call_later``;
3. closes both sets over same-module calls by simple name (a thread
   calling ``server._refresh_if_due()`` drags that method — and what
   it calls — to the thread side).  The thread-side closure does not
   descend into ``async def`` bodies: calling a coroutine function
   from a thread creates an object, it does not run the body;
4. attributes every ``self.<attr> = ...`` / ``self.<attr> op= ...`` to
   its enclosing class and side, and flags each ``(class, attr)``
   written on **both** sides unless the attribute is named in the
   module's declared publication set;
5. enforces that declared publication attributes are only written by
   plain single assignments — an ``append`` or ``+=`` publication is a
   read-modify-write and therefore not atomic under the contract.

The publication set is a module-level literal, by convention::

    _PUBLICATION_ATTRS = frozenset({"_generation"})

Declaring an attribute there is a reviewed statement: *this reference
is published whole, readers resolve it once, the object behind it is
never mutated after publication.*
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules.base import Rule, literal_strings

__all__ = ["ConcurrencyBoundaryRule", "PUBLICATION_CONSTANT"]

#: The module-level constant RL004 reads the publication set from.
PUBLICATION_CONSTANT = "_PUBLICATION_ATTRS"

_CALLBACK_REGISTRARS = {
    "add_signal_handler",
    "call_soon",
    "call_soon_threadsafe",
    "call_later",
    "call_at",
}

_FuncKey = Tuple[Optional[str], str]  # (enclosing class, function name)


class _FuncInfo:
    __slots__ = ("node", "owner", "is_async", "calls", "writes")

    def __init__(self, node: ast.AST, owner: Optional[str]) -> None:
        self.node = node
        self.owner = owner
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.calls: Set[str] = set()          # simple callee names
        self.writes: List[Tuple[str, int, bool]] = []  # (attr, line, is_plain_assign)


class ConcurrencyBoundaryRule(Rule):
    rule_id = "RL004"
    title = "cross thread/async attribute writes go through the publication set"

    def __init__(self, publication_constant: str = PUBLICATION_CONSTANT) -> None:
        self.publication_constant = publication_constant

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        functions = self._collect_functions(ctx.tree)
        if not functions:
            return []
        thread_entries = self._thread_entries(ctx.tree, functions)
        async_entries = self._async_entries(ctx.tree, functions)
        if not thread_entries or not async_entries:
            return []  # no boundary to cross in this module
        published = self._publication_set(ctx.tree)

        by_name: Dict[str, List[_FuncKey]] = {}
        for key in functions:
            by_name.setdefault(key[1], []).append(key)

        thread_side = self._closure(thread_entries, functions, by_name, descend_async=False)
        async_side = self._closure(async_entries, functions, by_name, descend_async=True)

        thread_writes = self._writes(thread_side, functions)
        async_writes = self._writes(async_side, functions)

        findings: List[Finding] = []
        for (owner, attr), thread_sites in sorted(thread_writes.items()):
            async_sites = async_writes.get((owner, attr))
            if async_sites is None:
                continue
            if attr in published:
                continue
            where = f"thread side line {thread_sites[0]}, async side line {async_sites[0]}"
            findings.append(
                ctx.finding(
                    thread_sites[0], self.rule_id,
                    f"self.{attr} (class {owner or '<module>'}) is written on both "
                    f"sides of the thread/async boundary ({where}); publish it "
                    f"through a single-assignment reference and declare it in "
                    f"{self.publication_constant}, or keep it on one side",
                )
            )
        # Published attributes must be written by plain assignment only.
        if published:
            for key, info in functions.items():
                for attr, line, is_plain in info.writes:
                    if attr in published and not is_plain:
                        findings.append(
                            ctx.finding(
                                line, self.rule_id,
                                f"publication attribute self.{attr} is written by a "
                                f"read-modify-write; the publication contract "
                                f"requires one plain reference assignment",
                            )
                        )
        return findings

    # -- collection -----------------------------------------------------

    def _collect_functions(self, tree: ast.Module) -> Dict[_FuncKey, _FuncInfo]:
        functions: Dict[_FuncKey, _FuncInfo] = {}

        def visit(node: ast.AST, owner: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _FuncInfo(child, owner)
                    self._scan_body(child, info)
                    functions[(owner, child.name)] = info
                    # Nested defs attributed to the same owner.
                    visit(child, owner)
                else:
                    visit(child, owner)

        visit(tree, None)
        return functions

    @staticmethod
    def _scan_body(func: ast.AST, info: _FuncInfo) -> None:
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are collected separately
            if isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Name):
                    info.calls.add(callee.id)
                elif isinstance(callee, ast.Attribute):
                    info.calls.add(callee.attr)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                plain = isinstance(node, ast.Assign)
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        info.writes.append((target.attr, node.lineno, plain))

    def _thread_entries(
        self, tree: ast.Module, functions: Dict[_FuncKey, _FuncInfo]
    ) -> Set[_FuncKey]:
        entries: Set[_FuncKey] = set()
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                for base in node.bases:
                    base_name = base.id if isinstance(base, ast.Name) else (
                        base.attr if isinstance(base, ast.Attribute) else None
                    )
                    if base_name == "Thread" and (node.name, "run") in functions:
                        entries.add((node.name, "run"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            callee_name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if callee_name != "Thread":
                continue
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                entries.update(self._resolve_callable(keyword.value, functions))
        return entries

    def _async_entries(
        self, tree: ast.Module, functions: Dict[_FuncKey, _FuncInfo]
    ) -> Set[_FuncKey]:
        entries = {key for key, info in functions.items() if info.is_async}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute) and callee.attr in _CALLBACK_REGISTRARS:
                for arg in node.args:
                    entries.update(self._resolve_callable(arg, functions))
        return entries

    @staticmethod
    def _resolve_callable(
        node: ast.AST, functions: Dict[_FuncKey, _FuncInfo]
    ) -> Set[_FuncKey]:
        """Match a callable reference to same-module defs by simple name."""
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return set()
        return {key for key in functions if key[1] == name}

    def _closure(
        self,
        entries: Set[_FuncKey],
        functions: Dict[_FuncKey, _FuncInfo],
        by_name: Dict[str, List[_FuncKey]],
        *,
        descend_async: bool,
    ) -> Set[_FuncKey]:
        reached: Set[_FuncKey] = set()
        frontier = list(entries)
        while frontier:
            key = frontier.pop()
            if key in reached:
                continue
            info = functions.get(key)
            if info is None:
                continue
            if not descend_async and info.is_async and key not in entries:
                continue  # a thread referencing a coroutine doesn't run its body
            reached.add(key)
            for callee_name in info.calls:
                for callee_key in by_name.get(callee_name, ()):
                    if callee_key not in reached:
                        frontier.append(callee_key)
        if not descend_async:
            reached = {
                key for key in reached if not functions[key].is_async
            }
        return reached

    @staticmethod
    def _writes(
        reached: Set[_FuncKey], functions: Dict[_FuncKey, _FuncInfo]
    ) -> Dict[Tuple[Optional[str], str], List[int]]:
        writes: Dict[Tuple[Optional[str], str], List[int]] = {}
        for key in sorted(reached, key=lambda k: (k[0] or "", k[1])):
            info = functions[key]
            for attr, line, _plain in info.writes:
                writes.setdefault((info.owner, attr), []).append(line)
        for sites in writes.values():
            sites.sort()
        return writes

    def _publication_set(self, tree: ast.Module) -> frozenset:
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == self.publication_constant:
                names = literal_strings(node.value)
                if names is not None:
                    return frozenset(names)
        return frozenset()
