"""RL003 — metrics hygiene across every instrument registration.

The observability layer (:mod:`repro.obs.registry`) is idempotent at
runtime — re-registering a name with the same kind returns the
existing instrument, a *conflicting* redefinition raises.  But the
runtime check only fires on the code path that actually re-registers,
which can be a rarely exercised combination (serial runner + sharded
runner + server in one process).  RL003 makes the whole registration
surface checkable statically:

* instrument names match ``^[a-z][a-z0-9_]+$`` — the dashboard-safe
  subset of the Prometheus grammar this project standardizes on (no
  colons, no capitals, at least two characters);
* one name, one kind: a ``counter`` in one module and a ``histogram``
  of the same name in another is flagged at the second site, across
  the whole scanned tree;
* label sets are **literal** tuples/lists of lowercase label names —
  computed label sets defeat both this rule and grep, and labels are
  part of the series identity.

A call is treated as a registration when it is an attribute call named
``counter``/``gauge``/``histogram`` whose first argument is a string
literal — the resolve-once idiom every component here uses.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules.base import Rule

__all__ = ["MetricsHygieneRule", "INSTRUMENT_NAME_RE", "LABEL_NAME_RE"]

INSTRUMENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]+$")
LABEL_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_FACTORIES = ("counter", "gauge", "histogram")
#: Positional index of ``labelnames`` in the registry factory signature
#: ``counter(name, help, labelnames)``.
_LABELNAMES_POSITION = 2


class MetricsHygieneRule(Rule):
    rule_id = "RL003"
    title = "instrument names and label sets are literal, lowercase, and kind-stable"

    def __init__(self) -> None:
        self._registered: Dict[str, Tuple[str, str, int]] = {}

    def reset(self) -> None:
        self._registered = {}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute) or node.func.attr not in _FACTORIES:
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue  # not the literal-name registration idiom
            kind = node.func.attr
            name = first.value
            findings.extend(self._check_name(ctx, node, name, kind))
            findings.extend(self._check_labels(ctx, node, name))
        return findings

    def _check_name(
        self, ctx: ModuleContext, node: ast.Call, name: str, kind: str
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        if not INSTRUMENT_NAME_RE.match(name):
            findings.append(
                ctx.finding(
                    node, self.rule_id,
                    f"instrument name {name!r} does not match ^[a-z][a-z0-9_]+$",
                )
            )
        seen = self._registered.get(name)
        if seen is None:
            self._registered[name] = (kind, ctx.rel, node.lineno)
        elif seen[0] != kind:
            findings.append(
                ctx.finding(
                    node, self.rule_id,
                    f"instrument {name!r} registered as {kind} here but as "
                    f"{seen[0]} at {seen[1]}:{seen[2]} (one name, one kind)",
                )
            )
        return findings

    def _check_labels(
        self, ctx: ModuleContext, node: ast.Call, name: str
    ) -> Iterable[Finding]:
        label_node: Optional[ast.AST] = None
        if len(node.args) > _LABELNAMES_POSITION:
            label_node = node.args[_LABELNAMES_POSITION]
        for keyword in node.keywords:
            if keyword.arg == "labelnames":
                label_node = keyword.value
        if label_node is None:
            return []
        if not isinstance(label_node, (ast.Tuple, ast.List)):
            return [
                ctx.finding(
                    label_node, self.rule_id,
                    f"label set of {name!r} must be a literal tuple of strings "
                    f"(labels are series identity; computed label sets defeat "
                    f"static checking)",
                )
            ]
        findings: List[Finding] = []
        for element in label_node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                findings.append(
                    ctx.finding(
                        element, self.rule_id,
                        f"label set of {name!r} must contain only string literals",
                    )
                )
            elif not LABEL_NAME_RE.match(element.value):
                findings.append(
                    ctx.finding(
                        element, self.rule_id,
                        f"label {element.value!r} on {name!r} does not match "
                        f"^[a-z][a-z0-9_]*$",
                    )
                )
        return findings
