"""RL002 — the error taxonomy and the closed dead-letter vocabulary.

Two halves, one contract: *failures have names*.

**Raises.**  Every deliberate ``raise`` in the library uses a class
from :mod:`repro.errors` (so embedders catch one base class and the
*kind* of failure is machine-readable) or a module-local exception
type.  Bare stdlib raises — ``ValueError``, ``RuntimeError``,
``KeyError``, ... — are flagged; ``NotImplementedError`` on abstract
hooks is allowed.

**Reason literals.**  The dead-letter vocabulary
(:data:`repro.stream.deadletter.REASONS`) is closed on purpose:
dashboards alert per reason and the casebook replays per reason, so a
reason string that exists only at one call site is silent drift.  The
rule imports the live vocabulary (not a copy — adding a reason without
registering it *is* the failure mode being guarded) and checks every
string literal passed in reason position to the reason-carrying
constructors and policy lookups, plus the keys of any module-level
``*POLICIES*`` dict literal.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules.base import Rule, call_name
from repro.stream.deadletter import REASONS

__all__ = ["TaxonomyRule", "BANNED_BUILTIN_RAISES", "REASON_CALL_SIGNATURES"]

#: Builtin exception types that must not be raised directly on library
#: paths — each has a fine-grained repro.errors equivalent.
BANNED_BUILTIN_RAISES = frozenset(
    {
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "IOError",
        "OSError",
        "Exception",
        "BaseException",
        "LookupError",
        "ArithmeticError",
        "AttributeError",
    }
)

#: Callees whose argument carries a dead-letter reason: simple callee
#: name → positional index of the reason argument (``None`` = keyword
#: ``reason=`` only).  The keyword spelling is checked for all of them.
REASON_CALL_SIGNATURES: Dict[str, Optional[int]] = {
    "ContractViolation": 0,
    "mode_for": 0,
    "_judge": 0,
    "DeadLetter": 1,
    "DeadLetterError": None,
    "StreamFormatError": None,
}


class TaxonomyRule(Rule):
    rule_id = "RL002"
    title = "raises use the repro.errors taxonomy; reasons stay in the closed vocabulary"

    def __init__(
        self,
        reasons: Sequence[str] = REASONS,
        banned: Sequence[str] = BANNED_BUILTIN_RAISES,
        reason_calls: Optional[Dict[str, Optional[int]]] = None,
    ) -> None:
        self.reasons = frozenset(reasons)
        self.banned = frozenset(banned)
        self.reason_calls = dict(REASON_CALL_SIGNATURES if reason_calls is None else reason_calls)

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.is_example:
            return []
        findings: List[Finding] = []
        local_classes = {
            node.name for node in ctx.tree.body if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                findings.extend(self._check_raise(ctx, node, local_classes))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_reason_call(ctx, node))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                findings.extend(self._check_policies_dict(ctx, node))
        return findings

    def _check_raise(
        self, ctx: ModuleContext, node: ast.Raise, local_classes: Set[str]
    ) -> Iterable[Finding]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            callee = exc.func
        else:
            callee = exc  # ``raise ValueError`` without arguments
        if not isinstance(callee, ast.Name):
            return []
        name = callee.id
        if name in local_classes or name not in self.banned:
            return []
        return [
            ctx.finding(
                node, self.rule_id,
                f"raise of bare {name} on a library path (use the repro.errors "
                f"taxonomy so callers can catch ReproError and tell failure "
                f"kinds apart)",
            )
        ]

    def _check_reason_call(self, ctx: ModuleContext, node: ast.Call) -> Iterable[Finding]:
        name = call_name(node)
        if name is None or name not in self.reason_calls:
            return []
        findings: List[Finding] = []
        position = self.reason_calls[name]
        if position is not None and len(node.args) > position:
            findings.extend(self._check_reason_literal(ctx, node.args[position], name))
        for keyword in node.keywords:
            if keyword.arg == "reason":
                findings.extend(self._check_reason_literal(ctx, keyword.value, name))
        return findings

    def _check_reason_literal(
        self, ctx: ModuleContext, node: ast.AST, callee: str
    ) -> Iterable[Finding]:
        if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
            return []
        if node.value in self.reasons:
            return []
        return [
            ctx.finding(
                node, self.rule_id,
                f"dead-letter reason {node.value!r} passed to {callee} is not in "
                f"the closed REASONS vocabulary (register it in "
                f"repro.stream.deadletter.REASONS and docs/CASEBOOK.md first)",
            )
        ]

    def _check_policies_dict(self, ctx: ModuleContext, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                return []
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        else:
            return []
        if not isinstance(target, ast.Name) or "POLICIES" not in target.id:
            return []
        if not isinstance(node.value, ast.Dict):
            return []
        findings: List[Finding] = []
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                    and key.value not in self.reasons:
                findings.append(
                    ctx.finding(
                        key, self.rule_id,
                        f"policy case {key.value!r} is not in the closed REASONS "
                        f"vocabulary",
                    )
                )
        return findings
