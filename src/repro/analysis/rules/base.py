"""The rule contract and shared AST helpers.

A rule is a small object with a stable ``rule_id``, a one-line
``title``, and two hooks:

* :meth:`Rule.check_module` — called once per parsed module, yields
  :class:`~repro.analysis.engine.Finding`;
* :meth:`Rule.finalize` — called once after every module, for checks
  that need cross-file state (RL003's duplicate-name detection).

Rules must be deterministic: same tree in, same findings out, in
source order — the engine sorts globally, but stable per-rule output
keeps diffs reviewable.  Configuration (which modules are hot paths,
what the publication-set constant is called) lives in constructor
arguments with the project's contracts as defaults, so the test suite
can point a rule at fixture trees without monkeypatching.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, ModuleContext

__all__ = ["Rule", "call_name", "dotted_name", "literal_strings", "walk_functions"]


class Rule:
    """Base class: one invariant, one id, one catalog entry."""

    rule_id = "RL000"
    title = "abstract rule"

    def reset(self) -> None:
        """Clear cross-run state (the engine calls this before a run)."""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The simple callee name of a call: ``f(...)`` and ``x.f(...)`` → ``f``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def literal_strings(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a literal list/tuple/set (possibly wrapped
    in ``frozenset(...)``/``set(...)``/``tuple(...)``), else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple", "list") and len(node.args) == 1:
        node = node.args[0]
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return None
    out: List[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
        else:
            return None
    return out


def walk_functions(tree: ast.Module) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """Yield ``(enclosing_class_name, function_node)`` for every def.

    Nested defs report the *top-level* enclosing class (methods of a
    class, functions at module level); closures inside a method belong
    to that method's class for write-attribution purposes.
    """

    def visit(node: ast.AST, owner: Optional[str]) -> Iterator[Tuple[Optional[str], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield owner, child
                yield from visit(child, owner)
            else:
                yield from visit(child, owner)

    yield from visit(tree, None)
