"""repro-lint: the codebase's contracts as a gating static-analysis pass.

The repo's real value is its *enforced* invariants — bit-identical
scalar/block/sharded ingestion, a closed dead-letter vocabulary, a
pinned ``repro.api`` surface, immutable-generation hot-swap — yet each
was guarded only by example-based tests that rot silently when a new
call site forgets the contract.  This package turns those contracts
into AST-level rules checked on every commit:

========  ===========================================================
RL001     **determinism** — kernel/hot-path modules must not call
          wall clocks or unseeded randomness, compare floats with
          ``==``/``!=``, or iterate sets/dicts into returned
          containers (hash-order leaks into results).
RL002     **error taxonomy** — raises use :mod:`repro.errors` classes
          (no bare ``ValueError``/``RuntimeError``), and every
          dead-letter reason literal is a member of the closed
          :data:`repro.stream.deadletter.REASONS` vocabulary
          (cross-checked by importing it, so taxonomy drift fails
          the build).
RL003     **metrics hygiene** — instrument names match
          ``^[a-z][a-z0-9_]+$``, no name is registered twice with
          different instrument kinds, label sets are literal tuples.
RL004     **concurrency boundary** — in modules mixing threads and
          asyncio, ``self.<attr>`` written on both sides of the
          boundary must be in the module's declared single-assignment
          publication set (the immutable-Generation pattern).
RL005     **API surface** — ``repro.api.__all__`` exactly matches its
          public defs, and examples / docstring snippets import
          facade names through the facade.
========  ===========================================================

Usage::

    python -m repro.analysis src/repro examples          # text, rc=1 on new findings
    python -m repro.analysis src/repro --format json
    repro-linkpred lint src/repro examples               # same engine via the CLI

Per-line suppression (justify it in an adjacent comment)::

    started = time.perf_counter()  # repro-lint: disable=RL001

Accepted legacy findings live in a checked-in baseline
(``lint-baseline.json``); only *new* findings gate.  See
``docs/LINT.md`` for the rule catalog and how to add a rule.
"""

from repro.analysis.engine import (
    Baseline,
    BaselineEntry,
    Finding,
    LintReport,
    LintRunner,
    ModuleContext,
)
from repro.analysis.cli import main
from repro.analysis.rules import default_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "LintRunner",
    "ModuleContext",
    "default_rules",
    "main",
]
