"""``python -m repro.analysis`` — run repro-lint."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
