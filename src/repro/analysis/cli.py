"""Command line entry point for repro-lint.

Usage::

    python -m repro.analysis src/repro examples
    python -m repro.analysis src/repro --format json --output findings.json
    python -m repro.analysis src/repro --write-baseline lint-baseline.json

Exit codes: ``0`` clean (every finding suppressed or baselined),
``1`` new findings, ``2`` usage/configuration error (missing target,
unreadable baseline).  The default baseline is ``lint-baseline.json``
in the working directory *when it exists* — CI and local runs agree
without flags, and a missing baseline simply means "no accepted
findings".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import Baseline, LintRunner
from repro.errors import ConfigurationError

__all__ = ["main"]

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: AST invariant checks for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="files or directories to lint",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; every finding is a new finding",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write current unsuppressed findings as the baseline and exit 0 "
             "(each entry still needs a justification filled in by hand)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    return parser


def _load_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(Path(args.baseline))
    default = Path(DEFAULT_BASELINE)
    if default.exists():
        return Baseline.load(default)
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(sys.argv[1:]) if argv is None else list(argv))
    runner = LintRunner()
    try:
        if args.write_baseline is not None:
            findings, _suppressed, checked = runner.run([Path(p) for p in args.paths])
            Baseline.from_findings(findings, justification="TODO: justify").save(
                Path(args.write_baseline)
            )
            print(
                f"repro-lint: wrote {len(findings)} finding(s) from "
                f"{checked} file(s) to {args.write_baseline}"
            )
            return 0
        baseline = _load_baseline(args)
        report = runner.report([Path(p) for p in args.paths], baseline)
    except ConfigurationError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2
    rendered = report.render_json() if args.format == "json" else report.render_text()
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        summary: List[str] = [
            f"repro-lint: report written to {args.output} "
            f"({len(report.new)} new finding(s))"
        ]
        print("\n".join(summary))
    else:
        print(rendered)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
