"""The lint engine: file discovery, rule driving, suppressions, baseline.

The engine is deliberately small and stdlib-only — ``ast`` parses, the
rules visit, and three mechanisms keep the gate honest rather than
noisy:

* **per-line suppressions** — ``# repro-lint: disable=RL001`` (or a
  comma list, or ``all``) on the offending line silences that line;
  the convention is to justify every suppression in an adjacent
  comment, because a suppression *is* a documented exception to a
  contract;
* **a checked-in baseline** — accepted legacy findings, matched by
  ``(file, rule, message)`` so they survive unrelated line drift; only
  findings *outside* the baseline fail the run (rc=1), which is what
  lets a new rule land before its whole sweep does;
* **stale-entry reporting** — baseline entries that no longer match
  are listed so the baseline shrinks monotonically instead of fossilizing.

Output is text (``file:line: RLxxx message``, clickable in editors and
CI logs) or JSON (schema pinned by ``tests/analysis``) for artifact
upload and tooling.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "LintRunner",
    "ModuleContext",
    "iter_python_files",
]

#: ``# repro-lint: disable=RL001`` / ``disable=RL001,RL004`` / ``disable=all``
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


class Finding(NamedTuple):
    """One rule violation at one source location."""

    file: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} {self.message}"


class ModuleContext:
    """Everything a rule may need about one parsed module.

    ``rel`` is the path findings carry (posix, relative to the scan
    invocation's working directory when possible).  ``package_rel`` is
    the path *inside* the repro package (``core/block.py``) — or, for
    fixture trees that do not contain a ``repro`` directory, relative
    to the scanned root — which is what path-scoped rules match on.
    """

    def __init__(self, path: Path, rel: str, package_rel: str, tree: ast.Module, lines: List[str]) -> None:
        self.path = path
        self.rel = rel
        self.package_rel = package_rel
        self.tree = tree
        self.lines = lines

    @property
    def is_example(self) -> bool:
        return "examples" in Path(self.rel).parts

    def finding(self, node_or_line, rule_id: str, message: str) -> Finding:
        line = node_or_line if isinstance(node_or_line, int) else getattr(node_or_line, "lineno", 1)
        return Finding(self.rel, line, rule_id, message)

    def suppressed_rules(self, line: int) -> frozenset:
        """Rule ids disabled on ``line`` (1-based); ``{"all"}`` means every rule."""
        if not 1 <= line <= len(self.lines):
            return frozenset()
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if match is None:
            return frozenset()
        return frozenset(token.strip() for token in match.group(1).split(",") if token.strip())


class BaselineEntry(NamedTuple):
    """One accepted legacy finding, with its written-down justification."""

    file: str
    rule_id: str
    message: str
    justification: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.file, self.rule_id, self.message)


class Baseline:
    """The checked-in set of accepted findings (a multiset of keys)."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise ConfigurationError(f"cannot read baseline {path}: {error}") from None
        if not isinstance(payload, dict) or not isinstance(payload.get("entries"), list):
            raise ConfigurationError(
                f'baseline {path} must be a JSON object with an "entries" list'
            )
        entries = []
        for raw in payload["entries"]:
            try:
                entries.append(
                    BaselineEntry(
                        file=raw["file"],
                        rule_id=raw["rule"],
                        message=raw["message"],
                        justification=raw.get("justification", ""),
                    )
                )
            except (TypeError, KeyError) as error:
                raise ConfigurationError(
                    f"baseline {path} entry {raw!r} is missing {error}"
                ) from None
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding], justification: str = "") -> "Baseline":
        return cls(
            [
                BaselineEntry(f.file, f.rule_id, f.message, justification)
                for f in findings
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "comment": (
                "Accepted repro-lint findings. Every entry needs a justification; "
                "new findings never land here without one. See docs/LINT.md."
            ),
            "entries": [
                {
                    "file": entry.file,
                    "rule": entry.rule_id,
                    "message": entry.message,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition ``findings`` into (new, baselined) and list stale entries."""
        budget = Counter(entry.key() for entry in self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = (finding.file, finding.rule_id, finding.message)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        # Each surplus key is stale once per unmatched occurrence.
        listed: Counter = Counter()
        stale_entries = []
        for entry in self.entries:
            key = entry.key()
            if listed[key] < budget.get(key, 0):
                listed[key] += 1
                stale_entries.append(entry)
        return new, baselined, stale_entries


class LintReport(NamedTuple):
    """The outcome of one engine run, pre-baseline-split included."""

    findings: List[Finding]        # all unsuppressed findings, stable order
    new: List[Finding]             # findings not covered by the baseline
    baselined: List[Finding]
    stale_baseline: List[BaselineEntry]
    suppressed: int
    checked_files: int

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.new:
            lines.append(finding.render())
        summary = (
            f"repro-lint: {self.checked_files} files, "
            f"{len(self.new)} new finding(s), {len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed"
        )
        if self.stale_baseline:
            summary += f", {len(self.stale_baseline)} stale baseline entr(ies)"
        lines.append(summary)
        for entry in self.stale_baseline:
            lines.append(f"  stale baseline: {entry.file}: {entry.rule_id} {entry.message}")
        return "\n".join(lines)

    def render_json(self) -> str:
        def encode(finding: Finding, baselined: bool) -> Dict[str, object]:
            return {
                "file": finding.file,
                "line": finding.line,
                "rule": finding.rule_id,
                "message": finding.message,
                "baselined": baselined,
            }

        payload = {
            "version": 1,
            "checked_files": self.checked_files,
            "new": len(self.new),
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "exit_code": self.exit_code,
            "findings": [encode(f, False) for f in self.new]
            + [encode(f, True) for f in self.baselined],
            "stale_baseline": [
                {"file": e.file, "rule": e.rule_id, "message": e.message}
                for e in self.stale_baseline
            ],
        }
        return json.dumps(payload, indent=2)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" in child.parts:
                    continue
                seen.setdefault(child, None)
        elif path.suffix == ".py" and path.exists():
            seen.setdefault(path, None)
        elif not path.exists():
            raise ConfigurationError(f"lint target {path} does not exist")
    return sorted(seen)


def _relative(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _package_relative(path: Path, roots: Sequence[Path]) -> str:
    """The path inside the repro package (or the nearest scanned root)."""
    resolved = path.resolve()
    parts = resolved.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    for root in roots:
        root = root.resolve()
        try:
            return resolved.relative_to(root).as_posix()
        except ValueError:
            continue
    return resolved.name


class LintRunner:
    """Drive every rule over every file; one parse per module."""

    def __init__(self, rules: Optional[Sequence] = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)

    def run(self, paths: Sequence[Path]) -> Tuple[List[Finding], int, int]:
        """Lint ``paths``; returns (unsuppressed findings, suppressed count, files)."""
        targets = [Path(p) for p in paths]
        roots = [p for p in targets if p.is_dir()] or [Path.cwd()]
        files = iter_python_files(targets)
        for rule in self.rules:
            rule.reset()
        raw: List[Finding] = []
        contexts: List[ModuleContext] = []
        for path in files:
            source = path.read_text(encoding="utf-8")
            lines = source.splitlines()
            rel = _relative(path)
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as error:
                raw.append(
                    Finding(rel, error.lineno or 1, "RL000", f"file does not parse: {error.msg}")
                )
                continue
            ctx = ModuleContext(path, rel, _package_relative(path, roots), tree, lines)
            contexts.append(ctx)
            for rule in self.rules:
                raw.extend(rule.check_module(ctx))
        for rule in self.rules:
            raw.extend(rule.finalize())
        raw.sort(key=lambda f: (f.file, f.line, f.rule_id, f.message))
        by_file = {ctx.rel: ctx for ctx in contexts}
        findings: List[Finding] = []
        suppressed = 0
        for finding in raw:
            ctx = by_file.get(finding.file)
            if ctx is not None:
                disabled = ctx.suppressed_rules(finding.line)
                if "all" in disabled or finding.rule_id in disabled:
                    suppressed += 1
                    continue
            findings.append(finding)
        return findings, suppressed, len(files)

    def report(
        self, paths: Sequence[Path], baseline: Optional[Baseline] = None
    ) -> LintReport:
        findings, suppressed, checked = self.run(paths)
        if baseline is None:
            baseline = Baseline()
        new, baselined, stale = baseline.split(findings)
        return LintReport(findings, new, baselined, stale, suppressed, checked)
