"""Spans: wall-time histograms that nest into a lightweight trace tree.

A :class:`Tracer` answers the question "where did this ingest run /
query batch spend its time?" without a profiler.  ``tracer.span(name)``
is both a context manager and a decorator; entering one

* starts a wall clock (injectable, ``time.perf_counter`` by default),
* pushes onto a per-thread stack so spans opened inside it become its
  children, and
* on exit records the elapsed seconds into the registry histogram
  ``span_seconds{span="<name>"}`` (when the tracer has a registry).

Completed *root* spans accumulate in :attr:`Tracer.traces` (a bounded
deque — a long-lived process cannot leak trace trees), each a
:class:`Span` whose children reproduce the nesting::

    tracer = Tracer(registry)
    with tracer.span("query"):
        with tracer.span("pack"):
            ...
        with tracer.span("score"):
            ...
    print(render_trace(tracer.traces[-1]))

    query                 12.40ms
      pack                 8.10ms
      score                4.01ms

The histogram gives the *aggregate* view (p95 span latency across many
runs); the trace tree gives the *anatomical* view of one run.  Both
come from the same clock readings.
"""

from __future__ import annotations

import functools
import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "Tracer", "render_trace"]


class Span:
    """One timed region: name, elapsed seconds, child spans."""

    __slots__ = ("name", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds: float = 0.0
        self.children: List["Span"] = []

    def total_descendants(self) -> int:
        return len(self.children) + sum(c.total_descendants() for c in self.children)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds * 1e3:.2f}ms, children={len(self.children)})"


class _SpanContext:
    """The object ``tracer.span(name)`` returns: with-block or decorator."""

    __slots__ = ("_tracer", "_name", "_span", "_started")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._span: Optional[Span] = None
        self._started = 0.0

    def __enter__(self) -> Span:
        self._span = self._tracer._push(self._name)
        self._started = self._tracer.clock()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        elapsed = self._tracer.clock() - self._started
        assert self._span is not None
        self._span.seconds = elapsed
        self._tracer._pop(self._span)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapped(*args: object, **kwargs: object) -> object:
            # A fresh context per call: the decorator object itself is
            # shared, so it must not carry per-invocation state.
            with self._tracer.span(self._name):
                return fn(*args, **kwargs)

        return wrapped


class Tracer:
    """Per-component span factory with a per-thread nesting stack.

    Parameters
    ----------
    registry:
        Destination for the ``span_seconds`` histogram; ``None`` keeps
        trace trees only (no aggregate metrics).
    clock:
        Injectable monotonic clock (tests).
    max_traces:
        Completed root spans retained, oldest evicted first.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
        max_traces: int = 64,
    ) -> None:
        self.clock = clock
        self.traces: Deque[Span] = deque(maxlen=max_traces)
        self._hist = (
            registry.histogram(
                "span_seconds", "Wall seconds spent in each named span", labelnames=("span",)
            )
            if registry is not None
            else None
        )
        self._local = threading.local()

    def span(self, name: str) -> _SpanContext:
        """A context manager / decorator timing the named region."""
        return _SpanContext(self, name)

    # -- stack discipline ----------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str) -> Span:
        span = Span(name)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exceptions unwinding through several spans at once:
        # pop until we find ours (children above it were abandoned).
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            self.traces.append(span)
        if self._hist is not None:
            self._hist.labels(span=span.name).observe(span.seconds)

    def __repr__(self) -> str:
        return f"Tracer(traces={len(self.traces)})"


def render_trace(span: Span, *, indent: int = 0) -> str:
    """ASCII rendering of one trace tree, milliseconds right-aligned."""
    pad = "  " * indent
    lines = [f"{pad}{span.name:<{max(1, 28 - len(pad))}} {span.seconds * 1e3:10.2f}ms"]
    for child in span.children:
        lines.append(render_trace(child, indent=indent + 1))
    return "\n".join(lines)
