"""Exposition: Prometheus text format, JSON snapshots, periodic samples.

Three consumers, three formats, one source of truth (the registry):

* :func:`render_prometheus` — the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
  scraper ingests: one ``# HELP``/``# TYPE`` pair per instrument,
  escaped label values, histograms as cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``.
* :func:`snapshot` — a JSON-able dict of every series, with estimated
  p50/p95/p99 attached to histograms (the human-facing numbers a
  Prometheus backend would derive itself).  ``repro-linkpred monitor``
  renders exactly this structure.
* :class:`PeriodicReporter` — appends one :func:`snapshot` JSON line
  to a file every *N* consumed records and/or *T* seconds; the
  cheapest possible flight recorder for an unattended consumer, and
  the file ``monitor`` tails.

Everything here *reads* registry state — rendering never perturbs the
numbers, so a scrape during ingest is safe.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import IO, Callable, Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["PeriodicReporter", "render_prometheus", "snapshot"]

SNAPSHOT_SCHEMA = "repro.obs/v1"

PathLike = Union[str, Path]

#: Histogram quantiles included in JSON snapshots.
QUANTILES = (0.5, 0.95, 0.99)


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels.items())
    return "{" + body + "}"


def _format_number(value: Union[int, float]) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    # Prometheus prints integral bounds without the trailing ".0".
    if bound == int(bound):
        return str(int(bound))
    return _format_number(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format (version 0.0.4).

    Stable output: instruments in registration order, series in
    creation order, exactly one ``# TYPE`` line per instrument.  A
    disabled registry renders to the empty string.
    """
    lines: List[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for labels, series in instrument.series():
            label_text = _format_labels(labels)
            if isinstance(instrument, Histogram):
                cumulative = series.cumulative_counts()  # type: ignore[attr-defined]
                bounds = list(series.buckets) + [math.inf]  # type: ignore[attr-defined]
                for bound, count in zip(bounds, cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_le(bound)
                    lines.append(
                        f"{instrument.name}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{instrument.name}_sum{label_text} {_format_number(series.sum)}"
                )
                lines.append(f"{instrument.name}_count{label_text} {series.count}")
            else:
                lines.append(
                    f"{instrument.name}{label_text} {_format_number(series.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------


def snapshot(
    registry: MetricsRegistry, *, timestamp: Optional[float] = None
) -> Dict[str, object]:
    """Every series as one JSON-able dict (the ``monitor`` contract).

    ``{"schema": "repro.obs/v1", "ts": <unix seconds>, "instruments":
    [...]}``, one instrument entry per registered name with its type,
    help and series list.  Histogram series carry exact
    count/sum/buckets plus estimated p50/p95/p99.
    """
    instruments: List[Dict[str, object]] = []
    for instrument in registry.instruments():
        series_out: List[Dict[str, object]] = []
        for labels, series in instrument.series():
            entry: Dict[str, object] = {"labels": labels}
            if isinstance(instrument, Histogram):
                bounds = list(series.buckets) + [math.inf]  # type: ignore[attr-defined]
                cumulative = series.cumulative_counts()  # type: ignore[attr-defined]
                entry["count"] = series.count
                entry["sum"] = series.sum
                entry["buckets"] = [
                    [_format_le(bound), count] for bound, count in zip(bounds, cumulative)
                ]
                for q in QUANTILES:
                    entry[f"p{int(q * 100)}"] = series.quantile(q)  # type: ignore[attr-defined]
            else:
                value = series.value
                # JSON has no Infinity/NaN; stringify the exotic floats.
                if isinstance(value, float) and not math.isfinite(value):
                    value = _format_number(value)
                entry["value"] = value
            series_out.append(entry)
        instruments.append(
            {
                "name": instrument.name,
                "type": instrument.kind,
                "help": instrument.help,
                "series": series_out,
            }
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "ts": time.time() if timestamp is None else timestamp,
        "instruments": instruments,
    }


# ----------------------------------------------------------------------
# Periodic JSON-lines sampling
# ----------------------------------------------------------------------


class PeriodicReporter:
    """Append registry snapshots to a JSON-lines file on a cadence.

    Drive it with :meth:`tick` from the consuming loop (the runner
    calls it once per consumed record); a sample is written when
    *either* cadence is due.  ``every_records=0`` / ``every_seconds=0``
    disables that trigger; with both disabled only explicit
    :meth:`write` calls (and the final one from :meth:`close`) emit.

    The file handle is line-buffered per write and append-mode, so a
    crash loses at most the in-flight line and a restarted consumer
    extends the same flight record.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: PathLike,
        *,
        every_records: int = 0,
        every_seconds: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
        timefunc: Callable[[], float] = time.time,
    ) -> None:
        if every_records < 0:
            raise ConfigurationError(f"every_records must be >= 0, got {every_records}")
        if every_seconds < 0:
            raise ConfigurationError(f"every_seconds must be >= 0, got {every_seconds}")
        self.registry = registry
        self.path = Path(path)
        self.every_records = every_records
        self.every_seconds = every_seconds
        self.clock = clock
        self.timefunc = timefunc
        self.samples_written = 0
        self._records_since = 0
        self._last_write = clock()
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def tick(self, records: int = 1) -> bool:
        """Account ``records`` consumed; write a sample if due."""
        self._records_since += records
        due = bool(self.every_records) and self._records_since >= self.every_records
        if not due and self.every_seconds:
            due = (self.clock() - self._last_write) >= self.every_seconds
        if due:
            self.write()
        return due

    def write(self) -> None:
        """Write one snapshot line now, unconditionally."""
        if self._handle is None:
            raise ConfigurationError(f"reporter for {self.path} is closed")
        json.dump(
            snapshot(self.registry, timestamp=self.timefunc()),
            self._handle,
            separators=(",", ":"),
        )
        self._handle.write("\n")
        self._handle.flush()
        self.samples_written += 1
        self._records_since = 0
        self._last_write = self.clock()

    def close(self, *, final_sample: bool = True) -> None:
        """Flush (optionally writing a final sample) and close the file."""
        if self._handle is None:
            return
        if final_sample:
            self.write()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "PeriodicReporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PeriodicReporter({str(self.path)!r}, every_records={self.every_records}, "
            f"every_seconds={self.every_seconds}, samples={self.samples_written})"
        )
