"""Observability: metrics, tracing and exposition for the runtime tiers.

The ingest tier (:mod:`repro.stream`) and the serving tier
(:mod:`repro.serve`) each used to expose health as a hand-rolled flat
dict.  This package gives them a shared, stdlib-only instrumentation
layer instead:

* :mod:`~repro.obs.registry` — :class:`MetricsRegistry` with three
  instrument kinds (:class:`Counter`, :class:`Gauge`, fixed-bucket
  :class:`Histogram` with p50/p95/p99 estimates), optional labels, and
  free-to-call no-op instruments when the registry is disabled,
* :mod:`~repro.obs.timer` — :class:`Tracer` and its ``span(name)``
  context manager / decorator: wall-time histograms that nest into a
  lightweight trace tree for one ingest run or query batch,
* :mod:`~repro.obs.export` — :func:`render_prometheus` (text
  exposition format), :func:`snapshot` (JSON-able state dump) and
  :class:`PeriodicReporter` (JSON-lines sampler driven by a record
  count or a wall clock).

``StreamRunner.stats()`` and ``QueryEngine.stats()`` are now *reads* of
the shared registry — the legacy dicts and the exposition formats can
never drift because they are the same numbers.  See
``docs/OBSERVABILITY.md`` for the operator's view.
"""

from __future__ import annotations

from repro.obs.export import PeriodicReporter, render_prometheus, snapshot
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timer import Span, Tracer, render_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicReporter",
    "Span",
    "Tracer",
    "render_prometheus",
    "render_trace",
    "snapshot",
]
