"""The metrics registry: counters, gauges and fixed-bucket histograms.

Design constraints, in order:

1. **Hot paths pay near zero.**  An instrument handle is resolved
   *once* (at construction time — ``runner._m_ok = counter.labels(...)``)
   and the per-event call is a single attribute add.  A *disabled*
   registry hands out one shared no-op instrument whose methods do
   nothing and allocate nothing, so instrumented code needs no
   ``if metrics:`` guards.
2. **Stdlib only.**  No prometheus_client; the exposition formats live
   in :mod:`repro.obs.export` and are generated from this registry's
   state.
3. **The legacy ``stats()`` dicts read from here.**  Counters therefore
   preserve Python numeric types (an int-only counter stays ``int``)
   and expose :meth:`Counter.reset` for the engine's
   snapshot-scoped lifecycle (``QueryEngine.refresh`` zeroes its
   instruments, exactly as the pre-registry attributes did).

Instruments are named per Prometheus conventions
(``ingest_records_total``, ``query_batch_seconds``); labeled
instruments fan out into per-label-value *series* created lazily by
:meth:`~_Instrument.labels`.  Registration is idempotent: asking for an
existing name with the same kind and label names returns the existing
instrument, while a conflicting redefinition raises
:class:`~repro.errors.ConfigurationError`.

Quantiles are *estimates* from bucket counts (linear interpolation
inside the bucket holding the target rank), the same scheme a
Prometheus ``histogram_quantile`` applies server-side.  Resolution is
set by the bucket grid — :data:`DEFAULT_BUCKETS` spans 100µs..10s,
tuned for the latencies this library actually exhibits.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds): 100µs to 10s, one
#: implicit +Inf bucket above.  Chosen to resolve both a single sketch
#: update (~10µs–1ms in pure Python) and a full checkpoint write.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


class _NoopInstrument:
    """The shared do-nothing instrument a disabled registry hands out.

    Every mutator is a no-op, every reader returns a zero, and
    ``labels(...)`` returns the same singleton — so instrumented code
    is branch-free and a disabled registry adds no allocations to the
    hot path (pinned by the overhead test).
    """

    __slots__ = ()

    kind = "noop"
    name = "noop"

    def labels(self, *values: object, **kwargs: object) -> "_NoopInstrument":
        return self

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def set_function(self, fn: Callable[[], Number]) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def reset(self) -> None:
        pass

    def series(self) -> Iterator[Tuple[Dict[str, str], "_NoopInstrument"]]:
        return iter(())

    def total(self) -> int:
        return 0

    @property
    def value(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> int:
        return 0

    def quantile(self, q: float) -> float:
        return 0.0


NOOP = _NoopInstrument()


class _Instrument:
    """Base for the three real instrument kinds.

    An instrument owns its per-label-value series.  An *unlabeled*
    instrument is its own single series (key ``()``) and forwards the
    series API directly, so ``registry.counter("x").inc()`` works
    without a ``labels()`` hop.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.fullmatch(label):
                raise ConfigurationError(f"invalid label name {label!r} on {name!r}")
        self._series: Dict[Tuple[str, ...], "_Instrument"] = {}
        if not self.labelnames:
            self._series[()] = self

    def labels(self, *values: object, **kwargs: object) -> "_Instrument":
        """The series for one label-value combination (created lazily).

        Accepts positional values in ``labelnames`` order or keyword
        values; the returned handle is stable — resolve it once outside
        the hot loop.
        """
        if kwargs:
            if values:
                raise ConfigurationError("pass labels positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as missing:
                raise ConfigurationError(
                    f"{self.name!r} has labels {self.labelnames}, missing {missing}"
                ) from None
            if len(kwargs) != len(self.labelnames):
                extra = set(kwargs) - set(self.labelnames)
                raise ConfigurationError(f"unknown labels {sorted(extra)} for {self.name!r}")
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ConfigurationError(
                f"{self.name!r} needs {len(self.labelnames)} label values, got {len(key)}"
            )
        series = self._series.get(key)
        if series is None:
            series = self._new_series()
            self._series[key] = series
        return series

    def _new_series(self) -> "_Instrument":
        raise NotImplementedError

    def series(self) -> Iterator[Tuple[Dict[str, str], "_Instrument"]]:
        """Yield ``(labels_dict, series)`` in creation order."""
        for key, series in self._series.items():
            yield dict(zip(self.labelnames, key)), series

    def reset(self) -> None:
        """Zero every series (snapshot-scoped lifecycles only)."""
        for _, series in list(self.series()):
            series._reset_series()

    def _reset_series(self) -> None:
        raise NotImplementedError

    def _check_unlabeled(self) -> None:
        if self.labelnames:
            raise ConfigurationError(
                f"{self.name!r} is labeled by {self.labelnames}; call .labels(...) first"
            )


class Counter(_Instrument):
    """A monotonically increasing count (events, records, seconds).

    ``value`` preserves the numeric type fed to :meth:`inc`: integer
    increments keep an ``int`` (the legacy ``stats()`` contract), float
    increments (accumulated durations) promote to ``float`` in the same
    left-to-right order the old ``+=`` attributes used — so sums are
    bit-identical, not merely close.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value: Number = 0

    def _new_series(self) -> "Counter":
        child = Counter.__new__(Counter)
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._series = {(): child}
        child._value = 0
        return child

    def inc(self, amount: Number = 1) -> None:
        if self.labelnames:
            self._check_unlabeled()
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> Number:
        if self.labelnames:
            self._check_unlabeled()
        return self._value

    def total(self) -> Number:
        """Sum over every series (equals ``value`` when unlabeled)."""
        result: Number = 0
        for _, series in self.series():
            result += series._value  # type: ignore[attr-defined]
        return result

    def _reset_series(self) -> None:
        # Preserve int-vs-float: a counter that held durations resets
        # to 0.0, one that held event counts resets to 0.
        self._value = type(self._value)(0)


class Gauge(_Instrument):
    """A value that can go up, down, or be computed on read.

    :meth:`set_function` binds a zero-argument callable evaluated at
    read time — the cheapest way to expose state the owner already
    tracks (a committed offset, a vertex count) with no hot-path cost.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value: Number = 0
        self._fn: Optional[Callable[[], Number]] = None

    def _new_series(self) -> "Gauge":
        child = Gauge.__new__(Gauge)
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._series = {(): child}
        child._value = 0
        child._fn = None
        return child

    def set(self, value: Number) -> None:
        if self.labelnames:
            self._check_unlabeled()
        self._value = value

    def inc(self, amount: Number = 1) -> None:
        if self.labelnames:
            self._check_unlabeled()
        self._value += amount

    def dec(self, amount: Number = 1) -> None:
        if self.labelnames:
            self._check_unlabeled()
        self._value -= amount

    def set_function(self, fn: Callable[[], Number]) -> None:
        if self.labelnames:
            self._check_unlabeled()
        self._fn = fn

    @property
    def value(self) -> Number:
        if self.labelnames:
            self._check_unlabeled()
        if self._fn is not None:
            return self._fn()
        return self._value

    def _reset_series(self) -> None:
        if self._fn is None:
            self._value = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution of observed values (latencies, sizes).

    Cumulative bucket counts, total count and sum are exact;
    :meth:`quantile` is a bucket-resolution estimate.  Buckets are
    frozen at construction — one :func:`bisect.bisect_left` and two
    adds per observation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty, sorted, unique: {buckets!r}"
            )
        self.buckets = bounds
        super().__init__(name, help, labelnames)
        self._counts: List[int] = [0] * (len(bounds) + 1)
        self._sum: float = 0.0
        self._count: int = 0

    def _new_series(self) -> "Histogram":
        child = Histogram.__new__(Histogram)
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child.buckets = self.buckets
        child._series = {(): child}
        child._counts = [0] * (len(self.buckets) + 1)
        child._sum = 0.0
        child._count = 0
        return child

    def observe(self, value: Number) -> None:
        if self.labelnames:
            self._check_unlabeled()
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        if self.labelnames:
            self._check_unlabeled()
        return self._count

    @property
    def sum(self) -> float:
        if self.labelnames:
            self._check_unlabeled()
        return self._sum

    def cumulative_counts(self) -> List[int]:
        """Counts per ``le`` bound, cumulative, ending at ``count``
        (the +Inf bucket) — the Prometheus ``_bucket`` series."""
        if self.labelnames:
            self._check_unlabeled()
        running = 0
        out = []
        for c in self._counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the target bucket; observations in
        the overflow (+Inf) bucket clamp to the largest finite bound.
        Returns 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.labelnames:
            self._check_unlabeled()
        if self._count == 0:
            return 0.0
        rank = q * self._count
        running = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if running + c >= rank:
                if i == len(self.buckets):  # overflow bucket
                    return self.buckets[-1]
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                upper = self.buckets[i]
                fraction = (rank - running) / c
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            running += c
        return self.buckets[-1]

    def _reset_series(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0


class MetricsRegistry:
    """The per-process (or per-component) instrument namespace.

    ``enabled=False`` turns every factory into a source of the shared
    no-op instrument: nothing registers, nothing records, nothing
    allocates.  Components accept an optional registry and default to a
    fresh enabled one, so their ``stats()`` surfaces always have real
    numbers behind them; pass an explicitly disabled registry to opt
    out of bookkeeping entirely.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, _Instrument] = {}

    # -- factories ------------------------------------------------------

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)  # type: ignore[return-value]

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        if not self.enabled:
            return NOOP
        if not _NAME_RE.fullmatch(name):
            raise ConfigurationError(f"invalid instrument name {name!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ConfigurationError(
                    f"instrument {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    # -- introspection --------------------------------------------------

    def instruments(self) -> List[_Instrument]:
        """Registered instruments in registration order."""
        return list(self._instruments.values())

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def reset(self) -> None:
        """Zero every instrument (tests and snapshot-scoped owners)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, instruments={len(self._instruments)})"
