"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers embedding the library can catch a single
base class.  Subclasses are deliberately fine-grained: streaming systems
run unattended and the *reason* a query or update was rejected matters
(bad configuration is an operator mistake; an unknown vertex is a data
question the caller may prefer to treat as "no information yet").
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnknownVertexError",
    "EmptyNeighborhoodError",
    "StreamFormatError",
    "DatasetError",
    "EvaluationError",
    "SketchStateError",
    "RetryExhaustedError",
    "CheckpointCorruptError",
    "DeadLetterError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied to a constructor or factory.

    Raised eagerly, at construction time, so misconfiguration is caught
    before any stream data has been consumed.
    """


class UnknownVertexError(ReproError, KeyError):
    """A query referenced a vertex that has never appeared in the stream."""

    def __init__(self, vertex: object) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError quotes its argument; be clearer.
        return f"vertex {self.vertex!r} has never appeared in the stream"


class EmptyNeighborhoodError(ReproError, ValueError):
    """A measure that divides by neighborhood size was asked about an
    isolated vertex (degree zero)."""


class StreamFormatError(ReproError, ValueError):
    """An edge-list file or stream record could not be parsed.

    ``reason`` is a machine-readable slug from the dead-letter
    vocabulary (:data:`repro.stream.deadletter.REASONS`) so lenient
    consumers can count failure classes without string-matching
    messages.
    """

    def __init__(
        self,
        message: str,
        *,
        line_number: int | None = None,
        reason: str | None = None,
    ) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number
        self.reason = reason


class DatasetError(ReproError, LookupError):
    """A dataset name was not found in the registry."""


class EvaluationError(ReproError, ValueError):
    """An evaluation was configured inconsistently (e.g. empty test set,
    or a metric asked for more candidates than exist)."""


class SketchStateError(ReproError, RuntimeError):
    """A sketch operation was invalid for the sketch's current state
    (e.g. merging sketches built from different hash seeds)."""


class RetryExhaustedError(ReproError, IOError):
    """A transient source failure persisted through every allowed retry.

    Raised by :class:`repro.stream.RetryingSource` once its
    :class:`~repro.stream.RetryPolicy` attempt cap is reached; carries
    the attempt count and the last underlying error so operators can
    distinguish "the disk blipped" from "the mount is gone".
    """

    def __init__(self, message: str, *, attempts: int, last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CheckpointCorruptError(SketchStateError):
    """A checkpoint file failed integrity verification.

    Raised when a checkpoint is truncated, fails its embedded checksum,
    or is not a readable archive at all.  A corrupt checkpoint is never
    loaded silently: the runtime either falls back to an older rotated
    generation or fails loudly, but it must not resume from garbage.
    """


class DeadLetterError(ReproError, ValueError):
    """A stream record violated the edge contract under ``strict`` policy.

    Under ``quarantine`` policy the same record would be routed to the
    dead-letter sink with a reason counter instead; ``strict`` turns the
    first such record into this error so batch jobs fail fast.  Carries
    the machine-readable ``reason`` and the source ``offset``.
    """

    def __init__(self, message: str, *, reason: str, offset: int | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.offset = offset


class WorkerCrashError(ReproError, RuntimeError):
    """A shard worker process of the parallel ingestion pipeline died.

    Raised by :class:`repro.parallel.ShardedRunner` when a worker exits
    abnormally (killed, OOMed, or an unhandled exception) before its
    shard was finished.  The run is aborted — the surviving workers'
    periodic checkpoints stand, so a new runner constructed over the
    same checkpoint directory can ``resume()`` and complete the stream
    with a bit-identical merged predictor.  Carries the ``shard`` index
    and, when the worker reported one, the remote ``traceback`` text.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        exitcode: int | None = None,
        traceback: str | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode
        self.traceback = traceback
