"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers embedding the library can catch a single
base class.  Subclasses are deliberately fine-grained: streaming systems
run unattended and the *reason* a query or update was rejected matters
(bad configuration is an operator mistake; an unknown vertex is a data
question the caller may prefer to treat as "no information yet").
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnknownVertexError",
    "EmptyNeighborhoodError",
    "StreamFormatError",
    "DatasetError",
    "EvaluationError",
    "SketchStateError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied to a constructor or factory.

    Raised eagerly, at construction time, so misconfiguration is caught
    before any stream data has been consumed.
    """


class UnknownVertexError(ReproError, KeyError):
    """A query referenced a vertex that has never appeared in the stream."""

    def __init__(self, vertex: object) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError quotes its argument; be clearer.
        return f"vertex {self.vertex!r} has never appeared in the stream"


class EmptyNeighborhoodError(ReproError, ValueError):
    """A measure that divides by neighborhood size was asked about an
    isolated vertex (degree zero)."""


class StreamFormatError(ReproError, ValueError):
    """An edge-list file or stream record could not be parsed."""

    def __init__(self, message: str, *, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class DatasetError(ReproError, LookupError):
    """A dataset name was not found in the registry."""


class EvaluationError(ReproError, ValueError):
    """An evaluation was configured inconsistently (e.g. empty test set,
    or a metric asked for more candidates than exist)."""


class SketchStateError(ReproError, RuntimeError):
    """A sketch operation was invalid for the sketch's current state
    (e.g. merging sketches built from different hash seeds)."""
