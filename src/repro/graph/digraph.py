"""Directed adjacency graph.

The paper's measures are defined on undirected neighborhoods, and its
evaluation folds directed datasets (wiki-Vote) to undirected.  Many
stream sources are natively directed, though — follows, votes,
citations — and the directed variants of the neighborhood measures
(common successors / common predecessors) are standard.  This module
provides the exact directed substrate; the streaming side lives in
:mod:`repro.core.directed`.

Same conventions as :class:`~repro.graph.adjacency.AdjacencyGraph`:
simple (parallel arcs collapse), no self-loops, non-negative int ids,
pure queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

from repro.errors import ConfigurationError, UnknownVertexError

__all__ = ["DirectedGraph"]


class DirectedGraph(object):
    """Simple directed graph as successor/predecessor set maps."""

    __slots__ = ("_successors", "_predecessors", "_arc_count")

    def __init__(self) -> None:
        self._successors: Dict[int, Set[int]] = {}
        self._predecessors: Dict[int, Set[int]] = {}
        self._arc_count = 0

    @classmethod
    def from_arcs(cls, arcs: Iterable[Tuple[int, int]]) -> "DirectedGraph":
        """Build from ``(source, target)`` pairs (extra fields ignored)."""
        graph = cls()
        for arc in arcs:
            graph.add_arc(arc[0], arc[1])
        return graph

    def add_vertex(self, vertex: int) -> None:
        """Ensure ``vertex`` exists (possibly isolated)."""
        if vertex < 0:
            raise ConfigurationError(f"vertex ids must be non-negative, got {vertex}")
        self._successors.setdefault(vertex, set())
        self._predecessors.setdefault(vertex, set())

    def add_arc(self, source: int, target: int) -> bool:
        """Insert the arc ``source -> target``; returns True if new."""
        if source == target:
            raise ConfigurationError(f"self-loop on vertex {source} is not allowed")
        if source < 0 or target < 0:
            raise ConfigurationError(
                f"vertex ids must be non-negative, got ({source}, {target})"
            )
        self.add_vertex(source)
        self.add_vertex(target)
        if target in self._successors[source]:
            return False
        self._successors[source].add(target)
        self._predecessors[target].add(source)
        self._arc_count += 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._successors

    def has_arc(self, source: int, target: int) -> bool:
        """True if the arc ``source -> target`` exists."""
        successors = self._successors.get(source)
        return successors is not None and target in successors

    def successors(self, vertex: int) -> Set[int]:
        """Out-neighborhood (a view — do not mutate)."""
        try:
            return self._successors[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def predecessors(self, vertex: int) -> Set[int]:
        """In-neighborhood (a view — do not mutate)."""
        try:
            return self._predecessors[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def neighborhood(self, vertex: int, direction: str) -> Set[int]:
        """``successors`` for ``"out"``, ``predecessors`` for ``"in"``."""
        if direction == "out":
            return self.successors(vertex)
        if direction == "in":
            return self.predecessors(vertex)
        raise ConfigurationError(
            f"direction must be 'out' or 'in', got {direction!r}"
        )

    def out_degree(self, vertex: int) -> int:
        """Number of successors (0 for unknown vertices)."""
        successors = self._successors.get(vertex)
        return 0 if successors is None else len(successors)

    def in_degree(self, vertex: int) -> int:
        """Number of predecessors (0 for unknown vertices)."""
        predecessors = self._predecessors.get(vertex)
        return 0 if predecessors is None else len(predecessors)

    def degree(self, vertex: int, direction: str) -> int:
        """Directional degree; 0 for unknown vertices."""
        if direction == "out":
            return self.out_degree(vertex)
        if direction == "in":
            return self.in_degree(vertex)
        raise ConfigurationError(
            f"direction must be 'out' or 'in', got {direction!r}"
        )

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._successors)

    @property
    def arc_count(self) -> int:
        """Number of directed arcs."""
        return self._arc_count

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids."""
        return iter(self._successors)

    def arcs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over arcs as ``(source, target)``."""
        for source, successors in self._successors.items():
            for target in successors:
                yield (source, target)

    def nominal_bytes(self) -> int:
        """Packed size: both adjacency directions (CSR + CSC) plus one
        offset word per vertex per direction."""
        return 16 * self._arc_count + 16 * len(self._successors)

    def as_undirected(self):
        """Collapse to an :class:`~repro.graph.adjacency.AdjacencyGraph`
        (the paper's preprocessing for directed datasets)."""
        from repro.graph.adjacency import AdjacencyGraph

        graph = AdjacencyGraph()
        for source, target in self.arcs():
            graph.add_edge(source, target)
        return graph

    def __repr__(self) -> str:
        return f"DirectedGraph(vertices={self.vertex_count}, arcs={self._arc_count})"
