"""Seeded synthetic graph-stream generators.

These generators are the repository's substitute for the SNAP datasets
used in the paper's evaluation (no network access here — see the
substitution table in DESIGN.md).  Each produces a *stream*: a list of
:class:`~repro.graph.stream.Edge` records in a meaningful arrival order
(growth order for preferential attachment, random order otherwise),
timestamped by arrival index.

What matters for reproducing the paper's behaviour is that the streams
exercise the same structural regimes as the real graphs:

* **Heavy-tailed degrees** — :func:`barabasi_albert` (exponent 3) and
  :func:`chung_lu` (any exponent) cover the social/collaboration-network
  regime where vertex-biased sampling pays off.
* **Neighborhood overlap** — :func:`planted_partition` plants dense
  communities, giving pairs with the high common-neighbor counts link
  prediction feeds on; preferential attachment creates hub-mediated
  overlap.
* **Homogeneous baseline** — :func:`erdos_renyi` and
  :func:`watts_strogatz` provide the flat-degree control cases.

All functions are pure with respect to their seed: equal arguments give
bit-identical streams on every platform (randomness flows through
:class:`random.Random` / seeded numpy generators only).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.stream import Edge, edge_key

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "chung_lu",
    "planted_partition",
    "powerlaw_exponent_mle",
]


def _as_stream(pairs: Sequence[tuple]) -> List[Edge]:
    """Timestamp pairs by arrival index."""
    return [Edge(u, v, float(i)) for i, (u, v) in enumerate(pairs)]


def erdos_renyi(n: int, edges: int, seed: int = 0) -> List[Edge]:
    """G(n, m): ``edges`` distinct uniformly random edges on ``n`` vertices.

    Stream order is the (random) generation order.  ``edges`` may not
    exceed ``n*(n-1)/2``.
    """
    if n < 2:
        raise ConfigurationError(f"need at least 2 vertices, got {n}")
    maximum = n * (n - 1) // 2
    if not 0 <= edges <= maximum:
        raise ConfigurationError(
            f"edge count must be in [0, {maximum}] for n={n}, got {edges}"
        )
    rng = random.Random(seed)
    chosen: set[int] = set()
    pairs: List[tuple] = []
    while len(pairs) < edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = edge_key(u, v)
        if key in chosen:
            continue
        chosen.add(key)
        pairs.append((u, v))
    return _as_stream(pairs)


def barabasi_albert(n: int, m: int, seed: int = 0) -> List[Edge]:
    """Preferential attachment: each new vertex links to ``m`` existing
    vertices chosen proportionally to their current degree.

    The stream is the natural *growth order* — the canonical temporal
    graph stream, and the workload of the throughput experiments (E4).
    Degree distribution follows a power law with exponent 3.
    """
    if m < 1:
        raise ConfigurationError(f"m must be at least 1, got {m}")
    if n <= m:
        raise ConfigurationError(f"need n > m, got n={n}, m={m}")
    rng = random.Random(seed)
    pairs: List[tuple] = []
    # `attachment` holds one copy of each edge endpoint, so sampling a
    # uniform element samples vertices proportionally to degree.
    attachment: List[int] = []
    # Seed component: star on the first m+1 vertices, so every early
    # vertex has nonzero degree before preferential attachment begins.
    for v in range(1, m + 1):
        pairs.append((0, v))
        attachment.extend((0, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(attachment[rng.randrange(len(attachment))])
        for t in sorted(targets):
            pairs.append((v, t))
            attachment.extend((v, t))
    return _as_stream(pairs)


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> List[Edge]:
    """Small-world ring lattice with rewiring probability ``beta``.

    Each vertex starts linked to its ``k`` nearest ring neighbors
    (``k`` even); each lattice edge is rewired to a uniform endpoint
    with probability ``beta``.  Stream order is shuffled (a lattice
    scanned in order would be a pathologically sorted stream).
    """
    if k % 2 != 0 or k < 2:
        raise ConfigurationError(f"k must be even and >= 2, got {k}")
    if n <= k:
        raise ConfigurationError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
    rng = random.Random(seed)
    chosen: set[int] = set()
    pairs: List[tuple] = []
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < beta:
                # Rewire: keep u, choose a fresh non-duplicate endpoint.
                for _ in range(4 * n):
                    w = rng.randrange(n)
                    if w != u and edge_key(u, w) not in chosen:
                        v = w
                        break
            key = edge_key(u, v)
            if key in chosen:
                continue
            chosen.add(key)
            pairs.append((u, v))
    rng.shuffle(pairs)
    return _as_stream(pairs)


def chung_lu(
    n: int,
    edges: int,
    exponent: float = 2.5,
    seed: int = 0,
    offset: int = 10,
) -> List[Edge]:
    """Chung–Lu expected-degree power-law graph stream.

    Vertex ``i`` receives weight ``(i + offset) ** (-1/(exponent-1))``
    (a Zipf-like profile whose realised degree distribution follows a
    power law with the given ``exponent``); ``edges`` distinct edges are
    generated by sampling both endpoints proportionally to weight.
    This is the generator used for the SNAP stand-ins: exponent and
    edge count are fitted per dataset (see
    :mod:`repro.graph.datasets`).

    ``offset`` dampens the largest hub (offset 0 would hand vertex 0 a
    constant fraction of all edges); 10 matches the hub fractions of
    the SNAP social graphs reasonably well.
    """
    if n < 2:
        raise ConfigurationError(f"need at least 2 vertices, got {n}")
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must exceed 1, got {exponent}")
    maximum = n * (n - 1) // 2
    if not 0 <= edges <= maximum:
        raise ConfigurationError(
            f"edge count must be in [0, {maximum}] for n={n}, got {edges}"
        )
    rng = np.random.default_rng(seed)
    ranks = np.arange(n, dtype=np.float64) + float(offset)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probabilities = weights / weights.sum()
    chosen: set[int] = set()
    pairs: List[tuple] = []
    # Rejection-sample in batches; expected acceptance is high because
    # target edge counts are far below the weighted birthday bound.
    while len(pairs) < edges:
        need = edges - len(pairs)
        batch = max(1024, 2 * need)
        us = rng.choice(n, size=batch, p=probabilities)
        vs = rng.choice(n, size=batch, p=probabilities)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            key = edge_key(u, v)
            if key in chosen:
                continue
            chosen.add(key)
            pairs.append((u, v))
            if len(pairs) == edges:
                break
    return _as_stream(pairs)


def planted_partition(
    n: int,
    communities: int,
    internal_edges: int,
    external_edges: int,
    seed: int = 0,
) -> List[Edge]:
    """Planted-partition stream: dense communities, sparse cross links.

    Vertices split into ``communities`` equal blocks;
    ``internal_edges`` are sampled inside blocks (uniformly over blocks)
    and ``external_edges`` between distinct blocks.  Pairs inside a
    block share many neighbors, giving the strong common-neighborhood
    signal the link-prediction-quality experiment (E7) needs.
    """
    if communities < 2:
        raise ConfigurationError(f"need at least 2 communities, got {communities}")
    if n < 2 * communities:
        raise ConfigurationError(
            f"need at least 2 vertices per community, got n={n}, "
            f"communities={communities}"
        )
    rng = random.Random(seed)
    block = n // communities
    # Capacity guards: asking for more distinct edges than exist would
    # spin the rejection sampler forever.  (The last community absorbs
    # the remainder vertices; the bound below uses the smallest block,
    # with 10% headroom for sampling inefficiency near saturation.)
    internal_capacity = communities * (block * (block - 1) // 2)
    if internal_edges > 0.9 * internal_capacity:
        raise ConfigurationError(
            f"internal_edges={internal_edges} exceeds 90% of the "
            f"{internal_capacity} distinct intra-community pairs; "
            "use fewer edges or larger communities"
        )
    external_capacity = n * (n - 1) // 2 - internal_capacity
    if external_edges > 0.9 * external_capacity:
        raise ConfigurationError(
            f"external_edges={external_edges} exceeds 90% of the "
            f"{external_capacity} distinct cross-community pairs"
        )
    chosen: set[int] = set()
    pairs: List[tuple] = []

    def sample_internal() -> tuple:
        c = rng.randrange(communities)
        lo = c * block
        hi = n if c == communities - 1 else lo + block
        return rng.randrange(lo, hi), rng.randrange(lo, hi)

    def sample_external() -> tuple:
        c1, c2 = rng.sample(range(communities), 2)

        def pick(c: int) -> int:
            lo = c * block
            hi = n if c == communities - 1 else lo + block
            return rng.randrange(lo, hi)

        return pick(c1), pick(c2)

    for sampler, target in ((sample_internal, internal_edges), (sample_external, external_edges)):
        produced = 0
        while produced < target:
            u, v = sampler()
            if u == v:
                continue
            key = edge_key(u, v)
            if key in chosen:
                continue
            chosen.add(key)
            pairs.append((u, v))
            produced += 1
    rng.shuffle(pairs)
    return _as_stream(pairs)


def powerlaw_exponent_mle(degrees: Sequence[int], minimum_degree: int = 1) -> float:
    """Maximum-likelihood power-law exponent of a degree sample.

    The discrete Hill/Clauset estimator
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees at least
    ``minimum_degree``.  Used by the dataset-statistics table (E1) to
    report the realised tail exponent of each stand-in stream.
    """
    tail = [d for d in degrees if d >= minimum_degree]
    if len(tail) < 2:
        raise ConfigurationError(
            "need at least two degrees >= minimum_degree to fit an exponent"
        )
    log_sum = sum(math.log(d / (minimum_degree - 0.5)) for d in tail)
    return 1.0 + len(tail) / log_sum
