"""Graph-stream abstractions.

A *graph stream* here is any iterable of :class:`Edge` records in
arrival order.  Keeping the abstraction at "iterable of edges" — rather
than a heavyweight stream class — means generators, lists, file readers
and transformation pipelines all compose with plain ``itertools``-style
code, and predictors consume them with a simple ``for`` loop (one pass,
never materialised).

This module provides the edge record, canonical edge keys, stream
transformations (timestamping, dedup, shuffling, prefix/checkpoint
slicing) and :class:`StreamStats`, a constant-memory monitor built on
the library's own sketches.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sketches.bloom import BloomFilter
from repro.sketches.hyperloglog import HyperLogLog

__all__ = [
    "Edge",
    "EdgeStream",
    "OPS",
    "StreamRecord",
    "edge_key",
    "from_pairs",
    "with_timestamps",
    "deduplicated",
    "shuffled",
    "prefix",
    "checkpoints",
    "StreamStats",
]

#: Vertex ids must stay below 2**31 so an undirected edge packs into one
#: 62-bit key (and stays a cheap small int in CPython terms).
MAX_VERTEX_ID = (1 << 31) - 1


class Edge(NamedTuple):
    """One stream record: an undirected edge and its arrival time.

    ``timestamp`` is an opaque monotone float; generators synthesise it
    as the arrival index, real temporal datasets carry epoch seconds.
    """

    u: int
    v: int
    timestamp: float = 0.0

    def canonical(self) -> "Edge":
        """The same edge with endpoints in ``(min, max)`` order."""
        if self.u <= self.v:
            return self
        return Edge(self.v, self.u, self.timestamp)


#: Type alias used throughout: anything iterable over edges is a stream.
EdgeStream = Iterable[Edge]

#: The closed vocabulary of stream operations a record can carry.
OPS = ("add", "delete")


class StreamRecord(NamedTuple):
    """One typed stream operation: add or delete an undirected edge.

    This is the canonical ingest unit across parsers, the guard, the
    runner, workers and the dead-letter channel.  The historical
    ``(u, v[, t])`` tuple contract could not express *operations*, so
    fully dynamic feeds (follows/unfollows, session expiry) had no
    first-class spelling; every legacy input shape is coerced into a
    ``StreamRecord`` with ``op="add"`` by the back-compat shim in
    :func:`repro.stream.policies.coerce_stream_record`.

    ``op`` is one of :data:`OPS`; ``weight`` is carried for weighted
    back-ends and ignored by the set-semantics predictors.
    """

    op: str
    u: int
    v: int
    timestamp: float = 0.0
    weight: float = 1.0

    @property
    def edge(self) -> Edge:
        """The ``(u, v, timestamp)`` edge this operation touches."""
        return Edge(self.u, self.v, self.timestamp)

    def canonical(self) -> "StreamRecord":
        """The same record with endpoints in ``(min, max)`` order."""
        if self.u <= self.v:
            return self
        return StreamRecord(self.op, self.v, self.u, self.timestamp, self.weight)

    @classmethod
    def add_edge(cls, u: int, v: int, timestamp: float = 0.0, weight: float = 1.0) -> "StreamRecord":
        """An ``add`` operation (the legacy, append-only record kind)."""
        return cls("add", u, v, timestamp, weight)

    @classmethod
    def delete_edge(cls, u: int, v: int, timestamp: float = 0.0, weight: float = 1.0) -> "StreamRecord":
        """A ``delete`` operation retracting a previously added edge."""
        return cls("delete", u, v, timestamp, weight)

    @classmethod
    def from_edge(cls, edge: Edge, op: str = "add", weight: float = 1.0) -> "StreamRecord":
        """Wrap an :class:`Edge` as an operation record."""
        return cls(op, edge.u, edge.v, edge.timestamp, weight)


def edge_key(u: int, v: int) -> int:
    """Pack an undirected edge into a single 62-bit integer key.

    Orientation-insensitive (endpoints are sorted first); used to feed
    edges into key-based sketches (Bloom dedup, HLL edge counting).
    """
    if u > v:
        u, v = v, u
    if not 0 <= u <= MAX_VERTEX_ID or not 0 <= v <= MAX_VERTEX_ID:
        raise ConfigurationError(
            f"vertex ids must be in [0, {MAX_VERTEX_ID}], got ({u}, {v})"
        )
    return (u << 31) | v


def from_pairs(pairs: Iterable[Tuple[int, int]]) -> Iterator[Edge]:
    """Adapt ``(u, v)`` pairs into a timestamped stream.

    Timestamps are the arrival indices ``0, 1, 2, ...``, preserving the
    input order as the temporal order.
    """
    for index, (u, v) in enumerate(pairs):
        yield Edge(u, v, float(index))


def with_timestamps(stream: EdgeStream) -> Iterator[Edge]:
    """Rewrite timestamps to arrival indices (``0, 1, 2, ...``)."""
    for index, edge in enumerate(stream):
        yield Edge(edge.u, edge.v, float(index))


def deduplicated(
    stream: EdgeStream,
    expected_edges: int,
    false_positive_rate: float = 0.001,
    seed: int = 0,
) -> Iterator[Edge]:
    """Drop re-arrivals of edges already seen, in bounded memory.

    Backed by a Bloom filter sized for ``expected_edges``: duplicates
    are always dropped; a small fraction (the FP rate) of *first*
    arrivals may be wrongly dropped too.  Sketch and exact predictors
    are idempotent under duplicates, so this stage is an optimisation
    for heavy multi-edge streams, not a correctness requirement.
    """
    seen = BloomFilter.for_capacity(expected_edges, false_positive_rate, seed=seed)
    for edge in stream:
        if seen.add_if_new(edge_key(edge.u, edge.v)):
            yield edge


def shuffled(stream: EdgeStream, seed: int = 0) -> List[Edge]:
    """Materialise the stream in a seeded random order, re-timestamped.

    Used by experiments that need order-randomised replays of a fixed
    edge set (e.g. variance studies across stream orders).  This is the
    one helper that buffers the whole stream — by necessity.
    """
    rng = random.Random(seed)
    edges = list(stream)
    rng.shuffle(edges)
    return [Edge(e.u, e.v, float(i)) for i, e in enumerate(edges)]


def prefix(stream: EdgeStream, count: int) -> Iterator[Edge]:
    """Yield at most the first ``count`` edges."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    for index, edge in enumerate(stream):
        if index >= count:
            return
        yield edge


def checkpoints(
    stream: EdgeStream, every: int
) -> Iterator[Tuple[Optional[Edge], int, bool]]:
    """Iterate a stream with periodic checkpoint markers.

    Yields ``(edge, edges_so_far, at_checkpoint)`` triples; the
    progressive-accuracy experiment (E6) pauses to evaluate whenever
    ``at_checkpoint`` is True (every ``every`` edges and at the end).
    """
    if every < 1:
        raise ConfigurationError(f"checkpoint interval must be positive, got {every}")
    count = 0
    for edge in stream:
        count += 1
        yield edge, count, count % every == 0
    yield None, count, True  # final checkpoint after exhaustion


class StreamStats(object):
    """Constant-memory monitor of a passing edge stream.

    Tracks, without storing the graph: total records, approximate
    distinct vertices and distinct edges (HyperLogLog), and the
    timestamp range.  Attach with :meth:`observe` inside any pipeline::

        stats = StreamStats()
        for edge in stream:
            stats.observe(edge)
            predictor.update(edge.u, edge.v)
    """

    __slots__ = ("records", "_vertex_counter", "_edge_counter", "first_timestamp", "last_timestamp")

    def __init__(self, precision: int = 14, seed: int = 0x57A75) -> None:
        self.records = 0
        self._vertex_counter = HyperLogLog(precision, seed)
        self._edge_counter = HyperLogLog(precision, seed ^ 0xE06E)
        self.first_timestamp: Optional[float] = None
        self.last_timestamp: Optional[float] = None

    def observe(self, edge: Edge) -> None:
        """Fold one edge into the statistics."""
        self.records += 1
        self._vertex_counter.update(edge.u)
        self._vertex_counter.update(edge.v)
        self._edge_counter.update(edge_key(edge.u, edge.v))
        if self.first_timestamp is None:
            self.first_timestamp = edge.timestamp
        self.last_timestamp = edge.timestamp

    def observing(self, stream: EdgeStream) -> Iterator[Edge]:
        """Wrap a stream so edges are counted as they flow through."""
        for edge in stream:
            self.observe(edge)
            yield edge

    def approximate_vertices(self) -> float:
        """HLL estimate of the number of distinct vertices seen."""
        return self._vertex_counter.cardinality()

    def approximate_edges(self) -> float:
        """HLL estimate of the number of distinct undirected edges."""
        return self._edge_counter.cardinality()

    def duplicate_ratio(self) -> float:
        """Estimated fraction of records that were edge re-arrivals."""
        if self.records == 0:
            return 0.0
        distinct = min(self._edge_counter.cardinality(), float(self.records))
        return 1.0 - distinct / self.records

    def __repr__(self) -> str:
        return (
            f"StreamStats(records={self.records}, "
            f"~vertices={self.approximate_vertices():.0f}, "
            f"~edges={self.approximate_edges():.0f})"
        )
