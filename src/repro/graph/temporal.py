"""Timestamp-aware stream utilities.

The core predictors treat timestamps as opaque; real temporal datasets
(SNAP's temporal collections, production logs) need a few recurring
manipulations before or during ingestion.  All helpers are single-pass
generators unless materialisation is inherent.

* :func:`sort_by_timestamp` — repair out-of-order dumps (materialises).
* :func:`clip_by_time` — the sub-stream inside a time range.
* :func:`time_snapshots` — cumulative :class:`AdjacencyGraph` snapshots
  at fixed wall-clock intervals: the ground-truth generator for
  timestamped progressive experiments.
* :func:`rate_profile` — edges per time bucket (burst detection,
  choosing pane sizes for :class:`~repro.core.windowed.
  WindowedMinHashPredictor` from a target wall-clock window).
* :class:`TimestampStats` — constant-memory first/last/monotonicity
  tracking.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, EvaluationError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.stream import Edge

__all__ = [
    "sort_by_timestamp",
    "clip_by_time",
    "time_snapshots",
    "rate_profile",
    "TimestampStats",
]


def sort_by_timestamp(stream: Iterable[Edge]) -> List[Edge]:
    """Materialise a stream in non-decreasing timestamp order.

    Stable: simultaneous edges keep their relative order, so replays of
    already-sorted streams are the identity.
    """
    return sorted(stream, key=lambda edge: edge.timestamp)


def clip_by_time(
    stream: Iterable[Edge],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Iterator[Edge]:
    """Yield edges with ``start <= timestamp < end``.

    Bounds default to open-ended; passing neither is valid (identity).
    Works on unsorted streams (no early exit is assumed).
    """
    if start is not None and end is not None and end <= start:
        raise ConfigurationError(
            f"empty time range: start={start}, end={end}"
        )
    for edge in stream:
        if start is not None and edge.timestamp < start:
            continue
        if end is not None and edge.timestamp >= end:
            continue
        yield edge


def time_snapshots(
    stream: Iterable[Edge], interval: float
) -> Iterator[Tuple[float, AdjacencyGraph]]:
    """Yield ``(cut_time, cumulative_graph)`` every ``interval`` time units.

    The input must be timestamp-sorted (raises ``EvaluationError`` on
    regressions — silent misuse would corrupt experiments).  The yielded
    graph is a *live reference* that keeps growing; callers needing an
    immutable snapshot should ``.copy()`` it.  A final snapshot is
    always emitted at the last edge's timestamp.
    """
    if interval <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval}")
    graph = AdjacencyGraph()
    next_cut: Optional[float] = None
    last_timestamp: Optional[float] = None
    for edge in stream:
        if last_timestamp is not None and edge.timestamp < last_timestamp:
            raise EvaluationError(
                "time_snapshots needs a timestamp-sorted stream "
                f"(saw {edge.timestamp} after {last_timestamp}); "
                "apply sort_by_timestamp first"
            )
        last_timestamp = edge.timestamp
        if next_cut is None:
            next_cut = edge.timestamp + interval
        while edge.timestamp >= next_cut:
            yield next_cut, graph
            next_cut += interval
        graph.add_edge(edge.u, edge.v)
    if last_timestamp is not None:
        yield last_timestamp, graph


def rate_profile(stream: Iterable[Edge], bucket: float) -> Dict[float, int]:
    """Edges per time bucket: maps bucket start time -> edge count.

    Buckets are ``[n*bucket, (n+1)*bucket)``.  Use to pick a
    ``pane_edges`` for a wall-clock window target::

        profile = rate_profile(recent_sample, bucket=3600)
        pane_edges = int(statistics.median(profile.values()))
    """
    if bucket <= 0:
        raise ConfigurationError(f"bucket must be positive, got {bucket}")
    counts: Dict[float, int] = {}
    for edge in stream:
        start = (edge.timestamp // bucket) * bucket
        counts[start] = counts.get(start, 0) + 1
    return counts


class TimestampStats(object):
    """Constant-memory timestamp monitor for a passing stream."""

    __slots__ = ("count", "first", "last", "out_of_order")

    def __init__(self) -> None:
        self.count = 0
        self.first: Optional[float] = None
        self.last: Optional[float] = None
        #: Number of edges whose timestamp regressed below a predecessor.
        self.out_of_order = 0

    def observe(self, edge: Edge) -> None:
        """Fold one edge's timestamp in."""
        self.count += 1
        if self.first is None:
            self.first = edge.timestamp
        elif self.last is not None and edge.timestamp < self.last:
            self.out_of_order += 1
        self.last = edge.timestamp

    def observing(self, stream: Iterable[Edge]) -> Iterator[Edge]:
        """Wrap a stream, counting as it flows through."""
        for edge in stream:
            self.observe(edge)
            yield edge

    def span(self) -> float:
        """``last - first`` (0.0 before two edges have been seen)."""
        if self.first is None or self.last is None:
            return 0.0
        return self.last - self.first

    def is_sorted(self) -> bool:
        """True if no timestamp regression has been observed."""
        return self.out_of_order == 0

    def __repr__(self) -> str:
        return (
            f"TimestampStats(count={self.count}, span={self.span():g}, "
            f"out_of_order={self.out_of_order})"
        )
