"""Classic exact graph algorithms over the adjacency substrate.

These support the evaluation side of the reproduction (richer dataset
statistics for E1, structural sanity checks in tests) and round the
graph substrate into something a downstream user can adopt on its own:

* connected components and reachability (iterative BFS — no recursion
  limits on long paths),
* single-source shortest path lengths (unweighted BFS),
* exact triangle counting and clustering coefficients — the quantities
  the neighborhood-overlap measures are built from, and the ground
  truth for the streaming triangle estimator in
  :mod:`repro.core.triangles`,
* a degeneracy ordering (peeling), useful for core-structure statistics
  of the heavy-tailed stand-ins.

All functions are pure (they never mutate the input graph).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import UnknownVertexError
from repro.graph.adjacency import AdjacencyGraph

__all__ = [
    "connected_components",
    "largest_component",
    "bfs_distances",
    "triangle_count",
    "triangles_through_vertex",
    "local_clustering",
    "average_clustering",
    "global_clustering",
    "degeneracy_ordering",
    "core_number",
]


def connected_components(graph: AdjacencyGraph) -> List[Set[int]]:
    """All connected components, largest first (BFS; O(V + E))."""
    remaining = set(graph.vertices())
    components: List[Set[int]] = []
    while remaining:
        root = next(iter(remaining))
        component = {root}
        frontier = deque([root])
        while frontier:
            vertex = frontier.popleft()
            for neighbor in graph.neighbors(vertex):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: AdjacencyGraph) -> Set[int]:
    """The vertex set of the largest connected component (empty set for
    the empty graph)."""
    components = connected_components(graph)
    return components[0] if components else set()


def bfs_distances(graph: AdjacencyGraph, source: int) -> Dict[int, int]:
    """Unweighted shortest-path lengths from ``source`` to every
    reachable vertex (including ``source`` at distance 0)."""
    if source not in graph:
        raise UnknownVertexError(source)
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        next_distance = distances[vertex] + 1
        for neighbor in graph.neighbors(vertex):
            if neighbor not in distances:
                distances[neighbor] = next_distance
                frontier.append(neighbor)
    return distances


def triangles_through_vertex(graph: AdjacencyGraph, vertex: int) -> int:
    """Number of triangles containing ``vertex`` (0 for unknown ones)."""
    if vertex not in graph:
        return 0
    neighbors = graph.neighbors(vertex)
    count = 0
    for u in neighbors:
        # Intersect from the smaller side; count each triangle once
        # per (u, w) unordered pair by requiring u < w.
        for w in graph.neighbors(u):
            if w in neighbors and u < w:
                count += 1
    return count


def triangle_count(graph: AdjacencyGraph) -> int:
    """Exact number of triangles (edge-iterator algorithm).

    Iterates edges once and intersects endpoints' neighborhoods from
    the smaller side: ``O(Σ_e min(d(u), d(v)))``, fine for the registry
    datasets.  Each triangle is counted once (via its edge whose third
    vertex exceeds both endpoints... more precisely: the sum over edges
    of common neighbors counts every triangle exactly three times).
    """
    total = 0
    for u, v in graph.edges():
        nu = graph.neighbors(u)
        nv = graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        total += sum(1 for w in nu if w in nv)
    # Each triangle contributed one common neighbor to each of its
    # three edges.
    return total // 3


def local_clustering(graph: AdjacencyGraph, vertex: int) -> float:
    """Watts–Strogatz local clustering coefficient of ``vertex``.

    ``2·tri(v) / (d(v)·(d(v)-1))``; 0.0 for degree < 2 (convention).
    """
    degree = graph.degree_or_zero(vertex)
    if degree < 2:
        return 0.0
    return 2.0 * triangles_through_vertex(graph, vertex) / (degree * (degree - 1))


def average_clustering(graph: AdjacencyGraph) -> float:
    """Mean local clustering over all vertices (0.0 for empty graphs)."""
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    return sum(local_clustering(graph, v) for v in vertices) / len(vertices)


def global_clustering(graph: AdjacencyGraph) -> float:
    """Transitivity: ``3 · triangles / open-or-closed wedges``."""
    wedges = sum(
        d * (d - 1) // 2 for d in (graph.degree(v) for v in graph.vertices())
    )
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def degeneracy_ordering(graph: AdjacencyGraph) -> Tuple[List[int], int]:
    """Matula–Beck peeling: returns ``(ordering, degeneracy)``.

    Repeatedly removes a minimum-degree vertex; the ordering lists
    vertices in removal order and the degeneracy is the largest degree
    seen at removal time (equivalently the maximum k-core index).
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    # Bucket queue over current degrees.
    buckets: Dict[int, Set[int]] = {}
    for vertex, degree in degrees.items():
        buckets.setdefault(degree, set()).add(vertex)
    removed: Set[int] = set()
    ordering: List[int] = []
    degeneracy = 0
    current = 0
    total = len(degrees)
    while len(ordering) < total:
        while current not in buckets or not buckets[current]:
            current += 1
        vertex = buckets[current].pop()
        degeneracy = max(degeneracy, current)
        ordering.append(vertex)
        removed.add(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in removed:
                continue
            old = degrees[neighbor]
            buckets[old].discard(neighbor)
            degrees[neighbor] = old - 1
            buckets.setdefault(old - 1, set()).add(neighbor)
        current = max(0, current - 1)
    return ordering, degeneracy


def core_number(graph: AdjacencyGraph) -> Dict[int, int]:
    """The k-core index of every vertex (Batagelj–Zaveršnik via the
    peeling order: a vertex's core number is the degeneracy level at
    which it was removed)."""
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    buckets: Dict[int, Set[int]] = {}
    for vertex, degree in degrees.items():
        buckets.setdefault(degree, set()).add(vertex)
    removed: Set[int] = set()
    cores: Dict[int, int] = {}
    current = 0
    total = len(degrees)
    level = 0
    while len(cores) < total:
        while current not in buckets or not buckets[current]:
            current += 1
        vertex = buckets[current].pop()
        level = max(level, current)
        cores[vertex] = level
        removed.add(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in removed:
                continue
            old = degrees[neighbor]
            buckets[old].discard(neighbor)
            degrees[neighbor] = old - 1
            buckets.setdefault(old - 1, set()).add(neighbor)
        current = max(0, current - 1)
    return cores
