"""Edge-list I/O in the SNAP text format.

The SNAP archive distributes graphs as whitespace-separated edge lists
with ``#`` comment headers::

    # Directed graph (each unordered pair of nodes is saved once)
    # FromNodeId    ToNodeId
    0       1
    0       2

Temporal datasets add a third column of epoch-second timestamps.  This
module reads and writes both layouts, so users can run the streaming
predictors directly on downloaded SNAP files, and experiments can
persist the synthetic stand-ins in the identical format.

Vertex labels need not be integers: :class:`VertexRelabeler` maps
arbitrary string labels to dense non-negative ids (first-appearance
order — which preserves the temporal semantics of the id space) and
back.
"""

from __future__ import annotations

import math
import re
import unicodedata
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Union

from repro.errors import ConfigurationError, StreamFormatError
from repro.graph.stream import Edge, StreamRecord

__all__ = [
    "read_edge_list",
    "iter_edge_list",
    "scan_edge_list",
    "parse_edge_line",
    "parse_stream_record",
    "LineDiagnostic",
    "write_edge_list",
    "VertexRelabeler",
]

PathLike = Union[str, Path]

#: Delimiters hostile exports substitute for whitespace (CSV dumps,
#: matrix-market variants, shell pipelines): their presence flags a
#: ``mixed_delimiter`` line when re-splitting on them yields a record.
_ALIEN_DELIMITERS = (",", ";", "|")
_ALIEN_SPLIT = re.compile(r"[\s,;|]+")

#: Leading operation tokens a fully dynamic feed may carry.  ``+``/``-``
#: are the compact sigil spelling; ``add``/``delete``/``del`` the
#: verbose one.  A line with no operation token is an ``add`` — that is
#: the entire back-compat story for append-only edge lists.
OP_TOKENS = {
    "+": "add",
    "add": "add",
    "-": "delete",
    "delete": "delete",
    "del": "delete",
}


def _carries_hostile_chars(token: str) -> bool:
    """True when the token holds control (Cc) or format (Cf) characters
    — NUL bytes, ANSI escapes, BOMs, zero-width joiners."""
    return any(unicodedata.category(char) in ("Cc", "Cf") for char in token)


def _parse_vertex_token(token: str, field: str, line_number: Optional[int]) -> int:
    """One vertex token → non-negative int, or a typed reject.

    Deliberately stricter than ``int()``: Python's parser accepts
    underscores (``1_0``), an explicit sign (``+5``), surrounding
    whitespace, and non-ASCII decimal digits (``"١٢"``), all of which
    indicate a mangled upstream rather than a well-formed id.  Only
    canonical ASCII digit runs pass.  ``field`` names the record field
    (``"u"``/``"v"``) so error messages speak the schema, not a column
    index.
    """
    if token.isascii() and token.isdigit():
        return int(token)
    if not token.isascii() or _carries_hostile_chars(token):
        raise StreamFormatError(
            f"vertex {field}: token {token!r} carries non-ASCII or control "
            "characters",
            line_number=line_number,
            reason="bad_encoding",
        )
    if token.startswith("-") and token[1:].isdigit():
        raise StreamFormatError(
            f"vertex {field}: negative id {token!r}",
            line_number=line_number,
            reason="negative_vertex",
        )
    raise StreamFormatError(
        f"vertex {field}: non-integer id {token!r} "
        "(pass a VertexRelabeler for labelled data)",
        line_number=line_number,
        reason="non_integer_vertex",
    )


def _parse_timestamp_token(token: str, line_number: Optional[int]) -> float:
    """The ``timestamp`` field → finite float, or a typed reject."""
    try:
        timestamp = float(token)
    except ValueError:
        raise StreamFormatError(
            f"timestamp: non-numeric value {token!r}",
            line_number=line_number,
            reason="bad_timestamp",
        ) from None
    if not math.isfinite(timestamp):
        raise StreamFormatError(
            f"timestamp: non-finite value {token!r} (nan/inf poison "
            "temporal ordering)",
            line_number=line_number,
            reason="nonfinite_timestamp",
        )
    return timestamp


def parse_stream_record(
    text: str,
    *,
    line_number: Optional[int] = None,
    default_timestamp: float = 0.0,
    relabeler: Optional["VertexRelabeler"] = None,
    accept_ops: bool = True,
) -> StreamRecord:
    """Parse one data line into a typed :class:`StreamRecord`.

    The single parsing authority: the eager readers below, the legacy
    :func:`parse_edge_line` wrapper and the fault-tolerant ingestion
    runtime (:mod:`repro.stream`) all route through this, so "what is a
    well-formed record" has exactly one definition.  Accepted layouts::

        u v                      # add, timestamp = default_timestamp
        u v timestamp            # add
        + u v [timestamp]        # add, explicit sigil
        - u v [timestamp]        # delete
        add u v [timestamp]      # add, verbose token
        delete u v [timestamp]   # delete  (also: del)

    Raises :class:`StreamFormatError` whose ``reason`` attribute is a
    dead-letter vocabulary slug (``bad_op``, ``bad_arity``,
    ``non_integer_vertex``, ``negative_vertex``, ``bad_timestamp``,
    ``mixed_delimiter``, ``bad_encoding``, ``nonfinite_timestamp``) and
    whose message names the record *field* (``op``, ``vertex u``,
    ``vertex v``, ``timestamp``) rather than a column index.  Self-loop
    policy is the *caller's* decision — a self-loop parses fine here.

    Vertex tokens must be canonical ASCII digit runs — Python-int
    lenience (``int("1_0")``, ``int("+5")``, fullwidth digits) is
    rejected, and control/format characters (NUL, ANSI escapes, BOMs)
    tag the line ``bad_encoding``.  Timestamps must be finite:
    ``float()`` happily parses ``nan``/``inf``, which would poison
    temporal ordering downstream, so those tag ``nonfinite_timestamp``.

    With ``accept_ops=False`` the operation token is not recognised and
    the legacy append-only grammar applies (op-looking tokens fall into
    the vertex-field rejects, exactly as before the record redesign).
    """
    fields = text.split()
    op = "add"
    if accept_ops and fields:
        head = fields[0]
        if head in OP_TOKENS:
            op = OP_TOKENS[head]
            fields = fields[1:]
        elif len(fields) == 4 and not (head.isascii() and head.isdigit()):
            # Four fields can only be well-formed as ``op u v t`` — a
            # non-numeric head that is no known op is a botched op
            # token, not an arity slip.
            raise StreamFormatError(
                f"op: leading token {head!r} is not an operation "
                "(expected add, delete, del, + or -)",
                line_number=line_number,
                reason="bad_op",
            )
    if relabeler is None and any(d in text for d in _ALIEN_DELIMITERS):
        candidate = [part for part in _ALIEN_SPLIT.split(text) if part]
        if candidate and candidate[0] in OP_TOKENS:
            candidate = candidate[1:]
        if 2 <= len(candidate) <= 3:
            raise StreamFormatError(
                "fields are joined by ,/;/| delimiters instead of whitespace "
                f"in {text!r}",
                line_number=line_number,
                reason="mixed_delimiter",
            )
    if len(fields) not in (2, 3):
        raise StreamFormatError(
            "expected fields <u> <v> [<timestamp>] with an optional leading "
            f"op token, got {len(fields)} fields",
            line_number=line_number,
            reason="bad_arity",
        )
    if relabeler is not None:
        for name, field in zip(("u", "v"), fields[:2]):
            if _carries_hostile_chars(field):
                raise StreamFormatError(
                    f"vertex {name}: label {field!r} carries control or "
                    "format characters",
                    line_number=line_number,
                    reason="bad_encoding",
                )
        u = relabeler.encode(fields[0])
        v = relabeler.encode(fields[1])
    else:
        u = _parse_vertex_token(fields[0], "u", line_number)
        v = _parse_vertex_token(fields[1], "v", line_number)
    if len(fields) == 3:
        timestamp = _parse_timestamp_token(fields[2], line_number)
    else:
        timestamp = default_timestamp
    return StreamRecord(op, u, v, timestamp)


def parse_edge_line(
    text: str,
    *,
    line_number: Optional[int] = None,
    default_timestamp: float = 0.0,
    relabeler: Optional["VertexRelabeler"] = None,
) -> Edge:
    """Parse one append-only SNAP data line (``u v`` or ``u v
    timestamp``) into an :class:`Edge`.

    Back-compat wrapper over :func:`parse_stream_record` with operation
    tokens disabled: the legacy grammar cannot express deletions, so a
    ``-``/``delete`` line falls into the usual vertex-field rejects
    instead of silently becoming an add.  Callers that want the dynamic
    grammar parse records instead.
    """
    record = parse_stream_record(
        text,
        line_number=line_number,
        default_timestamp=default_timestamp,
        relabeler=relabeler,
        accept_ops=False,
    )
    return record.edge


class LineDiagnostic(NamedTuple):
    """One data line's parse outcome: exactly one of ``record``/``error``
    is set.  ``raw`` is the stripped line text for dead-letter triage.
    ``edge`` is a convenience view of the parsed record's edge."""

    line_number: int
    raw: str
    edge: Optional[Edge] = None
    error: Optional[StreamFormatError] = None
    record: Optional[StreamRecord] = None


def scan_edge_list(
    path: PathLike,
    relabeler: Optional["VertexRelabeler"] = None,
    allow_self_loops: bool = False,
    accept_ops: bool = False,
) -> Iterator[LineDiagnostic]:
    """Stream per-line parse diagnostics instead of aborting on the
    first malformed line.

    Yields one :class:`LineDiagnostic` per data line — a parsed
    ``record`` (with its ``edge`` view) or the typed ``error`` (with
    ``.reason``) it produced — which is exactly the shape a dead-letter
    channel wants.  Comments and blank lines are skipped; dropped
    self-loops (when ``allow_self_loops`` is false) are skipped
    silently, matching :func:`iter_edge_list`.  With ``accept_ops``
    the dynamic grammar applies and diagnostics may carry ``delete``
    records; the default keeps the legacy append-only grammar.
    """
    index = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith(("#", "%")):
                continue
            try:
                record = parse_stream_record(
                    text,
                    line_number=line_number,
                    default_timestamp=float(index),
                    relabeler=relabeler,
                    accept_ops=accept_ops,
                )
            except StreamFormatError as error:
                yield LineDiagnostic(line_number, text, error=error)
                continue
            if record.u == record.v and not allow_self_loops:
                continue  # SNAP files occasionally carry self-loops; drop them
            yield LineDiagnostic(line_number, text, edge=record.edge, record=record)
            index += 1


def iter_edge_list(
    path: PathLike,
    relabeler: Optional["VertexRelabeler"] = None,
    allow_self_loops: bool = False,
    on_error: str = "raise",
) -> Iterator[Edge]:
    """Stream edges from a SNAP-format file without materialising it.

    Lines are ``u v`` or ``u v timestamp``; ``#`` and blank lines are
    skipped.  When a ``relabeler`` is supplied, raw tokens are treated
    as opaque labels and mapped through it; otherwise tokens must be
    non-negative integers already.  Two-column rows are timestamped by
    their (data-)line index.

    ``on_error`` selects the malformed-line policy: ``"raise"`` (the
    default) raises :class:`StreamFormatError` with the offending line
    number; ``"skip"`` silently drops bad lines and keeps streaming —
    use :func:`scan_edge_list` instead when the *reasons* matter.
    """
    if on_error not in ("raise", "skip"):
        raise ConfigurationError(
            f'on_error must be "raise" or "skip", got {on_error!r}'
        )
    for diagnostic in scan_edge_list(path, relabeler, allow_self_loops):
        if diagnostic.error is not None:
            if on_error == "raise":
                raise diagnostic.error
            continue
        assert diagnostic.edge is not None
        yield diagnostic.edge


def read_edge_list(
    path: PathLike,
    relabeler: Optional["VertexRelabeler"] = None,
    allow_self_loops: bool = False,
    on_error: str = "raise",
) -> List[Edge]:
    """Read a whole SNAP-format edge list into memory (see
    :func:`iter_edge_list` for the streaming variant and the format
    details)."""
    return list(iter_edge_list(path, relabeler, allow_self_loops, on_error))


def write_edge_list(
    path: PathLike,
    edges: Iterable[Edge],
    include_timestamps: bool = True,
    header: Optional[str] = None,
) -> int:
    """Write edges in SNAP format; returns the number of rows written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for header_line in header.splitlines():
                handle.write(f"# {header_line}\n")
        for edge in edges:
            if include_timestamps:
                handle.write(f"{edge.u}\t{edge.v}\t{edge.timestamp:g}\n")
            else:
                handle.write(f"{edge.u}\t{edge.v}\n")
            count += 1
    return count


class VertexRelabeler(object):
    """Bidirectional map between arbitrary labels and dense integer ids.

    Ids are assigned in first-appearance order starting from 0, so a
    temporal stream's id space itself reflects arrival order.  The map
    is append-only; :meth:`decode` of an unassigned id raises
    ``KeyError``.
    """

    __slots__ = ("_forward", "_backward")

    def __init__(self) -> None:
        self._forward: Dict[str, int] = {}
        self._backward: List[str] = []

    def encode(self, label: object) -> int:
        """Return the id of ``label``, assigning the next id if new."""
        key = str(label)
        existing = self._forward.get(key)
        if existing is not None:
            return existing
        new_id = len(self._backward)
        self._forward[key] = new_id
        self._backward.append(key)
        return new_id

    def decode(self, vertex_id: int) -> str:
        """Return the original label of ``vertex_id``."""
        return self._backward[vertex_id]

    def __len__(self) -> int:
        return len(self._backward)

    def __contains__(self, label: object) -> bool:
        return str(label) in self._forward

    def __repr__(self) -> str:
        return f"VertexRelabeler(size={len(self._backward)})"
