"""Registry of synthetic stand-ins for the paper's SNAP datasets.

The paper evaluates on "a series of real-world graph streams" from the
SNAP archive.  This environment has no network access, so each dataset
is replaced by a seeded synthetic stream whose *measured structural
profile* — vertex count, edge count, mean degree and degree-tail
exponent — is matched to the published statistics of the SNAP original
(scaled down where the original is too large for a laptop-scale run;
the ``scale`` field records the factor).  The substitution rationale
lives in DESIGN.md; the E1 benchmark regenerates the statistics table
so the match can be audited.

Streams are deterministic in ``(name, seed)`` and cached per process,
so repeated experiments over one dataset pay generation cost once.

>>> from repro.graph.datasets import load, dataset_names
>>> edges = load("synth-facebook")
>>> len(edges)
88234
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.errors import DatasetError
from repro.graph import generators
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.stream import Edge

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "spec", "load", "load_graph", "statistics"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one registry dataset.

    Attributes
    ----------
    name:
        Registry key (``synth-`` prefix marks a SNAP stand-in).
    stands_in_for:
        The SNAP dataset whose profile this stream matches.
    description:
        One-line domain description (from the SNAP catalogue).
    vertices / edges:
        Target stream dimensions.
    scale:
        Down-scaling factor versus the SNAP original (1 = full size).
    build:
        Seeded generator ``(seed) -> list[Edge]``.
    """

    name: str
    stands_in_for: str
    description: str
    vertices: int
    edges: int
    scale: float
    build: Callable[[int], List[Edge]] = field(repr=False)


def _facebook(seed: int) -> List[Edge]:
    # ego-Facebook: 4 039 vertices, 88 234 edges, mean degree 43.7.
    # Dense friendship circles: preferential attachment with high m
    # reproduces the density and the hub-mediated overlap.
    return generators.barabasi_albert(n=4039, m=22, seed=seed)[:88234]


def _grqc(seed: int) -> List[Edge]:
    # ca-GrQc: 5 242 vertices, 14 496 edges, mean degree 5.5,
    # collaboration network with a heavy tail (alpha ~ 2.1 reported).
    return generators.chung_lu(n=5242, edges=14496, exponent=2.2, seed=seed)


def _condmat(seed: int) -> List[Edge]:
    # ca-CondMat: 23 133 vertices, 93 497 edges, mean degree 8.1.
    return generators.chung_lu(n=23133, edges=93497, exponent=2.5, seed=seed)


def _wiki_vote(seed: int) -> List[Edge]:
    # wiki-Vote: 7 115 vertices, 103 689 directed votes; treated as
    # undirected (the neighborhood measures are symmetric). Strongly
    # skewed in-degree: steep tail exponent.
    return generators.chung_lu(n=7115, edges=100762, exponent=1.95, seed=seed, offset=4)


def _dblp(seed: int) -> List[Edge]:
    # com-DBLP: 317 080 vertices, 1 049 866 edges — scaled 1:6 to keep
    # laptop runtimes; mean degree (6.6) and tail preserved.
    return generators.chung_lu(n=52847, edges=174978, exponent=2.8, seed=seed)


def _youtube(seed: int) -> List[Edge]:
    # com-Youtube: 1 134 890 vertices, 2 987 624 edges — scaled 1:20;
    # very heavy tail (alpha ~ 2.0).
    return generators.chung_lu(n=56745, edges=149381, exponent=2.0, seed=seed)


def _communities(seed: int) -> List[Edge]:
    # Not a SNAP stand-in: a planted-partition stream with strong
    # common-neighborhood signal, used by the link-prediction-quality
    # experiment (E7) alongside the stand-ins.
    return generators.planted_partition(
        n=4000, communities=40, internal_edges=36000, external_edges=4000, seed=seed
    )


def _dense(seed: int) -> List[Edge]:
    # Not a SNAP stand-in: a dense interaction stream (mean degree
    # ~147) standing in for the paper's massive-graph regime where
    # vertex degrees dwarf any per-vertex memory budget — the regime
    # the equal-space comparison (E8) is about, scaled to laptop size.
    return generators.planted_partition(
        n=1200, communities=6, internal_edges=80000, external_edges=8000, seed=seed
    )


DATASETS: Dict[str, DatasetSpec] = {
    s.name: s
    for s in (
        DatasetSpec(
            "synth-facebook",
            "ego-Facebook",
            "Friendship circles of Facebook survey participants",
            4039,
            88234,
            1.0,
            _facebook,
        ),
        DatasetSpec(
            "synth-grqc",
            "ca-GrQc",
            "General-relativity arXiv co-authorship",
            5242,
            14496,
            1.0,
            _grqc,
        ),
        DatasetSpec(
            "synth-condmat",
            "ca-CondMat",
            "Condensed-matter arXiv co-authorship",
            23133,
            93497,
            1.0,
            _condmat,
        ),
        DatasetSpec(
            "synth-wiki-vote",
            "wiki-Vote",
            "Wikipedia adminship votes (as undirected)",
            7115,
            100762,
            1.0,
            _wiki_vote,
        ),
        DatasetSpec(
            "synth-dblp",
            "com-DBLP",
            "DBLP co-authorship (scaled 1:6)",
            52847,
            174978,
            1 / 6,
            _dblp,
        ),
        DatasetSpec(
            "synth-youtube",
            "com-Youtube",
            "Youtube friendships (scaled 1:20)",
            56745,
            149381,
            1 / 20,
            _youtube,
        ),
        DatasetSpec(
            "synth-communities",
            "(none)",
            "Planted-partition stream with strong CN signal",
            4000,
            40000,
            1.0,
            _communities,
        ),
        DatasetSpec(
            "synth-dense",
            "(none)",
            "Dense interaction stream (degree >> budget regime)",
            1200,
            88000,
            1.0,
            _dense,
        ),
    )
}

_CACHE: Dict[Tuple[str, int], List[Edge]] = {}


def dataset_names() -> List[str]:
    """Registry keys, in registration order."""
    return list(DATASETS)


def spec(name: str) -> DatasetSpec:
    """Look up a dataset spec; raises :class:`DatasetError` on typos."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from None


def load(name: str, seed: int = 0) -> List[Edge]:
    """Return the dataset's edge stream (cached per ``(name, seed)``).

    The returned list is shared through the cache — treat it as
    read-only, or copy before mutating.
    """
    key = (name, seed)
    cached = _CACHE.get(key)
    if cached is None:
        cached = spec(name).build(seed)
        _CACHE[key] = cached
    return cached


def load_graph(name: str, seed: int = 0) -> AdjacencyGraph:
    """Return the dataset materialised as an exact adjacency graph."""
    return AdjacencyGraph.from_edges(load(name, seed))


def statistics(
    name: str, seed: int = 0, include_triangles: bool = False
) -> Dict[str, float]:
    """Measured structural statistics of a dataset stream (table E1).

    Returns vertices, edges, mean/max degree and the fitted degree-tail
    exponent (over degrees >= 4, where the power-law regime starts).
    With ``include_triangles=True``, also the exact triangle count and
    global clustering (transitivity) — costlier
    (``O(Σ_e min-degree)``), so off by default for the CLI listing.
    """
    graph = load_graph(name, seed)
    degrees = [graph.degree(v) for v in graph.vertices()]
    try:
        exponent = generators.powerlaw_exponent_mle(degrees, minimum_degree=4)
    except Exception:
        exponent = float("nan")
    stats = {
        "vertices": float(graph.vertex_count),
        "edges": float(graph.edge_count),
        "mean_degree": graph.average_degree(),
        "max_degree": float(graph.max_degree()),
        "tail_exponent": exponent,
    }
    if include_triangles:
        from repro.graph.algorithms import global_clustering, triangle_count

        stats["triangles"] = float(triangle_count(graph))
        stats["transitivity"] = global_clustering(graph)
    return stats
