"""In-memory adjacency-set graph.

This is the *exact* substrate: the uncompressed graph the paper's
sketches are competing against.  It backs

* the :class:`repro.exact.oracle.ExactOracle` gold standard that every
  accuracy experiment measures estimators against,
* the offline "snapshot" comparator in the throughput benches (E4), and
* the subgraphs induced by the sampling baselines (E8).

Vertices are non-negative integers (use
:class:`repro.graph.io.VertexRelabeler` for labelled data).  The graph
is simple and undirected: parallel edges collapse and self-loops are
rejected — matching the neighborhood-measure setting of the paper,
where ``N(u)`` is a set and ``u ∉ N(u)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

from repro.errors import ConfigurationError, UnknownVertexError

__all__ = ["AdjacencyGraph"]


class AdjacencyGraph(object):
    """Simple undirected graph stored as a dict of neighbor sets."""

    __slots__ = ("_adjacency", "_edge_count")

    def __init__(self) -> None:
        self._adjacency: Dict[int, Set[int]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]]) -> "AdjacencyGraph":
        """Build a graph from ``(u, v)`` pairs (extra tuple fields, such
        as timestamps, are ignored)."""
        graph = cls()
        for edge in edges:
            graph.add_edge(edge[0], edge[1])
        return graph

    def add_vertex(self, vertex: int) -> None:
        """Ensure ``vertex`` exists (possibly isolated)."""
        if vertex < 0:
            raise ConfigurationError(f"vertex ids must be non-negative, got {vertex}")
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge ``{u, v}``.

        Returns True if the edge was new, False if it already existed.
        Self-loops are rejected with :class:`ConfigurationError`.
        """
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        if u < 0 or v < 0:
            raise ConfigurationError(f"vertex ids must be non-negative, got ({u}, {v})")
        neighbors_u = self._adjacency.setdefault(u, set())
        if v in neighbors_u:
            return False
        neighbors_u.add(v)
        self._adjacency.setdefault(v, set()).add(u)
        self._edge_count += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove the edge ``{u, v}`` if present; return whether it was."""
        neighbors_u = self._adjacency.get(u)
        if neighbors_u is None or v not in neighbors_u:
            return False
        neighbors_u.discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._adjacency

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge ``{u, v}`` exists."""
        neighbors = self._adjacency.get(u)
        return neighbors is not None and v in neighbors

    def neighbors(self, vertex: int) -> Set[int]:
        """The neighbor set of ``vertex`` (a *view* — do not mutate).

        Raises :class:`UnknownVertexError` for vertices never seen.
        """
        try:
            return self._adjacency[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``; raises for unknown vertices."""
        return len(self.neighbors(vertex))

    def degree_or_zero(self, vertex: int) -> int:
        """Degree of ``vertex``, 0 when the vertex has never appeared."""
        neighbors = self._adjacency.get(vertex)
        return 0 if neighbors is None else len(neighbors)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over each undirected edge once, as ``(min, max)``."""
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if u < v:
                    yield (u, v)

    def average_degree(self) -> float:
        """Mean degree ``2|E| / |V|`` (0.0 for the empty graph)."""
        if not self._adjacency:
            return 0.0
        return 2.0 * self._edge_count / len(self._adjacency)

    def max_degree(self) -> int:
        """Largest degree (0 for the empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def degree_histogram(self) -> Dict[int, int]:
        """Map from degree value to the number of vertices with it."""
        histogram: Dict[int, int] = {}
        for neighbors in self._adjacency.values():
            d = len(neighbors)
            histogram[d] = histogram.get(d, 0) + 1
        return histogram

    def nominal_bytes(self) -> int:
        """Packed size of the adjacency structure: 8 bytes per directed
        entry (each undirected edge appears twice) plus one offset word
        per vertex — the CSR encoding a C implementation would use.

        This is the memory figure the sketches are measured against in
        experiment E2.
        """
        return 16 * self._edge_count + 8 * len(self._adjacency)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, keep: Iterable[int]) -> "AdjacencyGraph":
        """Vertex-induced subgraph on ``keep`` (new graph object)."""
        kept = set(keep)
        sub = AdjacencyGraph()
        for u in kept:
            if u in self._adjacency:
                sub.add_vertex(u)
        for u, v in self.edges():
            if u in kept and v in kept:
                sub.add_edge(u, v)
        return sub

    def copy(self) -> "AdjacencyGraph":
        dup = AdjacencyGraph()
        dup._adjacency = {u: set(n) for u, n in self._adjacency.items()}
        dup._edge_count = self._edge_count
        return dup

    def __repr__(self) -> str:
        return (
            f"AdjacencyGraph(vertices={self.vertex_count}, "
            f"edges={self.edge_count})"
        )
