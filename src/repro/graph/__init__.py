"""Graph substrate: adjacency storage, edge streams, generators, I/O,
and the synthetic dataset registry.

The streaming predictors in :mod:`repro.core` consume anything iterable
over :class:`~repro.graph.stream.Edge`; everything in this subpackage
produces or transforms such streams.
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.digraph import DirectedGraph
from repro.graph.io import (
    LineDiagnostic,
    VertexRelabeler,
    iter_edge_list,
    parse_edge_line,
    parse_stream_record,
    read_edge_list,
    scan_edge_list,
    write_edge_list,
)
from repro.graph.stream import (
    OPS,
    Edge,
    EdgeStream,
    StreamRecord,
    StreamStats,
    checkpoints,
    deduplicated,
    edge_key,
    from_pairs,
    prefix,
    shuffled,
    with_timestamps,
)
from repro.graph.temporal import (
    TimestampStats,
    clip_by_time,
    rate_profile,
    sort_by_timestamp,
    time_snapshots,
)

__all__ = [
    "AdjacencyGraph",
    "DirectedGraph",
    "Edge",
    "EdgeStream",
    "OPS",
    "StreamRecord",
    "StreamStats",
    "TimestampStats",
    "VertexRelabeler",
    "checkpoints",
    "clip_by_time",
    "deduplicated",
    "edge_key",
    "from_pairs",
    "iter_edge_list",
    "LineDiagnostic",
    "parse_edge_line",
    "parse_stream_record",
    "scan_edge_list",
    "prefix",
    "rate_profile",
    "read_edge_list",
    "shuffled",
    "sort_by_timestamp",
    "time_snapshots",
    "with_timestamps",
    "write_edge_list",
]
