"""Exponential-rank weighted MinHash (vertex-biased sampling).

The uniform MinHash of :mod:`repro.sketches.minhash` samples every
member of a set with equal probability.  For weighted-sum measures such
as Adamic–Adar, where member ``w`` contributes ``λ(w) = 1/ln d(w)``,
uniform sampling is wasteful: slots are spent on high-degree members
whose contribution is negligible.  *Vertex-biased sampling* — the
technique the reproduced paper pairs with MinHash — samples member
``w`` with probability proportional to ``λ(w)`` instead.

The classical construction (Efraimidis & Spirakis 2006; in sketch form
Gollapudi & Panigrahy 2006) assigns key ``w`` the *rank*::

    r_i(w) = -ln(U_i(w)) / λ(w)

where ``U_i(w) ∈ (0,1)`` is a uniform hash.  ``r_i(w)`` is then an
exponential random variable with rate ``λ(w)``, and by the minimum
property of exponentials the slot minimum over a set ``S`` selects
``w ∈ S`` with probability ``λ(w) / Λ(S)`` where ``Λ(S) = Σ_{w∈S} λ(w)``.
Consequently, for two sets ``A, B`` whose members carry *identical*
weights on both sides::

    P[slot minima of A and B coincide] = Λ(A ∩ B) / Λ(A ∪ B)

— the weighted analogue of the Jaccard collision identity, and the
engine of the biased Adamic–Adar estimator in :mod:`repro.core.biased`.

Streaming caveat (see DESIGN.md): in a graph stream the weight of a
*neighbor* ``w`` depends on its degree, which keeps growing after ``w``
entered the sketch.  This module is policy-agnostic: the caller passes
the weight to :meth:`update`, and :meth:`reweigh` supports rebuilding
ranks when a refresh policy decides weights have drifted too far.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError, SketchStateError
from repro.hashing import HashBank
from repro.sketches.base import MergeableSummary

__all__ = ["WeightedMinHash"]

_INF = np.float64(np.inf)
_NO_WITNESS = np.int64(-1)


class WeightedMinHash(MergeableSummary):
    """Exponential-rank weighted MinHash over (key, weight) pairs.

    Parameters
    ----------
    bank:
        Shared :class:`~repro.hashing.HashBank`; its size is the number
        of slots ``k``.  Comparable sketches must share an equal bank.

    Notes
    -----
    * Weights must be strictly positive and finite.
    * Re-inserting a key with the *same* weight is idempotent.
      Re-inserting with a larger weight can only lower the key's ranks,
      so the slot minimum remains a valid exponential minimum for the
      *latest* weights as long as weights only grow — which holds for
      ``λ`` choices that grow with degree, and is the basis of the
      ``refresh`` policy's correctness argument.
    """

    __slots__ = ("bank", "ranks", "witnesses", "weights", "weight_sum", "update_count")

    def __init__(self, bank: HashBank) -> None:
        self.bank = bank
        self.ranks = np.full(bank.size, _INF, dtype=np.float64)
        self.witnesses = np.full(bank.size, _NO_WITNESS, dtype=np.int64)
        self.weights = np.zeros(bank.size, dtype=np.float64)
        #: Running Λ = Σ λ(w) over *distinct* inserted keys, maintained by
        #: the caller contract: update() adds the weight the first time a
        #: key is inserted; reweigh() adjusts it.  The estimators need Λ
        #: per vertex and this keeps it O(1) space.
        self.weight_sum = 0.0
        self.update_count = 0

    # ------------------------------------------------------------------
    # StreamSummary interface
    # ------------------------------------------------------------------

    @property
    def compatibility_token(self) -> tuple:
        return ("WeightedMinHash", self.bank.seed, self.bank.size)

    @property
    def k(self) -> int:
        """Number of slots."""
        return self.bank.size

    def update(self, key: int, weight: float = 1.0, *, first_insertion: bool = True) -> None:
        """Fold ``(key, weight)`` into the sketch.

        ``first_insertion`` tells the sketch whether ``key`` is new to
        the underlying set, so the running ``weight_sum`` stays the sum
        over *distinct* keys; pass ``False`` when re-presenting a known
        key (e.g. during a weight refresh — use :meth:`reweigh` there
        instead, which handles the bookkeeping).
        """
        if key < 0:
            raise ConfigurationError(f"keys must be non-negative, got {key}")
        if not (weight > 0.0) or not math.isfinite(weight):
            raise ConfigurationError(
                f"weight must be strictly positive and finite, got {weight}"
            )
        ranks = -np.log(self.bank.units_open(key)) / weight
        improved = ranks < self.ranks
        if improved.any():
            self.ranks[improved] = ranks[improved]
            self.witnesses[improved] = key
            self.weights[improved] = weight
        if first_insertion:
            self.weight_sum += weight
        self.update_count += 1

    def update_many(self, pairs: Iterable[tuple[int, float]]) -> None:
        """Fold every ``(key, weight)`` pair of an iterable in."""
        for key, weight in pairs:
            self.update(key, weight)

    def reweigh(self, key: int, old_weight: float, new_weight: float) -> None:
        """Re-present ``key`` with an increased weight.

        Adjusts the running ``Λ`` and lowers the key's ranks.  Only
        weight *increases* keep the slot minima exact (a decreased
        weight would require knowing whether ``key`` currently owns a
        slot under a rank that should now rise — information a
        constant-space sketch does not retain), so decreases raise
        :class:`SketchStateError`.
        """
        if new_weight < old_weight:
            raise SketchStateError(
                "weighted MinHash supports monotone weight increases only "
                f"(got {old_weight} -> {new_weight})"
            )
        self.update(key, new_weight, first_insertion=False)
        self.weight_sum += new_weight - old_weight

    def nominal_bytes(self) -> int:
        # rank (f64) + witness (i64) + weight (f64) per slot + Λ.
        return self.k * 24 + 8

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True if no key has ever been inserted."""
        return self.update_count == 0

    def slot_matches(self, other: "WeightedMinHash") -> np.ndarray:
        """Boolean array of slots whose rank-minima coincide.

        Ranks are compared through their *witness* keys: two exponential
        ranks computed from the same hash and the same weight are
        bit-identical, but comparing float equality directly would also
        be correct; witness comparison is clearer and robust to the
        (monotone) reweigh path, where the same key may have been
        inserted at different weights on the two sides.
        """
        self.require_compatible(other)
        both = (self.witnesses != _NO_WITNESS) & (other.witnesses != _NO_WITNESS)
        return both & (self.witnesses == other.witnesses)

    def match_fraction(self, other: "WeightedMinHash") -> float:
        """Fraction of slots whose minima coincide.

        Estimates ``Λ(A∩B)/Λ(A∪B)`` when both sides inserted each shared
        key with the same weight (see module docstring); variance is
        ``p(1-p)/k``.
        """
        self.require_compatible(other)
        if self.is_empty() or other.is_empty():
            return 0.0
        return float(np.count_nonzero(self.slot_matches(other))) / self.k

    def matching_witnesses(self, other: "WeightedMinHash") -> np.ndarray:
        """Witness keys of the colliding slots (biased samples of A∩B)."""
        return self.witnesses[self.slot_matches(other)]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "WeightedMinHash") -> "WeightedMinHash":
        """Sketch of the union (assumes the key sets are disjoint or
        inserted with equal weights on both sides; ``weight_sum`` adds,
        which over-counts shared keys — callers that merge overlapping
        sketches must correct Λ themselves)."""
        self.require_compatible(other)
        merged = WeightedMinHash(self.bank)
        take_other = other.ranks < self.ranks
        merged.ranks = np.where(take_other, other.ranks, self.ranks)
        merged.witnesses = np.where(take_other, other.witnesses, self.witnesses)
        merged.weights = np.where(take_other, other.weights, self.weights)
        merged.weight_sum = self.weight_sum + other.weight_sum
        merged.update_count = self.update_count + other.update_count
        return merged

    def copy(self) -> "WeightedMinHash":
        dup = WeightedMinHash(self.bank)
        dup.ranks = self.ranks.copy()
        dup.witnesses = self.witnesses.copy()
        dup.weights = self.weights.copy()
        dup.weight_sum = self.weight_sum
        dup.update_count = self.update_count
        return dup

    def __repr__(self) -> str:
        filled = int(np.count_nonzero(self.witnesses != _NO_WITNESS))
        return (
            f"WeightedMinHash(k={self.k}, filled_slots={filled}, "
            f"weight_sum={self.weight_sum:.4g})"
        )
