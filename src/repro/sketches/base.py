"""Common behaviour for all streaming summaries.

A *sketch* here is a bounded-memory summary of a multiset of 64-bit
keys, updated one key at a time.  Two cross-cutting concerns live in
this module so every concrete sketch treats them the same way:

* **Compatibility.**  Estimates that combine two sketches (Jaccard,
  merges) are only meaningful when both were built with the *same* hash
  functions.  :meth:`StreamSummary.require_compatible` centralises that
  check and raises :class:`repro.errors.SketchStateError` with a message
  naming both seeds.
* **Memory accounting.**  The paper's space claims are about *sketch*
  bytes, not Python object overhead, so every sketch reports
  :meth:`StreamSummary.nominal_bytes` — the size of a packed C struct
  holding the same state.  (Benchmark E2 uses this, and separately
  reports measured interpreter bytes for honesty.)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import SketchStateError

__all__ = ["StreamSummary", "MergeableSummary"]


class StreamSummary(ABC):
    """Abstract base class for bounded-memory stream summaries."""

    @abstractmethod
    def update(self, key: int) -> None:
        """Fold one key into the summary."""

    @abstractmethod
    def nominal_bytes(self) -> int:
        """Size in bytes of a packed (C-struct) encoding of the state.

        This is the space figure a non-Python implementation would pay
        and the one the paper's cost model counts.
        """

    @property
    @abstractmethod
    def compatibility_token(self) -> tuple:
        """Hashable token identifying the hash configuration.

        Two summaries may be combined if and only if their tokens are
        equal.
        """

    def require_compatible(self, other: "StreamSummary") -> None:
        """Raise :class:`SketchStateError` unless ``other`` is combinable.

        Checks both the concrete type and the hash configuration; a
        mismatch would otherwise produce silently-garbage estimates.
        """
        if type(other) is not type(self):
            raise SketchStateError(
                f"cannot combine {type(self).__name__} with {type(other).__name__}"
            )
        if other.compatibility_token != self.compatibility_token:
            raise SketchStateError(
                f"{type(self).__name__} instances use different hash "
                f"configurations ({self.compatibility_token} vs "
                f"{other.compatibility_token}); they cannot be combined"
            )


class MergeableSummary(StreamSummary):
    """A summary whose union is computable from two summaries alone.

    ``a.merge(b)`` must equal (in distribution of estimates) the summary
    of the concatenation of both input streams — the defining property
    tested by the property-based suite.
    """

    @abstractmethod
    def merge(self, other: "MergeableSummary") -> "MergeableSummary":
        """Return a *new* summary of the union of both input streams."""
