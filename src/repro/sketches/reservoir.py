"""Reservoir sampling.

Vitter's Algorithm R (1985): keep a uniform sample of ``capacity`` items
from a stream of unknown length, replacing a random resident with
probability ``capacity / n`` at the ``n``-th arrival.  Every length-
``capacity`` subset of the prefix is equally likely at all times — the
invariant the property-based tests check by exhaustive distribution
comparison on small streams.

Role in this repository: the *edge reservoir* baseline
(:class:`repro.exact.baselines.EdgeReservoirBaseline`) stores a uniform
subsample of stream edges and runs exact link prediction on the induced
subgraph — the natural "what you'd do without sketches" competitor at
equal memory, reproduced in benchmark E8.  The per-vertex
:class:`repro.exact.baselines.NeighborReservoirBaseline` reuses this
class with one small reservoir per vertex.

Determinism: randomness comes from a private :class:`random.Random`
seeded at construction, so a seed fully reproduces the sample sequence.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, Iterator, List, Optional, TypeVar

from repro.errors import ConfigurationError

__all__ = ["Reservoir"]

T = TypeVar("T")


class Reservoir(Generic[T]):
    """Uniform fixed-capacity sample of a stream of items.

    Parameters
    ----------
    capacity:
        Maximum number of retained items.
    seed:
        Seed of the private random generator.
    """

    __slots__ = ("capacity", "_rng", "_items", "seen")

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: List[T] = []
        #: Number of stream items offered so far.
        self.seen = 0

    def offer(self, item: T) -> bool:
        """Present one stream item; return True if it was retained.

        (The return value reports *admission*; a retained item may still
        be evicted by a later arrival.)
        """
        admitted, _ = self.offer_with_eviction(item)
        return admitted

    def offer_with_eviction(self, item: T) -> tuple[bool, Optional[T]]:
        """Present one item; return ``(admitted, evicted_item_or_None)``.

        Callers that mirror the reservoir contents in a derived
        structure (e.g. the edge-reservoir baseline's subgraph) use the
        evicted item to keep the mirror in sync incrementally.
        """
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True, None
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            evicted = self._items[slot]
            self._items[slot] = item
            return True, evicted
        return False, None

    def offer_many(self, items: Iterable[T]) -> None:
        """Present every item of an iterable to the reservoir."""
        for item in items:
            self.offer(item)

    def sample(self) -> List[T]:
        """The current sample (a copy; order is not meaningful)."""
        return list(self._items)

    def is_full(self) -> bool:
        """True once the reservoir holds ``capacity`` items."""
        return len(self._items) >= self.capacity

    def sampling_probability(self) -> float:
        """Current inclusion probability ``min(1, capacity/seen)``.

        The Horvitz–Thompson correction factor for sums estimated from
        the sample.
        """
        if self.seen <= self.capacity:
            return 1.0
        return self.capacity / self.seen

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __repr__(self) -> str:
        return (
            f"Reservoir(capacity={self.capacity}, held={len(self._items)}, "
            f"seen={self.seen})"
        )
