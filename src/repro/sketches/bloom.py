"""Bloom filter.

Bloom (1970): an ``m``-bit array and ``k`` hash functions; insertion
sets ``k`` bits, membership tests AND them.  No false negatives; false
positive probability ``(1 - e^{-kn/m})^k`` after ``n`` insertions, which
the :meth:`BloomFilter.false_positive_rate` method reports from the
observed fill ratio.

Probes use Kirsch–Mitzenmacher double hashing — ``g_i(x) = h1(x) +
i*h2(x) mod m`` — which preserves the asymptotic false-positive rate
with only two base hash evaluations per operation.

Role in this repository: graph streams frequently repeat edges
(multi-edges, undirected duplicates); the stream utilities offer a
Bloom-filter-based *best-effort dedup* stage
(:func:`repro.graph.stream.deduplicated`) so sketches that want set
semantics under tight memory can pre-filter re-arrivals without an
exact edge set.  The exact predictors are insensitive to duplicates
(their updates are idempotent), so the filter is an optimisation, never
a correctness requirement.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import SplitMixHash
from repro.sketches.base import MergeableSummary

__all__ = ["BloomFilter"]


class BloomFilter(MergeableSummary):
    """Bloom filter over integer keys.

    Parameters
    ----------
    bits:
        Size of the bit array ``m``.
    hashes:
        Number of probes ``k``; the optimum is ``(m/n) ln 2`` for an
        anticipated ``n`` insertions (see :meth:`for_capacity`).
    seed:
        Hash seed; filters merge only with equal ``(bits, hashes, seed)``.
    """

    __slots__ = ("bits", "hashes", "seed", "_h1", "_h2", "_array", "insertions")

    def __init__(self, bits: int = 1 << 16, hashes: int = 4, seed: int = 0) -> None:
        if bits < 8:
            raise ConfigurationError(f"bits must be at least 8, got {bits}")
        if hashes < 1:
            raise ConfigurationError(f"hashes must be positive, got {hashes}")
        self.bits = bits
        self.hashes = hashes
        self.seed = seed
        self._h1 = SplitMixHash(seed)
        self._h2 = SplitMixHash(seed ^ 0x5DEECE66D)
        self._array = np.zeros((bits + 7) // 8, dtype=np.uint8)
        self.insertions = 0

    @classmethod
    def for_capacity(
        cls, capacity: int, false_positive_rate: float = 0.01, seed: int = 0
    ) -> "BloomFilter":
        """Size a filter for ``capacity`` keys at a target FP rate."""
        if capacity < 1:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not 0 < false_positive_rate < 1:
            raise ConfigurationError(
                f"false_positive_rate must be in (0, 1), got {false_positive_rate}"
            )
        bits = math.ceil(-capacity * math.log(false_positive_rate) / (math.log(2) ** 2))
        hashes = max(1, round(bits / capacity * math.log(2)))
        return cls(bits=max(bits, 8), hashes=hashes, seed=seed)

    # ------------------------------------------------------------------
    # StreamSummary interface
    # ------------------------------------------------------------------

    @property
    def compatibility_token(self) -> tuple:
        return ("BloomFilter", self.bits, self.hashes, self.seed)

    def _positions(self, key: int) -> list[int]:
        base = self._h1(key)
        step = self._h2(key) | 1  # odd step: full-period probing
        return [(base + i * step) % self.bits for i in range(self.hashes)]

    def update(self, key: int) -> None:
        """Insert ``key``."""
        for position in self._positions(key):
            self._array[position >> 3] |= 1 << (position & 7)
        self.insertions += 1

    add = update  # conventional alias

    def update_many(self, keys: Iterable[int]) -> None:
        """Insert every key of an iterable."""
        for key in keys:
            self.update(key)

    def nominal_bytes(self) -> int:
        return len(self._array)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return all(
            self._array[p >> 3] & (1 << (p & 7)) for p in self._positions(key)
        )

    def add_if_new(self, key: int) -> bool:
        """Insert ``key``; return True if it was (probably) unseen.

        The one-call test-and-set used by stream dedup.  A False return
        may rarely be wrong (false positive); a True return is always
        correct (no false negatives).
        """
        if key in self:
            return False
        self.update(key)
        return True

    def fill_ratio(self) -> float:
        """Fraction of set bits."""
        return float(np.unpackbits(self._array).sum()) / (len(self._array) * 8)

    def false_positive_rate(self) -> float:
        """Estimated current FP probability, ``fill_ratio ** hashes``."""
        return self.fill_ratio() ** self.hashes

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """Filter of the union of both key streams (bitwise OR)."""
        self.require_compatible(other)
        merged = BloomFilter(self.bits, self.hashes, self.seed)
        np.bitwise_or(self._array, other._array, out=merged._array)
        merged.insertions = self.insertions + other.insertions
        return merged

    def copy(self) -> "BloomFilter":
        dup = BloomFilter(self.bits, self.hashes, self.seed)
        dup._array = self._array.copy()
        dup.insertions = self.insertions
        return dup

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.bits}, hashes={self.hashes}, "
            f"insertions={self.insertions})"
        )
