"""Deletion-tolerant k-mins sketches backed by signed neighbor counters.

A plain :class:`~repro.sketches.minhash.KMinHash` is a *monotone* fold:
slot minima only ever decrease, so an edge deletion cannot be applied —
the retracted neighbor may be the very key holding a slot minimum, and
the second-smallest hash was never kept.  The fully dynamic literature
("A Fast Sketch Method for Mining User Similarities over Fully Dynamic
Graph Streams", PAPERS.md) resolves this with *counter-backed*
structures: keep an exactly-mergeable account of the multiset of
arrivals and retractions, and derive the min-structure from the live
survivors on demand.

:class:`DynamicKMinHash` is that structure for one vertex: a map
``neighbor key → (signed count, last-seen stream time)``.  The algebra
is a ℤ-module — merge adds counts and maxes timestamps per key — so
merge is commutative and associative *by construction*, under any
interleaving of adds and deletes (the hypothesis suite proves it).  A
key is **live** when its count is positive and, under a TTL, its last
activity is within ``ttl`` of the caller-supplied stream time ``now``
(always stream time, never a wall clock: the determinism contract of
this package forbids ambient time, and TTL expiry must replay
bit-identically).  :meth:`materialize` folds the live keys into an
ordinary :class:`KMinHash` view — smallest key wins hash ties, so the
view is a pure function of the live set, independent of operation
order — and every downstream consumer (estimators, packed matrices,
fingerprints) works unchanged.

Space is ``O(live + retracted-but-referenced)`` per vertex rather than
``O(k)`` — the price of exact deletability; the TTL story bounds it on
expiring workloads because :meth:`compact` can drop dead entries whose
timestamps can no longer matter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SketchStateError
from repro.hashing import HashBank
from repro.sketches.minhash import EMPTY_SLOT, KMinHash

__all__ = ["DynamicKMinHash"]


class DynamicKMinHash(object):
    """A deletion-tolerant neighbor-set sketch for one vertex.

    Parameters
    ----------
    bank:
        The shared :class:`~repro.hashing.HashBank`; materialized views
        are comparable with any :class:`KMinHash` built from an equal
        bank.
    track_witnesses:
        Whether materialized views carry argmin witnesses.

    Notes
    -----
    ``add``/``remove`` accept any non-negative key and never raise on a
    retraction of an absent key — the count simply goes negative, which
    keeps the merge algebra exact when operations arrive out of order
    across shards (a delete may be merged before its add).  Policy-level
    handling of deletes-of-unseen-edges belongs to the stream guard, not
    the sketch.
    """

    __slots__ = ("bank", "track_witnesses", "_entries", "op_count")

    def __init__(self, bank: HashBank, track_witnesses: bool = True) -> None:
        self.bank = bank
        self.track_witnesses = track_witnesses
        #: key → [signed live count, last-seen stream time]
        self._entries: Dict[int, List[float]] = {}
        #: Total operations folded in (adds + removes); additive under
        #: merge, so serial and merged shard states report identically.
        self.op_count = 0

    @property
    def compatibility_token(self) -> tuple:
        return ("DynamicKMinHash", self.bank.seed, self.bank.size)

    @property
    def k(self) -> int:
        """Number of slots (hash functions) of materialized views."""
        return self.bank.size

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, key: int, timestamp: float = 0.0) -> None:
        """Fold an edge arrival toward ``key`` in (``O(1)``)."""
        self._apply(key, 1, timestamp)

    def remove(self, key: int, timestamp: float = 0.0) -> None:
        """Fold an edge retraction of ``key`` in (``O(1)``)."""
        self._apply(key, -1, timestamp)

    def _apply(self, key: int, delta: int, timestamp: float) -> None:
        if key < 0:
            raise ConfigurationError(f"keys must be non-negative, got {key}")
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = [delta, timestamp]
        else:
            entry[0] += delta
            if timestamp > entry[1]:
                entry[1] = timestamp
        self.op_count += 1

    def apply_delta(self, key: int, delta: int, timestamp: float, ops: int = 1) -> None:
        """Fold an aggregated ``(count delta, max timestamp)`` for one
        key in — the batched-kernel entry point (one call per *unique*
        key of a batch instead of one per operation)."""
        if key < 0:
            raise ConfigurationError(f"keys must be non-negative, got {key}")
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = [delta, timestamp]
        else:
            entry[0] += delta
            if timestamp > entry[1]:
                entry[1] = timestamp
        self.op_count += ops

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def live_keys(self, now: float = 0.0, ttl: float = 0.0) -> List[int]:
        """The live neighbor keys, sorted ascending.

        Live means a positive signed count and, when ``ttl > 0``, last
        activity within ``ttl`` of the stream time ``now``.
        """
        if ttl > 0.0:
            alive = [
                key
                for key, entry in self._entries.items()
                if entry[0] > 0 and now - entry[1] <= ttl
            ]
        else:
            alive = [key for key, entry in self._entries.items() if entry[0] > 0]
        return sorted(alive)

    def live_degree(self, now: float = 0.0, ttl: float = 0.0) -> int:
        """Number of live neighbors (the vertex's dynamic degree)."""
        if ttl > 0.0:
            return sum(
                1
                for entry in self._entries.values()
                if entry[0] > 0 and now - entry[1] <= ttl
            )
        return sum(1 for entry in self._entries.values() if entry[0] > 0)

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """All ``(key, signed count, last_seen)`` entries, key-sorted —
        the canonical serialization order for checkpoints."""
        for key in sorted(self._entries):
            entry = self._entries[key]
            yield key, int(entry[0]), float(entry[1])

    def compact(self, now: float = 0.0, ttl: float = 0.0) -> int:
        """Drop zero-count entries (and, under a TTL, expired ones).

        Only entries whose removal cannot change any future
        materialization *given no further merges* are eligible; call on
        sealed states (post-merge, pre-checkpoint) to bound memory on
        expiring workloads.  Returns the number of entries dropped.
        """
        if ttl > 0.0:
            dead = [
                key
                for key, entry in self._entries.items()
                if entry[0] == 0 or (entry[0] > 0 and now - entry[1] > ttl)
            ]
        else:
            dead = [key for key, entry in self._entries.items() if entry[0] == 0]
        for key in dead:
            del self._entries[key]
        return len(dead)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self, now: float = 0.0, ttl: float = 0.0) -> KMinHash:
        """Derive the :class:`KMinHash` view of the live neighbor set.

        A pure function of the live set: slot minima are column minima
        of the batch-hashed live keys, and on equal hashes the
        *smallest key* wins the witness — so any operation order (and
        any shard merge order) producing the same live set materializes
        the identical view, which is what makes dynamic fingerprints
        comparable across serial and sharded ingestion.
        """
        view = KMinHash(self.bank, track_witnesses=self.track_witnesses)
        keys = self.live_keys(now, ttl)
        view.update_count = self.op_count
        if not keys:
            return view
        key_array = np.asarray(keys, dtype=np.int64)
        hashes = self.bank.values_block(key_array.astype(np.uint64))
        # Mirror KMinHash.update_hashed: the maximal hash value is
        # remapped down so EMPTY_SLOT is never produced by a real key.
        hashes = np.minimum(hashes, EMPTY_SLOT - np.uint64(1))
        view.values = hashes.min(axis=0)
        if self.track_witnesses:
            # argmin returns the first (= smallest, keys are sorted)
            # row achieving each column minimum.
            view.witnesses = key_array[np.argmin(hashes, axis=0)]
        return view

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "DynamicKMinHash") -> "DynamicKMinHash":
        """Combine two counter states (new object): counts add,
        last-seen times max, per key — the ℤ-module sum, commutative
        and associative under any add/delete interleaving."""
        if other.compatibility_token != self.compatibility_token:
            raise SketchStateError(
                "cannot merge dynamic sketches from different hash banks "
                f"({self.compatibility_token} vs {other.compatibility_token})"
            )
        if other.track_witnesses != self.track_witnesses:
            raise SketchStateError(
                "cannot merge a witness-tracking dynamic sketch with a "
                "non-tracking one"
            )
        merged = DynamicKMinHash(self.bank, track_witnesses=self.track_witnesses)
        entries: Dict[int, List[float]] = {
            key: list(entry) for key, entry in self._entries.items()
        }
        for key, entry in other._entries.items():
            mine = entries.get(key)
            if mine is None:
                entries[key] = list(entry)
            else:
                mine[0] += entry[0]
                if entry[1] > mine[1]:
                    mine[1] = entry[1]
        merged._entries = entries
        merged.op_count = self.op_count + other.op_count
        return merged

    def copy(self) -> "DynamicKMinHash":
        dup = DynamicKMinHash(self.bank, track_witnesses=self.track_witnesses)
        dup._entries = {key: list(entry) for key, entry in self._entries.items()}
        dup.op_count = self.op_count
        return dup

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Number of distinct keys currently accounted (live or not)."""
        return len(self._entries)

    def nominal_bytes(self) -> int:
        """Nominal packed bytes: 24 per entry (key, count, last-seen)."""
        return 24 * len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicKMinHash):
            return NotImplemented
        if other.compatibility_token != self.compatibility_token:
            return False
        if other.track_witnesses != self.track_witnesses:
            return False
        return list(self.items()) == list(other.items())

    def __hash__(self) -> int:  # mutable container: identity hashing
        return id(self)

    def __repr__(self) -> str:
        return (
            f"DynamicKMinHash(k={self.k}, entries={len(self._entries)}, "
            f"ops={self.op_count})"
        )
