"""Count-Min sketch for approximate frequency counting.

Cormode & Muthukrishnan (2005): a ``depth x width`` grid of counters;
each of ``depth`` pairwise-independent hash functions routes a key to
one counter per row, updates add to all of them, and a point query takes
the row-wise minimum.  Guarantees, with ``width = ceil(e/ε)`` and
``depth = ceil(ln(1/δ))``::

    count(x) <= estimate(x) <= count(x) + ε * N   with prob. >= 1 - δ

where ``N`` is the total of all increments (one-sided overestimation).

Role in this repository: the streaming predictors track vertex degrees.
Exact degrees cost one integer per vertex — already "constant space per
vertex", so exact counting is the default — but Count-Min powers the
``approximate_degrees`` memory knob (DESIGN.md decision 3) that drops
per-vertex state below one word when vertex ids are too numerous even
for that, and the E2 space bench plots the trade-off.

The *conservative update* variant (Estan & Varghese 2002) only raises
the counters that equal the current minimum, provably never increasing
error; it is the default for degree tracking because graph streams are
exactly the skewed workloads it helps on.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import SplitMixFamily
from repro.sketches.base import MergeableSummary

__all__ = ["CountMin"]


class CountMin(MergeableSummary):
    """Count-Min frequency sketch over integer keys.

    Parameters
    ----------
    width:
        Counters per row; error scales as ``e * N / width``.
    depth:
        Number of rows; failure probability ``exp(-depth)``.
    seed:
        Hash seed; mergeable only with equal ``(width, depth, seed)``.
    conservative:
        Use conservative updates (default ``True``).  Note conservative
        sketches lose mergeability (the row minima of two halves do not
        reconstruct the whole); :meth:`merge` refuses in that mode.
    """

    __slots__ = ("width", "depth", "seed", "conservative", "table", "total", "_functions")

    def __init__(
        self,
        width: int = 2048,
        depth: int = 4,
        seed: int = 0,
        conservative: bool = True,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be positive, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.conservative = conservative
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0
        self._functions = SplitMixFamily(seed).functions(depth)

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, seed: int = 0, conservative: bool = True
    ) -> "CountMin":
        """Build a sketch guaranteeing additive error ``ε·N`` w.p. ``1-δ``."""
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(depth, 1), seed=seed, conservative=conservative)

    # ------------------------------------------------------------------
    # StreamSummary interface
    # ------------------------------------------------------------------

    @property
    def compatibility_token(self) -> tuple:
        return ("CountMin", self.width, self.depth, self.seed, self.conservative)

    def _columns(self, key: int) -> list[int]:
        return [fn(key) % self.width for fn in self._functions]

    def update(self, key: int, count: int = 1) -> None:
        """Add ``count`` (default 1) to ``key``'s frequency."""
        if count < 0:
            raise ConfigurationError(
                f"count-min supports non-negative increments, got {count}"
            )
        columns = self._columns(key)
        if self.conservative:
            current = min(self.table[row, col] for row, col in enumerate(columns))
            floor = current + count
            for row, col in enumerate(columns):
                if self.table[row, col] < floor:
                    self.table[row, col] = floor
        else:
            for row, col in enumerate(columns):
                self.table[row, col] += count
        self.total += count

    def update_many(self, keys: Iterable[int]) -> None:
        """Increment every key of an iterable by one."""
        for key in keys:
            self.update(key)

    def nominal_bytes(self) -> int:
        return self.depth * self.width * 8

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Point estimate of ``key``'s frequency (never underestimates)."""
        return int(
            min(self.table[row, col] for row, col in enumerate(self._columns(key)))
        )

    def error_bound(self) -> float:
        """The additive error ``e * N / width`` that holds w.p. ``1 - e^-depth``."""
        return math.e * self.total / self.width

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "CountMin") -> "CountMin":
        """Sketch of the combined streams (elementwise sum).

        Only valid for non-conservative sketches; conservative tables
        are not linear, so merging them silently would corrupt the
        one-sided error guarantee.
        """
        self.require_compatible(other)
        if self.conservative:
            raise ConfigurationError(
                "conservative count-min sketches are not mergeable; "
                "construct with conservative=False if merging is required"
            )
        merged = CountMin(self.width, self.depth, self.seed, conservative=False)
        np.add(self.table, other.table, out=merged.table)
        merged.total = self.total + other.total
        return merged

    def copy(self) -> "CountMin":
        dup = CountMin(self.width, self.depth, self.seed, self.conservative)
        dup.table = self.table.copy()
        dup.total = self.total
        return dup

    def __repr__(self) -> str:
        return (
            f"CountMin(width={self.width}, depth={self.depth}, "
            f"total={self.total}, conservative={self.conservative})"
        )
