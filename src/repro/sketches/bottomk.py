"""Bottom-k (KMV) sketches for distinct counting and set overlap.

A bottom-k sketch keeps the ``k`` smallest *distinct* hash values of the
keys seen, under a single hash function.  Compared with the k-mins
sketch of :mod:`repro.sketches.minhash` it hashes each key once instead
of ``k`` times, at the cost of a small data structure (a bounded
max-heap) instead of flat arrays.

Two estimators are provided:

* **Distinct count** (Bar-Yossef et al. 2002).  If ``v_(k)`` is the
  k-th smallest hash value mapped into ``(0, 1)``, then ``(k-1)/v_(k)``
  is an unbiased estimate of the number of distinct keys ``n`` (for
  ``n ≥ k``), with relative standard error ``~ 1/sqrt(k-2)``.  Below
  ``k`` distinct keys the sketch stores them all and the count is exact.
* **Jaccard** (Cohen & Kaplan 2007).  The ``k`` smallest values of the
  *union* of two sketches are a uniform sample of the union; the
  fraction of that sample present in both sketches estimates ``J``.

The library's streaming predictor uses k-mins (witness tracking needs
per-slot argmins); bottom-k is exercised by the E2 space study and the
ablation comparing the two for Jaccard (DESIGN.md decision 4), and is a
generally useful primitive for a downstream user.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.errors import ConfigurationError
from repro.hashing import SplitMixHash
from repro.hashing.mixers import to_unit_open
from repro.sketches.base import MergeableSummary

__all__ = ["BottomK"]


class BottomK(MergeableSummary):
    """Bottom-k sketch of a set of integer keys.

    Parameters
    ----------
    k:
        Number of minima retained; accuracy of both estimators improves
        as ``1/sqrt(k)``.
    seed:
        Seed of the single hash function.  Sketches are combinable only
        when built with equal ``(k, seed)``.
    """

    __slots__ = ("k", "seed", "_hash", "_heap", "_members", "update_count")

    def __init__(self, k: int, seed: int = 0) -> None:
        if k < 2:
            raise ConfigurationError(f"bottom-k needs k >= 2, got {k}")
        self.k = k
        self.seed = seed
        self._hash = SplitMixHash(seed)
        self._heap: list[int] = []  # max-heap via negation
        self._members: set[int] = set()  # current heap contents (hash values)
        self.update_count = 0

    # ------------------------------------------------------------------
    # StreamSummary interface
    # ------------------------------------------------------------------

    @property
    def compatibility_token(self) -> tuple:
        return ("BottomK", self.k, self.seed)

    def update(self, key: int) -> None:
        """Fold one key in: ``O(log k)`` worst case, ``O(1)`` expected
        once the sketch is full (most keys hash above the threshold)."""
        self.update_count += 1
        value = self._hash(key)
        if value in self._members:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -value)
            self._members.add(value)
        elif value < -self._heap[0]:
            evicted = -heapq.heappushpop(self._heap, -value)
            self._members.discard(evicted)
            self._members.add(value)

    def update_many(self, keys: Iterable[int]) -> None:
        """Fold every key of an iterable into the sketch."""
        for key in keys:
            self.update(key)

    def nominal_bytes(self) -> int:
        return 8 * min(len(self._heap), self.k)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_full(self) -> bool:
        """True once k distinct keys have been absorbed."""
        return len(self._heap) >= self.k

    def values(self) -> list[int]:
        """The retained hash values, ascending."""
        return sorted(self._members)

    def kth_value_unit(self) -> float:
        """The k-th smallest hash value mapped into ``(0, 1)``.

        Only meaningful when :meth:`is_full`; raises otherwise.
        """
        if not self.is_full():
            raise ConfigurationError(
                f"sketch holds {len(self._heap)} < k={self.k} distinct keys; "
                "the k-th minimum does not exist yet"
            )
        return to_unit_open(-self._heap[0])

    def distinct_count(self) -> float:
        """Estimate of the number of distinct keys seen.

        Exact while fewer than ``k`` distinct keys have arrived, then
        the unbiased KMV estimate ``(k-1)/v_(k)``.
        """
        if not self.is_full():
            return float(len(self._heap))
        return (self.k - 1) / self.kth_value_unit()

    def jaccard(self, other: "BottomK") -> float:
        """Estimate the Jaccard similarity of the two underlying sets.

        Takes the ``k`` smallest values of the union of both sketches (a
        uniform sample of the union) and returns the fraction present in
        both.  Exact when both sets fit entirely in their sketches.
        """
        self.require_compatible(other)
        union_values = sorted(self._members | other._members)[: self.k]
        if not union_values:
            return 0.0
        shared = sum(1 for v in union_values if v in self._members and v in other._members)
        return shared / len(union_values)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "BottomK") -> "BottomK":
        """Sketch of the union of both input streams (new object)."""
        self.require_compatible(other)
        merged = BottomK(self.k, self.seed)
        for value in sorted(self._members | other._members)[: self.k]:
            heapq.heappush(merged._heap, -value)
            merged._members.add(value)
        merged.update_count = self.update_count + other.update_count
        return merged

    def copy(self) -> "BottomK":
        dup = BottomK(self.k, self.seed)
        dup._heap = list(self._heap)
        dup._members = set(self._members)
        dup.update_count = self.update_count
        return dup

    def __repr__(self) -> str:
        return f"BottomK(k={self.k}, held={len(self._heap)}, updates={self.update_count})"
