"""HyperLogLog distinct-count sketch.

Flajolet, Fusy, Gandouet & Meunier (2007): hash every key to 64 bits,
route it to one of ``m = 2**precision`` registers by its top bits, and
let the register remember the maximum number of leading zeros (plus
one) of the remaining bits.  The harmonic mean of ``2**register``
values, scaled by ``alpha_m * m**2``, estimates the distinct count with
relative standard error ``~1.04/sqrt(m)`` — in ``m`` *bytes*.

Role in this repository: the stream statistics reporter
(:mod:`repro.graph.stream`) uses HLL to track the number of distinct
vertices/edges seen without storing them, and benchmark E2 uses it as
the cheapest point on the space/accuracy spectrum.  It also serves as an
independent cross-check of the bottom-k distinct counter in the tests.

Implementation notes:

* 64-bit hashes: the ``2**32``-scale large-range correction of the
  original paper is unnecessary; only the small-range linear-counting
  correction is applied (empty-register count based), following the
  standard practice for 64-bit HLL (Heule et al. 2013, minus the bias
  tables — our accuracy tests budget for the small-range bias).
* Registers are a numpy uint8 array; merge is elementwise max.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import SplitMixHash
from repro.sketches.base import MergeableSummary

__all__ = ["HyperLogLog"]


def _alpha(m: int) -> float:
    """Bias-correction constant of the raw HLL estimator."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog(MergeableSummary):
    """HyperLogLog counter of distinct integer keys.

    Parameters
    ----------
    precision:
        Number of index bits ``b``; the sketch uses ``m = 2**b``
        one-byte registers.  Valid range 4..18.
    seed:
        Hash seed; sketches merge only with equal ``(precision, seed)``.
    """

    __slots__ = ("precision", "seed", "_hash", "registers", "update_count")

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise ConfigurationError(
                f"precision must be in [4, 18], got {precision}"
            )
        self.precision = precision
        self.seed = seed
        self._hash = SplitMixHash(seed)
        self.registers = np.zeros(1 << precision, dtype=np.uint8)
        self.update_count = 0

    # ------------------------------------------------------------------
    # StreamSummary interface
    # ------------------------------------------------------------------

    @property
    def compatibility_token(self) -> tuple:
        return ("HyperLogLog", self.precision, self.seed)

    @property
    def m(self) -> int:
        """Number of registers."""
        return 1 << self.precision

    def update(self, key: int) -> None:
        """Fold one key in (``O(1)``)."""
        h = self._hash(key)
        index = h >> (64 - self.precision)
        # Rank = position of the first 1-bit in the remaining 64-b bits,
        # counting from 1; an all-zero remainder gets the maximum rank
        # width+1.  Maximum possible register value is 61 (b=4), so uint8
        # registers never saturate.
        width = 64 - self.precision
        rest = h & ((1 << width) - 1)
        rank = width - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank
        self.update_count += 1

    def update_many(self, keys: Iterable[int]) -> None:
        """Fold every key of an iterable in."""
        for key in keys:
            self.update(key)

    def nominal_bytes(self) -> int:
        return self.m

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cardinality(self) -> float:
        """Estimate of the number of distinct keys seen."""
        m = self.m
        inverse_powers = np.power(2.0, -self.registers.astype(np.float64))
        raw = _alpha(m) * m * m / float(inverse_powers.sum())
        if raw <= 2.5 * m:
            zero_registers = int(np.count_nonzero(self.registers == 0))
            if zero_registers:
                return m * math.log(m / zero_registers)
        return raw

    def relative_standard_error(self) -> float:
        """The theoretical RSE of :meth:`cardinality`, ``1.04/sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Counter of the union of both streams (elementwise max)."""
        self.require_compatible(other)
        merged = HyperLogLog(self.precision, self.seed)
        np.maximum(self.registers, other.registers, out=merged.registers)
        merged.update_count = self.update_count + other.update_count
        return merged

    def copy(self) -> "HyperLogLog":
        dup = HyperLogLog(self.precision, self.seed)
        dup.registers = self.registers.copy()
        dup.update_count = self.update_count
        return dup

    def __repr__(self) -> str:
        return (
            f"HyperLogLog(precision={self.precision}, "
            f"estimate={self.cardinality():.1f})"
        )
