"""k-mins MinHash sketches with witness (argmin) tracking.

This is the sketch at the heart of the reproduced paper: every vertex of
the graph stream carries one :class:`KMinHash` summarising its neighbor
*set*, and pairwise overlap measures are estimated from slot collisions.

Theory recap (Broder 1997).  Let ``h_1 .. h_k`` be independent uniform
hash functions and ``m_i(S) = min_{x in S} h_i(x)``.  For two sets
``A, B``::

    P[m_i(A) = m_i(B)] = |A ∩ B| / |A ∪ B| = J(A, B)

because the overall minimum of ``A ∪ B`` under ``h_i`` is a uniformly
random element of the union, and the minima coincide exactly when that
element lies in the intersection.  Averaging the ``k`` indicator
variables gives an unbiased estimator of ``J`` with variance
``J(1-J)/k`` and the Hoeffding tail ``P[|Ĵ - J| ≥ ε] ≤ 2 exp(-2kε²)``.

**Witness tracking** is the detail that unlocks Adamic–Adar-style
measures: alongside each slot minimum we store the *key that achieved
it* (the "witness").  When slots ``i`` of two sketches collide, the
shared witness is a uniform sample from ``A ∪ B`` *conditioned on lying
in ``A ∩ B``* — which is exactly the sampling distribution a
Horvitz–Thompson estimator of ``Σ_{w∈A∩B} f(w)`` needs (see
:mod:`repro.core.estimators`).  The cost is one extra 8-byte word per
slot.

All vertices of one store share a single
:class:`repro.hashing.HashBank`, so a sketch stores only two small numpy
arrays — ``O(k)`` space per vertex, ``O(k)`` vectorized work per update,
matching the paper's "constant space per vertex / constant time per
edge" claims.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError, SketchStateError
from repro.hashing import HashBank
from repro.hashing.mixers import MASK64
from repro.sketches.base import MergeableSummary

__all__ = ["KMinHash", "EMPTY_SLOT", "NO_WITNESS"]

#: Slot value meaning "no key seen yet" (larger than any real hash by
#: construction: real hashes equal to 2**64-1 are remapped down by 1,
#: a 2**-64 perturbation that is irrelevant statistically).
EMPTY_SLOT = np.uint64(MASK64)

#: Witness value meaning "no key seen yet".
NO_WITNESS = np.int64(-1)


class KMinHash(MergeableSummary):
    """A k-mins MinHash sketch of a set of non-negative integer keys.

    Parameters
    ----------
    bank:
        The shared :class:`~repro.hashing.HashBank` supplying the ``k``
        hash functions.  *Every sketch that will ever be compared with
        this one must be built from an equal bank* (same seed and size);
        :meth:`jaccard` and :meth:`merge` enforce this.
    track_witnesses:
        Keep the argmin key per slot (default ``True``).  Required by
        the Adamic–Adar / resource-allocation estimators; disable to
        halve the sketch size when only Jaccard is needed.

    Notes
    -----
    Keys must fit in a signed 64-bit integer and be non-negative
    (vertex ids after relabelling).  Updates are idempotent: re-inserting
    a key never changes the state, so parallel edges in the stream are
    harmless to the *set* semantics.
    """

    __slots__ = ("bank", "values", "witnesses", "update_count")

    def __init__(self, bank: HashBank, track_witnesses: bool = True) -> None:
        self.bank = bank
        self.values = np.full(bank.size, EMPTY_SLOT, dtype=np.uint64)
        self.witnesses: Optional[np.ndarray]
        if track_witnesses:
            self.witnesses = np.full(bank.size, NO_WITNESS, dtype=np.int64)
        else:
            self.witnesses = None
        self.update_count = 0

    # ------------------------------------------------------------------
    # StreamSummary interface
    # ------------------------------------------------------------------

    @property
    def compatibility_token(self) -> tuple:
        return ("KMinHash", self.bank.seed, self.bank.size)

    def update(self, key: int) -> None:
        """Fold ``key`` into the sketch (``O(k)`` vectorized work).

        Raises :class:`ConfigurationError` for negative keys — witness
        storage reserves negative values for "empty".
        """
        if key < 0:
            raise ConfigurationError(f"keys must be non-negative, got {key}")
        self.update_hashed(key, self.bank.values(key))

    def update_hashed(self, key: int, hashes: np.ndarray) -> None:
        """Fold ``key`` in using precomputed ``bank.values(key)``.

        The per-edge hot path computes both endpoints' hashes in one
        fused call (:meth:`repro.hashing.HashBank.values_pair`) and
        feeds each side through here; semantics are identical to
        :meth:`update`.
        """
        # Remap the (probability 2**-64 per slot) maximal hash value so
        # EMPTY_SLOT can never be produced by a real key.
        hashes = np.minimum(hashes, EMPTY_SLOT - np.uint64(1))
        improved = hashes < self.values
        if improved.any():
            self.values[improved] = hashes[improved]
            if self.witnesses is not None:
                self.witnesses[improved] = key
        self.update_count += 1

    def update_many(self, keys: Iterable[int]) -> None:
        """Fold every key of an iterable into the sketch."""
        for key in keys:
            self.update(key)

    @classmethod
    def _adopt_arrays(
        cls,
        bank: HashBank,
        values: np.ndarray,
        witnesses: Optional[np.ndarray],
        update_count: int,
    ) -> "KMinHash":
        """Internal zero-copy constructor for the block-ingest kernel.

        Adopts the given arrays *without* validation or copying — the
        kernel (:mod:`repro.core.block`) materialises thousands of
        fresh sketches per batch, and the public ``__init__`` +
        ``from_arrays`` path costs two redundant allocations and a
        shape check each.  Callers must hand over freshly-owned,
        correctly-shaped ``uint64 (k,)`` / ``int64 (k,)`` arrays.
        """
        sketch = cls.__new__(cls)
        sketch.bank = bank
        sketch.values = values
        sketch.witnesses = witnesses
        sketch.update_count = update_count
        return sketch

    @classmethod
    def from_arrays(
        cls,
        bank: HashBank,
        values: np.ndarray,
        witnesses: Optional[np.ndarray] = None,
        update_count: int = 0,
    ) -> "KMinHash":
        """Rebuild a sketch from exported slot arrays.

        The inverse of reading :attr:`values`/:attr:`witnesses`
        directly: checkpoint restore and the batch query engine's
        packed matrices both round-trip sketches through flat arrays,
        and this is the single validated entry point back.  Arrays are
        copied; ``witnesses=None`` builds a non-tracking sketch.

        Raises :class:`SketchStateError` when an array's length does
        not match the bank's slot count.
        """
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (bank.size,):
            raise SketchStateError(
                f"values array has shape {values.shape}, expected ({bank.size},)"
            )
        sketch = cls(bank, track_witnesses=witnesses is not None)
        sketch.values = values.copy()
        if witnesses is not None:
            witnesses = np.asarray(witnesses, dtype=np.int64)
            if witnesses.shape != (bank.size,):
                raise SketchStateError(
                    f"witnesses array has shape {witnesses.shape}, "
                    f"expected ({bank.size},)"
                )
            sketch.witnesses = witnesses.copy()
        sketch.update_count = int(update_count)
        return sketch

    def nominal_bytes(self) -> int:
        per_slot = 8 if self.witnesses is None else 16
        return self.bank.size * per_slot

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of slots (hash functions)."""
        return self.bank.size

    def is_empty(self) -> bool:
        """True if no key has ever been inserted."""
        return self.update_count == 0

    def slot_matches(self, other: "KMinHash") -> np.ndarray:
        """Boolean array: which slots hold equal *non-empty* minima.

        Slots that are empty on either side never match (an empty slot
        carries no sample).
        """
        self.require_compatible(other)
        both_filled = (self.values != EMPTY_SLOT) & (other.values != EMPTY_SLOT)
        return both_filled & (self.values == other.values)

    def jaccard(self, other: "KMinHash") -> float:
        """Unbiased estimate of the Jaccard similarity of the two sets.

        Returns 0.0 when either sketch is empty: the Jaccard similarity
        with the empty set is conventionally zero, and an empty sketch
        summarises the empty set exactly.
        """
        self.require_compatible(other)
        if self.is_empty() or other.is_empty():
            return 0.0
        return float(np.count_nonzero(self.slot_matches(other))) / self.k

    def matching_witnesses(self, other: "KMinHash") -> np.ndarray:
        """Witness keys of the slots where both sketches collide.

        Each returned key is (a) a member of both underlying sets'
        union, (b) conditionally uniform over the *intersection* given a
        collision — the sample the HT estimators consume.  Requires
        witness tracking on ``self``.
        """
        if self.witnesses is None:
            raise SketchStateError(
                "witness tracking is disabled; rebuild the sketch with "
                "track_witnesses=True to query witnesses"
            )
        return self.witnesses[self.slot_matches(other)]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def merge(self, other: "KMinHash") -> "KMinHash":
        """Sketch of the *union* of both input sets (new object).

        Per-slot: keep the smaller minimum and its witness.  The result
        is identical to the sketch that a single pass over the
        concatenated streams would have produced.
        """
        self.require_compatible(other)
        if (self.witnesses is None) != (other.witnesses is None):
            raise SketchStateError(
                "cannot merge a witness-tracking sketch with a non-tracking one"
            )
        merged = KMinHash(self.bank, track_witnesses=self.witnesses is not None)
        take_other = other.values < self.values
        merged.values = np.where(take_other, other.values, self.values)
        if self.witnesses is not None and other.witnesses is not None:
            merged.witnesses = np.where(take_other, other.witnesses, self.witnesses)
        merged.update_count = self.update_count + other.update_count
        return merged

    def copy(self) -> "KMinHash":
        """Deep copy (arrays are duplicated; the bank is shared)."""
        dup = KMinHash(self.bank, track_witnesses=self.witnesses is not None)
        dup.values = self.values.copy()
        if self.witnesses is not None:
            dup.witnesses = self.witnesses.copy()
        dup.update_count = self.update_count
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KMinHash):
            return NotImplemented
        if other.compatibility_token != self.compatibility_token:
            return False
        if not np.array_equal(self.values, other.values):
            return False
        if (self.witnesses is None) != (other.witnesses is None):
            return False
        if self.witnesses is not None and not np.array_equal(
            self.witnesses, other.witnesses
        ):
            return False
        return True

    def __hash__(self) -> int:  # mutable container: identity hashing
        return id(self)

    def __repr__(self) -> str:
        filled = int(np.count_nonzero(self.values != EMPTY_SLOT))
        return (
            f"KMinHash(k={self.k}, filled_slots={filled}, "
            f"updates={self.update_count})"
        )
