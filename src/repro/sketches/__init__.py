"""Streaming summaries: MinHash, bottom-k, weighted MinHash, HLL,
Count-Min, reservoir sampling, Bloom filters.

Every class is seed-deterministic, reports its packed size via
``nominal_bytes()``, and (where the theory allows) supports ``merge``.
The graph-stream link predictors in :mod:`repro.core` are composed from
these primitives; each is also a usable standalone tool.
"""

from repro.sketches.base import MergeableSummary, StreamSummary
from repro.sketches.bloom import BloomFilter
from repro.sketches.bottomk import BottomK
from repro.sketches.countmin import CountMin
from repro.sketches.dynamic import DynamicKMinHash
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.minhash import EMPTY_SLOT, NO_WITNESS, KMinHash
from repro.sketches.reservoir import Reservoir
from repro.sketches.weighted_minhash import WeightedMinHash

__all__ = [
    "StreamSummary",
    "MergeableSummary",
    "KMinHash",
    "DynamicKMinHash",
    "EMPTY_SLOT",
    "NO_WITNESS",
    "BottomK",
    "WeightedMinHash",
    "HyperLogLog",
    "CountMin",
    "Reservoir",
    "BloomFilter",
]
