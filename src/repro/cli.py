"""Command-line interface: ``repro-linkpred``.

Twelve subcommands cover the everyday uses of the library without
writing code — exploration (``datasets``, ``stats``), prediction and
evaluation (``predict``, ``evaluate``, ``discover``, ``triangles``),
the production runtime (``ingest``, ``query``, ``serve``,
``monitor``, ``casebook``), and the codebase's own static gate
(``lint``):

* ``repro-linkpred datasets`` — the registry of synthetic SNAP
  stand-ins with their measured statistics (table E1).
* ``repro-linkpred stats <file-or-dataset>`` — constant-memory stream
  statistics of an edge list.
* ``repro-linkpred predict <file-or-dataset>`` — ingest a stream with a
  chosen method and print the top predicted links among two-hop
  candidates; ``--save-checkpoint``/``--load-checkpoint`` persist and
  reuse the sketch state across invocations.
* ``repro-linkpred evaluate <file-or-dataset>`` — estimation accuracy
  of a sketch method against the exact oracle on the same stream.
* ``repro-linkpred discover <file-or-dataset>`` — LSH self-join: find
  the most similar vertex pairs with no candidate list.
* ``repro-linkpred triangles <file-or-dataset>`` — one-pass streaming
  triangle count (optionally checked against the exact count).
* ``repro-linkpred ingest <file-or-dataset>`` — the fault-tolerant
  ingestion runtime: checkpointed, resumable consumption with retries
  and a dead-letter channel (``--checkpoint-every N --resume``); see
  ``docs/OPERATIONS.md``.
* ``repro-linkpred query <file-or-dataset>`` — the batch query engine:
  score a whole pair file (``--pairs-file``) or serve a top-k query
  (``--vertex``) through the vectorized ``repro.serve`` kernel, from a
  fresh ingest or a saved checkpoint, as a table, CSV or JSON.
* ``repro-linkpred serve`` — the always-on HTTP serving tier:
  ``POST /score``, ``GET /topk/<vertex>``, health/readiness probes and
  a Prometheus ``/metrics`` endpoint over immutable packed
  generations, with live background ingest, zero-downtime snapshot
  hot-swap (``--refresh-every``) and graceful SIGTERM drain
  (``--drain-timeout``); see ``docs/OPERATIONS.md``.
* ``repro-linkpred monitor <metrics-file>`` — render a metrics
  snapshot (a ``--metrics-out`` JSON-lines flight record or a saved
  snapshot) as human-readable tables, or scrape a running server with
  ``--url http://host:port/v1/metrics``; see ``docs/OBSERVABILITY.md``.
* ``repro-linkpred casebook`` — the adversarial input casebook: print
  the case taxonomy with default policies and repairs, and (with
  ``--check``) replay a labeled hostile corpus under all three policy
  modes, asserting per-case dispositions and replay convergence; see
  ``docs/CASEBOOK.md``.
* ``repro-linkpred lint <paths>`` — repro-lint, the AST invariant
  checker that gates CI: determinism on hot paths, the error
  taxonomy, metrics hygiene, the thread/async publication boundary
  and the facade surface; see ``docs/LINT.md``.

``ingest`` and ``query`` take ``--metrics-out FILE`` (and
``--metrics-every N``) to sample their metrics registry as JSON lines
that ``monitor`` and any Prometheus bridge can consume.

Input may be a registry dataset name or a path to a SNAP-format edge
list (``u v [timestamp]`` rows, ``#`` comments).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import SketchConfig, build_predictor
from repro.errors import ReproError
from repro.eval.candidates import sample_two_hop_pairs
from repro.eval.experiments import accuracy_profile
from repro.eval.reporting import format_table
from repro.exact.oracle import ExactOracle
from repro.graph import datasets
from repro.graph.io import read_edge_list
from repro.graph.stream import Edge, StreamStats

__all__ = ["main", "build_parser"]


def _load_edges(source: str, seed: int) -> List[Edge]:
    """Resolve a dataset name or an edge-list path into a stream."""
    if source in datasets.DATASETS:
        return datasets.load(source, seed=seed)
    if os.path.exists(source):
        return read_edge_list(source)
    known = ", ".join(datasets.dataset_names())
    raise ReproError(
        f"{source!r} is neither a registry dataset ({known}) nor a file path"
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in datasets.dataset_names():
        stats = datasets.statistics(name, seed=args.seed)
        spec = datasets.spec(name)
        rows.append(
            [
                name,
                spec.stands_in_for,
                int(stats["vertices"]),
                int(stats["edges"]),
                stats["mean_degree"],
                int(stats["max_degree"]),
                stats["tail_exponent"],
            ]
        )
    print(
        format_table(
            ["dataset", "stands in for", "|V|", "|E|", "mean deg", "max deg", "tail α"],
            rows,
            title="Registry datasets (synthetic SNAP stand-ins)",
            precision=2,
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = StreamStats()
    for edge in _load_edges(args.source, args.seed):
        stats.observe(edge)
    rows = [
        ["records", stats.records],
        ["approx distinct vertices", int(stats.approximate_vertices())],
        ["approx distinct edges", int(stats.approximate_edges())],
        ["duplicate ratio", stats.duplicate_ratio()],
    ]
    print(format_table(["statistic", "value"], rows, title=f"Stream: {args.source}"))
    return 0


def _config_from_args(args: argparse.Namespace) -> SketchConfig:
    # --dynamic / --ttl exist only on the ingest-flavored subcommands;
    # everywhere else the getattr defaults keep the append-only config.
    ttl = float(getattr(args, "ttl", 0.0) or 0.0)
    dynamic = bool(getattr(args, "dynamic", False)) or ttl > 0.0
    return SketchConfig(k=args.k, seed=args.seed, dynamic_mode=dynamic, ttl=ttl)


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_predictor, save_predictor

    edges = _load_edges(args.source, args.seed)
    oracle = ExactOracle()  # used only to enumerate two-hop candidates
    if args.load_checkpoint:
        predictor = load_predictor(args.load_checkpoint)
    else:
        predictor = build_predictor(
            args.method, _config_from_args(args), expected_vertices=None
        )
    for edge in edges:
        predictor.update(edge.u, edge.v)
        oracle.update(edge.u, edge.v)
    if args.save_checkpoint:
        saved = save_predictor(predictor, args.save_checkpoint)
        print(f"checkpoint: {saved} vertex sketches -> {args.save_checkpoint}")
    candidates = sample_two_hop_pairs(oracle.graph, args.pairs, seed=args.seed)
    ranked = predictor.rank_candidates(candidates, args.measure, top=args.top)
    rows = [[u, v, score] for (u, v), score in ranked]
    print(
        format_table(
            ["u", "v", args.measure],
            rows,
            title=(
                f"Top {args.top} predicted links on {args.source} "
                f"({args.method}, k={args.k})"
            ),
        )
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    edges = _load_edges(args.source, args.seed)
    oracle = ExactOracle()
    predictor = build_predictor(
        args.method, _config_from_args(args), expected_vertices=None
    )
    for edge in edges:
        predictor.update(edge.u, edge.v)
        oracle.update(edge.u, edge.v)
    pairs = sample_two_hop_pairs(oracle.graph, args.pairs, seed=args.seed)
    measures = args.measures.split(",")
    profile = accuracy_profile(predictor, oracle, pairs, measures)
    rows = [
        [measure, summary["mae"], summary["rmse"], summary["mre"]]
        for measure, summary in profile.items()
    ]
    print(
        format_table(
            ["measure", "MAE", "RMSE", "mean rel err"],
            rows,
            title=(
                f"{args.method} (k={args.k}) vs exact on {args.source}, "
                f"{len(pairs)} two-hop pairs"
            ),
        )
    )
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    from repro.core import MinHashLinkPredictor
    from repro.core.lshindex import LshCandidateIndex, bands_for_threshold

    edges = _load_edges(args.source, args.seed)
    predictor = MinHashLinkPredictor(SketchConfig(k=args.k, seed=args.seed))
    predictor.process(edges)
    bands, rows = bands_for_threshold(args.k, args.threshold)
    index = LshCandidateIndex(
        predictor, bands=bands, rows=rows, min_degree=args.min_degree
    )
    top = index.top_pairs(limit=args.top, min_jaccard=args.threshold * 0.7)
    table_rows = [[c.u, c.v, c.jaccard] for c, _ in top]
    print(
        format_table(
            ["u", "v", "Ĵ"],
            table_rows,
            title=(
                f"Most similar vertex pairs on {args.source} "
                f"({bands} bands x {rows} rows, threshold ~{index.threshold:.2f}"
                + (
                    f"; {index.skipped_buckets} overfull buckets skipped)"
                    if index.skipped_buckets
                    else ")"
                )
            ),
            precision=3,
        )
    )
    return 0


def _cmd_triangles(args: argparse.Namespace) -> int:
    from repro.core.triangles import StreamingTriangleCounter

    edges = _load_edges(args.source, args.seed)
    counter = StreamingTriangleCounter(SketchConfig(k=args.k, seed=args.seed))
    counter.process(edges)
    rows = [
        ["edges", counter.edges_seen],
        ["streaming triangle estimate", counter.triangle_estimate()],
        ["transitivity estimate", counter.transitivity_estimate()],
    ]
    if args.exact:
        from repro.graph.adjacency import AdjacencyGraph
        from repro.graph.algorithms import triangle_count

        exact = triangle_count(AdjacencyGraph.from_edges(edges))
        rows.append(["exact triangles", exact])
        if exact:
            rows.append(
                ["relative error", abs(counter.triangle_estimate() - exact) / exact]
            )
    print(
        format_table(
            ["quantity", "value"], rows, title=f"Triangles: {args.source}"
        )
    )
    return 0


def _metrics_reporter(args: argparse.Namespace, registry):
    """The --metrics-out/--metrics-every flight recorder (or None)."""
    from repro.obs import PeriodicReporter

    if not args.metrics_out:
        if args.metrics_every:
            raise ReproError("--metrics-every needs --metrics-out")
        return None
    return PeriodicReporter(
        registry, args.metrics_out, every_records=args.metrics_every
    )


def _add_metrics_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--metrics-out",
        default="",
        metavar="FILE",
        help="append JSON-lines metrics samples here (see 'monitor')",
    )
    sub.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="N",
        help="sample cadence in consumed records (0: one final sample)",
    )


def _ingest_guard(args: argparse.Namespace):
    """The casebook :class:`StreamGuard` for ingest, or ``None`` when
    neither ``--case-policy`` nor ``--hub-degree-limit`` was given (the
    legacy parse-level contract)."""
    if not args.case_policy and args.hub_degree_limit is None:
        return None
    from repro.stream import PolicySet, StreamGuard
    from repro.stream.policies import DEFAULT_HUB_DEGREE_LIMIT

    policies = (
        PolicySet.parse(args.case_policy) if args.case_policy else PolicySet()
    )
    ttl = float(getattr(args, "ttl", 0.0) or 0.0)
    return StreamGuard(
        policies,
        self_loops=args.self_loops,
        hub_degree_limit=(
            args.hub_degree_limit
            if args.hub_degree_limit is not None
            else DEFAULT_HUB_DEGREE_LIMIT
        ),
        supports_deletes=bool(getattr(args, "dynamic", False)) or ttl > 0.0,
    )


def _ingest_stat_rows(stats: dict) -> list:
    """Flatten runner stats into table rows, expanding the per-reason
    dead-letter and normalization breakdowns."""
    reasons = stats.pop("dead_letter_reasons")
    normalized = stats.pop("normalized_reasons")
    rows = [[key, value] for key, value in stats.items()]
    rows += [[f"dead_letter[{reason}]", count] for reason, count in reasons.items()]
    rows += [[f"normalized[{reason}]", count] for reason, count in normalized.items()]
    return rows


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry
    from repro.stream import (
        CheckpointManager,
        FileDeadLetters,
        FileEdgeSource,
        IteratorEdgeSource,
        MemoryDeadLetters,
        RetryingSource,
        RetryPolicy,
        StreamRunner,
    )

    if os.path.exists(args.source):
        source = FileEdgeSource(args.source)
    elif args.source in datasets.DATASETS:
        source = IteratorEdgeSource(
            datasets.load(args.source, seed=args.seed), name=f"dataset:{args.source}"
        )
    else:
        known = ", ".join(datasets.dataset_names())
        raise ReproError(
            f"{args.source!r} is neither a registry dataset ({known}) nor a file path"
        )
    retrying = RetryingSource(source, RetryPolicy(max_attempts=args.max_retries))
    if args.resume:
        # Resume preconditions are checked *before* CheckpointManager
        # runs (its constructor creates missing directories, which would
        # turn an operator typo into a silent fresh start).
        if not args.checkpoint_dir:
            raise ReproError("--resume needs --checkpoint-dir")
        if not os.path.isdir(args.checkpoint_dir):
            raise ReproError(
                f"--resume: checkpoint directory {args.checkpoint_dir!r} does not "
                "exist (check the path, or run once without --resume to create it)"
            )
    if args.workers > 1:
        return _cmd_ingest_sharded(args, retrying)
    registry = MetricsRegistry()
    reporter = _metrics_reporter(args, registry)
    manager = (
        CheckpointManager(args.checkpoint_dir, keep=args.keep, metrics=registry)
        if args.checkpoint_dir
        else None
    )
    sink = FileDeadLetters(args.dead_letter) if args.dead_letter else MemoryDeadLetters()
    runner = StreamRunner(
        retrying,
        config=_config_from_args(args),
        checkpoint_manager=manager,
        checkpoint_every=args.checkpoint_every if manager else 0,
        dead_letters=sink,
        policy=args.policy,
        self_loops=args.self_loops,
        guard=_ingest_guard(args),
        metrics=registry,
        reporter=reporter,
        batch_size=args.batch_size,
    )
    if args.resume:
        if not runner.resume():
            raise ReproError(
                f"--resume: no checkpoints found in {args.checkpoint_dir!r} "
                "(run once without --resume to create the first generation)"
            )
        print(f"resumed from generation {runner.resumed_from} at offset {runner.offset}")
    try:
        stats = runner.run(max_records=args.max_records)
    finally:
        if reporter is not None:
            reporter.close()  # writes the final sample
    rows = _ingest_stat_rows(stats)
    print(format_table(["metric", "value"], rows, title=f"Ingest: {args.source}"))
    if args.metrics_out:
        print(f"metrics: {reporter.samples_written} samples -> {args.metrics_out}")
    return 0


def _cmd_ingest_sharded(args: argparse.Namespace, source) -> int:
    """The ``--workers N`` leg of ingest: sharded parallel ingestion.

    The coordinator owns validation and dead-lettering, so the sink,
    policy and self-loop knobs behave exactly as in the serial leg;
    checkpoints land in per-shard ``shard-NN/`` subdirectories of
    ``--checkpoint-dir`` (what ``query --checkpoint-dir`` and
    ``repro.api.open_engine`` load back).  ``--metrics-out`` records a
    final snapshot of the runner's registry (per-record sampling would
    need a per-record hook the coordinator deliberately does not pay
    for).
    """
    from repro.obs import MetricsRegistry
    from repro.parallel import ShardedRunner
    from repro.stream import FileDeadLetters, MemoryDeadLetters

    registry = MetricsRegistry()
    reporter = _metrics_reporter(args, registry)
    sink = FileDeadLetters(args.dead_letter) if args.dead_letter else MemoryDeadLetters()
    runner = ShardedRunner(
        source,
        workers=args.workers,
        config=_config_from_args(args),
        checkpoint_dir=args.checkpoint_dir or None,
        checkpoint_every=args.checkpoint_every if args.checkpoint_dir else 0,
        keep=args.keep,
        dead_letters=sink,
        policy=args.policy,
        self_loops=args.self_loops,
        guard=_ingest_guard(args),
        metrics=registry,
        batch_size=args.batch_size,
    )
    if args.resume:
        if not runner.resume():
            raise ReproError(
                f"--resume: no shard checkpoints found in {args.checkpoint_dir!r} "
                "(run once without --resume to create the first generations)"
            )
        print(f"resuming {args.workers} shards from offsets {runner.shard_offsets}")
    try:
        stats = runner.run(max_records=args.max_records)
    finally:
        if reporter is not None:
            reporter.close()  # writes the final sample
    rows = _ingest_stat_rows(stats)
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"Ingest: {args.source} ({args.workers} shard workers)",
        )
    )
    if args.metrics_out:
        print(f"metrics: {reporter.samples_written} samples -> {args.metrics_out}")
    return 0


def _query_rows(args: argparse.Namespace, engine, reporter=None) -> list:
    """Resolve the query mode (pair file vs top-k) into result rows."""
    if bool(args.pairs_file) == (args.vertex is not None):
        raise ReproError("query needs exactly one of --pairs-file or --vertex")
    if args.pairs_file:
        if not os.path.exists(args.pairs_file):
            raise ReproError(f"pair file {args.pairs_file!r} does not exist")
        pairs = [
            (edge.u, edge.v)
            for edge in read_edge_list(args.pairs_file, allow_self_loops=True)
        ]
        # Score in --metrics-every sized slices so the reporter samples
        # mid-flight; one slice (= one kernel dispatch loop) otherwise.
        step = args.metrics_every if args.metrics_every else len(pairs) or 1
        rows = []
        for lo in range(0, len(pairs), step):
            chunk = pairs[lo : lo + step]
            scores = engine.score_many(chunk, args.measure)
            rows += [[u, v, float(score)] for (u, v), score in zip(chunk, scores)]
            if reporter is not None:
                reporter.tick(len(chunk))
        return rows
    ranked = engine.top_k(
        args.vertex,
        args.measure,
        k=args.top,
        prune=False if args.no_prune else None,  # None: engine's per-measure default
    )
    if reporter is not None:
        reporter.tick()
    return [[args.vertex, v, score] for v, score in ranked]


def _emit_query_results(args: argparse.Namespace, rows: list, stats: dict) -> None:
    import json as json_module

    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        if args.format == "csv":
            out.write(f"u,v,{args.measure}\n")
            for u, v, score in rows:
                out.write(f"{u},{v},{score!r}\n")
        elif args.format == "json":
            json_module.dump(
                {
                    "measure": args.measure,
                    "results": [
                        {"u": u, "v": v, "score": score} for u, v, score in rows
                    ],
                    "stats": stats,
                },
                out,
                indent=2,
            )
            out.write("\n")
        else:
            print(
                format_table(
                    ["u", "v", args.measure],
                    rows,
                    title=f"Batch scores ({len(rows)} results)",
                    precision=4,
                ),
                file=out,
            )
            stat_rows = [[key, value] for key, value in stats.items()]
            print(
                format_table(["stat", "value"], stat_rows, title="Engine stats"),
                file=out,
            )
    finally:
        if out is not sys.stdout:
            out.close()


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_predictor
    from repro.obs import MetricsRegistry, Tracer, render_trace
    from repro.serve import QueryEngine

    registry = MetricsRegistry()
    tracer = Tracer(registry)
    with tracer.span("query"):
        with tracer.span("warm"):
            if args.load_checkpoint and args.checkpoint_dir:
                raise ReproError(
                    "query takes --load-checkpoint (one .npz) or "
                    "--checkpoint-dir (an ingest directory), not both"
                )
            if args.load_checkpoint:
                predictor = load_predictor(args.load_checkpoint)
            elif args.checkpoint_dir:
                from pathlib import Path

                from repro.api import _predictor_from_checkpoint_dir

                if not os.path.isdir(args.checkpoint_dir):
                    raise ReproError(
                        f"--checkpoint-dir: {args.checkpoint_dir!r} is not a directory"
                    )
                predictor = _predictor_from_checkpoint_dir(Path(args.checkpoint_dir))
            elif args.source:
                predictor = build_predictor(
                    "minhash", _config_from_args(args), expected_vertices=None
                )
                for edge in _load_edges(args.source, args.seed):
                    predictor.update(edge.u, edge.v)
            else:
                raise ReproError(
                    "query needs a source (dataset/edge list), --load-checkpoint, "
                    "or --checkpoint-dir"
                )
        with tracer.span("pack"):
            engine = QueryEngine(predictor, metrics=registry)
        reporter = _metrics_reporter(args, registry)
        try:
            with tracer.span("score"):
                rows = _query_rows(args, engine, reporter)
        finally:
            if reporter is not None:
                reporter.close()  # writes the final sample
    _emit_query_results(args, rows, engine.stats())
    if args.format == "table":
        print(render_trace(tracer.traces[-1]))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import serve as api_serve

    if args.load_checkpoint and args.checkpoint_dir and not args.source:
        raise ReproError(
            "serve takes --load-checkpoint (one .npz) or --checkpoint-dir "
            "(an ingest directory), not both"
        )
    policies = args.case_policy or None
    if args.source:
        # Live mode: background ingest + periodic hot swap.
        server = api_serve(
            source=args.source,
            config=_config_from_args(args),
            host=args.host,
            port=args.port,
            refresh_every=args.refresh_every,
            drain_timeout=args.drain_timeout,
            checkpoint_dir=args.checkpoint_dir or None,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            keep=args.keep,
            policy=args.policy,
            self_loops=args.self_loops,
            policies=policies,
            batch_size=args.batch_size,
            max_retries=args.max_retries,
            seed=args.seed,
            announce=lambda url: print(f"serving {url}", flush=True),
        )
    else:
        target = args.load_checkpoint or args.checkpoint_dir
        if not target:
            raise ReproError(
                "serve needs a source (dataset/edge list) for live ingest, or "
                "--load-checkpoint/--checkpoint-dir for static serving"
            )
        if args.resume:
            raise ReproError("--resume is a live-mode flag (pass a source too)")
        server = api_serve(
            target,
            host=args.host,
            port=args.port,
            drain_timeout=args.drain_timeout,
            announce=lambda url: print(f"serving {url}", flush=True),
        )
    return server.run()


def _load_snapshot(path: str) -> dict:
    """Read a metrics snapshot: one JSON document, or the last line of
    a ``--metrics-out`` JSON-lines flight record."""
    import json as json_module

    if not os.path.exists(path):
        raise ReproError(f"metrics file {path!r} does not exist")
    text = open(path, "r", encoding="utf-8").read()
    try:
        loaded = json_module.loads(text)
    except ValueError:
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ReproError(f"metrics file {path!r} is empty") from None
        try:
            loaded = json_module.loads(lines[-1])
        except ValueError as error:
            raise ReproError(f"metrics file {path!r} is not JSON: {error}") from None
    if not isinstance(loaded, dict) or "instruments" not in loaded:
        raise ReproError(
            f"metrics file {path!r} is not a repro.obs snapshot "
            "(expected an object with an 'instruments' list)"
        )
    return loaded


def _format_series_labels(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _fetch_snapshot(url: str) -> dict:
    """Scrape a running server's ``/metrics`` endpoint as a snapshot.

    Requests the JSON exposition (``Accept: application/json``), which
    the serving tier renders via :func:`repro.obs.export.snapshot` —
    the same schema ``--metrics-out`` files hold, so the rendering
    below is shared between the offline and live paths.
    """
    import json as json_module
    import urllib.error
    import urllib.request

    if "://" not in url:
        url = f"http://{url}"
    if not url.startswith(("http://", "https://")):
        raise ReproError(f"--url must be an http(s) URL, got {url!r}")
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        raise ReproError(f"could not scrape {url!r}: {error}") from None
    try:
        loaded = json_module.loads(text)
    except ValueError as error:
        raise ReproError(
            f"{url!r} did not return JSON ({error}); point --url at the "
            "server's /metrics endpoint"
        ) from None
    if not isinstance(loaded, dict) or "instruments" not in loaded:
        raise ReproError(
            f"{url!r} is not a repro.obs snapshot endpoint "
            "(expected an object with an 'instruments' list)"
        )
    return loaded


def _cmd_monitor(args: argparse.Namespace) -> int:
    import datetime

    if bool(args.metrics_file) == bool(args.url):
        raise ReproError(
            "monitor needs exactly one of a metrics file or --url http://host:port/v1/metrics"
        )
    if args.url:
        loaded = _fetch_snapshot(args.url)
        source_label = args.url
    else:
        loaded = _load_snapshot(args.metrics_file)
        source_label = args.metrics_file
    when = datetime.datetime.fromtimestamp(loaded.get("ts", 0)).isoformat(sep=" ")
    scalar_rows = []
    histogram_rows = []
    for instrument in loaded.get("instruments", []):
        name = instrument.get("name", "?")
        for series in instrument.get("series", []):
            label = _format_series_labels(name, series.get("labels", {}))
            if instrument.get("type") == "histogram":
                histogram_rows.append(
                    [
                        label,
                        series.get("count", 0),
                        series.get("sum", 0.0),
                        series.get("p50", 0.0),
                        series.get("p95", 0.0),
                        series.get("p99", 0.0),
                    ]
                )
            else:
                scalar_rows.append([label, instrument.get("type", "?"), series.get("value")])
    if scalar_rows:
        print(
            format_table(
                ["instrument", "type", "value"],
                scalar_rows,
                title=f"Metrics snapshot @ {when} ({source_label})",
                precision=4,
            )
        )
    if histogram_rows:
        print(
            format_table(
                ["histogram", "count", "sum s", "p50 s", "p95 s", "p99 s"],
                histogram_rows,
                title="Latency distributions (quantiles estimated from buckets)",
                precision=6,
            )
        )
    if not scalar_rows and not histogram_rows:
        print(f"(snapshot at {when} holds no instruments)")
    return 0


def _cmd_casebook(args: argparse.Namespace) -> int:
    from repro.stream.casebook import (
        CASEBOOK,
        SyntheticCorpusGenerator,
        check_casebook,
    )

    if args.write_corpus:
        generator = SyntheticCorpusGenerator(
            args.seed,
            per_case=args.per_case,
            hub_degree_limit=args.hub_degree_limit,
            with_deletes=args.with_deletes,
        )
        lines = generator.hostile_lines()
        with open(args.write_corpus, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        print(f"hostile corpus: {len(lines)} lines -> {args.write_corpus}")
    taxonomy_rows = [
        [
            case.reason,
            case.level,
            case.default_policy,
            "yes" if case.repairable else "no",
            case.repair,
        ]
        for case in CASEBOOK
    ]
    print(
        format_table(
            ["case", "level", "default", "repairable", "normalize-mode repair"],
            taxonomy_rows,
            title="Adversarial input casebook (docs/CASEBOOK.md)",
        )
    )
    if not args.check:
        return 0
    report = check_casebook(
        seed=args.seed,
        per_case=args.per_case,
        hub_degree_limit=args.hub_degree_limit,
        workers=args.check_workers,
        with_deletes=args.with_deletes,
    )
    disposition_rows = [
        [row.case, row.mode, row.expected, f"{row.matched}/{row.total}"]
        for row in report.rows
    ]
    print(
        format_table(
            ["case", "mode", "expected disposition", "matched"],
            disposition_rows,
            title=(
                f"Casebook replay: {args.per_case} instances per case "
                "under each uniform policy mode"
            ),
        )
    )
    checks = [
        ("normalize-everything converges to clean ingest", report.normalize_converged),
        ("quarantine + dead-letter replay converges", report.replay_converged),
    ]
    if report.sharded_normalize_converged is not None:
        checks.append(
            (
                f"sharded (x{args.check_workers}) normalize converges",
                report.sharded_normalize_converged,
            )
        )
        checks.append(
            (
                f"sharded (x{args.check_workers}) quarantine + replay converges",
                report.sharded_replay_converged,
            )
        )
    for label, passed in checks:
        print(f"{'PASS' if passed else 'FAIL'}  {label}")
    for mismatch in report.mismatches:
        print(f"MISMATCH  {mismatch}")
    if not report.ok:
        print("casebook check FAILED", file=sys.stderr)
        return 1
    print("casebook check OK")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Delegate to the analysis CLI so `repro-linkpred lint` and
    # `python -m repro.analysis` are the same tool with the same flags.
    from repro.analysis.cli import main as lint_main

    argv: list = list(args.paths) + ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline is not None:
        argv += ["--write-baseline", args.write_baseline]
    if args.output is not None:
        argv += ["--output", args.output]
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed separately for the CLI tests).

    Argument conventions, normalized across every subcommand:

    * ``--seed`` is accepted both globally (``repro-linkpred --seed 7
      predict ...``, the historic spelling) and *per subcommand*
      (``repro-linkpred predict --seed 7 ...``); the subcommand
      position wins when both are given.
    * ``--k`` is the sketch size everywhere it applies.
    * Sampled-pair counts are ``--pairs`` everywhere (``predict`` keeps
      its old ``--candidates`` spelling as a hidden alias).
    * Checkpoint *directories* are ``--checkpoint-dir`` everywhere
      (``ingest``, and now ``query`` for serving from one); single
      ``.npz`` snapshot files stay ``--save-checkpoint`` /
      ``--load-checkpoint``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-linkpred",
        description="Sketch-based streaming link prediction (ICDE 2016 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_seed_argument(sub: argparse.ArgumentParser) -> None:
        # SUPPRESS keeps the global --seed's parsed value when the
        # subcommand flag is absent (a plain default would clobber it).
        sub.add_argument(
            "--seed",
            type=int,
            default=argparse.SUPPRESS,
            help="random seed (overrides the global --seed)",
        )

    datasets_cmd = commands.add_parser("datasets", help="list registry datasets")
    add_seed_argument(datasets_cmd)
    datasets_cmd.set_defaults(run=_cmd_datasets)

    stats = commands.add_parser("stats", help="constant-memory stream statistics")
    stats.add_argument("source", help="dataset name or edge-list path")
    add_seed_argument(stats)
    stats.set_defaults(run=_cmd_stats)

    def add_method_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("source", help="dataset name or edge-list path")
        sub.add_argument(
            "--method",
            default="minhash",
            choices=["minhash", "biased", "exact", "neighbor_reservoir"],
        )
        sub.add_argument("--k", type=int, default=128, help="sketch slots per vertex")
        add_seed_argument(sub)

    predict = commands.add_parser("predict", help="rank likely future links")
    add_method_arguments(predict)
    predict.add_argument("--measure", default="adamic_adar")
    predict.add_argument(
        "--pairs",
        type=int,
        default=2000,
        help="two-hop candidate pairs to sample and rank",
    )
    predict.add_argument(  # pre-1.1 spelling, kept working but undocumented
        "--candidates",
        dest="pairs",
        type=int,
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    predict.add_argument("--top", type=int, default=20)
    predict.add_argument(
        "--save-checkpoint", default="", help="write sketch state to this .npz"
    )
    predict.add_argument(
        "--load-checkpoint",
        default="",
        help="resume from a checkpoint instead of a fresh predictor "
        "(minhash method only)",
    )
    predict.set_defaults(run=_cmd_predict)

    discover = commands.add_parser(
        "discover", help="LSH self-join: most similar vertex pairs"
    )
    discover.add_argument("source", help="dataset name or edge-list path")
    discover.add_argument("--k", type=int, default=256)
    discover.add_argument(
        "--threshold", type=float, default=0.6, help="S-curve similarity cut"
    )
    discover.add_argument("--top", type=int, default=20)
    discover.add_argument("--min-degree", type=int, default=3)
    add_seed_argument(discover)
    discover.set_defaults(run=_cmd_discover)

    triangles = commands.add_parser(
        "triangles", help="one-pass streaming triangle count"
    )
    triangles.add_argument("source", help="dataset name or edge-list path")
    triangles.add_argument("--k", type=int, default=256)
    triangles.add_argument(
        "--exact", action="store_true", help="also compute the exact count"
    )
    add_seed_argument(triangles)
    triangles.set_defaults(run=_cmd_triangles)

    ingest = commands.add_parser(
        "ingest", help="fault-tolerant checkpointed ingestion (resumable)"
    )
    ingest.add_argument("source", help="dataset name or edge-list path")
    ingest.add_argument("--k", type=int, default=128, help="sketch slots per vertex")
    add_seed_argument(ingest)
    ingest.add_argument(
        "--dynamic",
        action="store_true",
        help="deletion-tolerant (fully dynamic) sketches: accept "
        "'op u v [t]' records where op is add/delete/+/- "
        "(see docs/OPERATIONS.md)",
    )
    ingest.add_argument(
        "--ttl",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sliding-window expiry: edges unseen for SECONDS of stream "
        "time drop out of every estimate (implies --dynamic; 0: no expiry)",
    )
    ingest.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard worker processes (1: serial in-process ingest; >1 "
        "partitions the stream and merges to a bit-identical predictor)",
    )
    ingest.add_argument(
        "--checkpoint-dir", default="", help="directory for rotated checkpoint generations"
    )
    ingest.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="N",
        help="snapshot state every N consumed records (0: only at end)",
    )
    ingest.add_argument(
        "--resume",
        action="store_true",
        help="restore (state, offset) from the newest intact checkpoint",
    )
    ingest.add_argument(
        "--keep", type=int, default=3, help="checkpoint generations to retain"
    )
    ingest.add_argument(
        "--dead-letter",
        default="",
        metavar="FILE",
        help="append quarantined records to this JSON-lines file",
    )
    ingest.add_argument(
        "--policy",
        default="quarantine",
        choices=["quarantine", "strict"],
        help="malformed-record policy: route aside, or fail fast",
    )
    ingest.add_argument(
        "--self-loops",
        default="quarantine",
        choices=["quarantine", "drop"],
        help="self-loop handling: count in the dead-letter channel, or drop silently",
    )
    ingest.add_argument(
        "--case-policy",
        default="",
        metavar="SPEC",
        help="casebook per-case policies: a uniform mode ('strict', "
        "'normalize'), 'default', or 'case=mode,...' overrides "
        "(e.g. 'duplicate_edge=normalize,hub_anomaly=strict'); "
        "activates stream-level detection — see docs/CASEBOOK.md",
    )
    ingest.add_argument(
        "--hub-degree-limit",
        type=int,
        default=None,
        metavar="D",
        help="degree past which a vertex is a hub anomaly (implies the "
        "default --case-policy when given alone)",
    )
    ingest.add_argument(
        "--max-retries",
        type=int,
        default=5,
        help="consecutive transient I/O failures tolerated before giving up",
    )
    ingest.add_argument(
        "--max-records", type=int, default=None, help="stop after N records (drills)"
    )
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=0,
        metavar="B",
        help="block-ingest batch size: fold accepted edges through the "
        "vectorized update_block kernel in spans of up to B edges "
        "(bit-identical to scalar ingest; 0/1: per-record updates; "
        "try 4096)",
    )
    _add_metrics_arguments(ingest)
    ingest.set_defaults(run=_cmd_ingest)

    query = commands.add_parser(
        "query", help="batch-score a pair file or serve a top-k query"
    )
    query.add_argument(
        "source",
        nargs="?",
        default="",
        help="dataset name or edge-list path to ingest (omit with --load-checkpoint)",
    )
    query.add_argument("--k", type=int, default=128, help="sketch slots per vertex")
    add_seed_argument(query)
    query.add_argument(
        "--load-checkpoint",
        default="",
        metavar="NPZ",
        help="serve from a saved checkpoint instead of ingesting a stream",
    )
    query.add_argument(
        "--checkpoint-dir",
        default="",
        metavar="DIR",
        help="serve from an ingest checkpoint directory (serial or "
        "sharded shard-NN layout; newest intact generation wins)",
    )
    query.add_argument(
        "--pairs-file",
        default="",
        metavar="FILE",
        help="score every 'u v' pair in this file (comments/# allowed)",
    )
    query.add_argument(
        "--vertex",
        type=int,
        default=None,
        metavar="U",
        help="top-k mode: find the best partners of this vertex",
    )
    query.add_argument("--top", type=int, default=10, help="top-k result size")
    query.add_argument(
        "--no-prune",
        action="store_true",
        help="top-k mode: score all vertices instead of LSH candidates",
    )
    query.add_argument("--measure", default="jaccard")
    query.add_argument(
        "--format",
        default="table",
        choices=["table", "csv", "json"],
        help="output shape (table includes the engine stats block)",
    )
    query.add_argument(
        "--output", default="", metavar="FILE", help="write results here instead of stdout"
    )
    _add_metrics_arguments(query)
    query.set_defaults(run=_cmd_query)

    serve = commands.add_parser(
        "serve",
        help="always-on HTTP serving tier with zero-downtime hot swap",
    )
    serve.add_argument(
        "source",
        nargs="?",
        default="",
        help="dataset name or edge-list path to ingest live in the "
        "background (omit for static serving from a checkpoint)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0: ephemeral)"
    )
    serve.add_argument("--k", type=int, default=128, help="sketch slots per vertex")
    add_seed_argument(serve)
    serve.add_argument(
        "--load-checkpoint",
        default="",
        metavar="NPZ",
        help="serve one frozen generation from a saved .npz snapshot",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default="",
        metavar="DIR",
        help="without a source: serve statically from this ingest "
        "directory; with a source: write rotated checkpoints here "
        "(and --resume restores from them)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="N",
        help="live mode: snapshot state every N consumed records",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="live mode: restore (state, offset) from the newest "
        "checkpoint before serving",
    )
    serve.add_argument(
        "--keep", type=int, default=3, help="checkpoint generations to retain"
    )
    serve.add_argument(
        "--refresh-every",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds between generation hot-swaps in live mode "
        "(0: publish only once the stream is exhausted)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds the SIGTERM drain waits for in-flight requests",
    )
    serve.add_argument(
        "--policy",
        default="quarantine",
        choices=["quarantine", "strict"],
        help="malformed-record policy for live ingest",
    )
    serve.add_argument(
        "--self-loops",
        default="quarantine",
        choices=["quarantine", "drop"],
        help="self-loop handling for live ingest",
    )
    serve.add_argument(
        "--case-policy",
        default="",
        metavar="SPEC",
        help="casebook per-case policies for live ingest (see 'ingest')",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=0,
        metavar="B",
        help="block-ingest batch size for live ingest (0/1: scalar)",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=5,
        help="transient source I/O failures tolerated before giving up",
    )
    serve.set_defaults(run=_cmd_serve)

    casebook = commands.add_parser(
        "casebook",
        help="the adversarial input casebook: taxonomy, and --check replay",
    )
    add_seed_argument(casebook)
    casebook.add_argument(
        "--check",
        action="store_true",
        help="replay a labeled hostile corpus under all three policy "
        "modes and verify dispositions + replay convergence",
    )
    casebook.add_argument(
        "--per-case",
        type=int,
        default=2,
        metavar="N",
        help="hostile instances injected per case in the corpus",
    )
    casebook.add_argument(
        "--hub-degree-limit",
        type=int,
        default=6,
        metavar="D",
        help="hub threshold for the synthetic corpus (small on purpose)",
    )
    casebook.add_argument(
        "--check-workers",
        type=int,
        default=0,
        metavar="N",
        help="additionally prove convergence through N shard workers",
    )
    casebook.add_argument(
        "--write-corpus",
        default="",
        metavar="FILE",
        help="also write the hostile corpus lines to this file",
    )
    casebook.add_argument(
        "--with-deletes",
        action="store_true",
        help="use the deletion-bearing corpus variant: valid add/delete "
        "pairs in the clean backbone, delete_unseen_edge injections, "
        "and dynamic-mode predictors for the convergence proofs",
    )
    casebook.set_defaults(run=_cmd_casebook)

    monitor = commands.add_parser(
        "monitor", help="render a metrics snapshot as human-readable tables"
    )
    monitor.add_argument(
        "metrics_file",
        nargs="?",
        default="",
        help="a --metrics-out JSON-lines file (last sample wins) or a saved snapshot",
    )
    monitor.add_argument(
        "--url",
        default="",
        metavar="URL",
        help="scrape a running server instead: http://host:port/v1/metrics",
    )
    add_seed_argument(monitor)
    monitor.set_defaults(run=_cmd_monitor)

    evaluate = commands.add_parser("evaluate", help="accuracy vs the exact oracle")
    add_method_arguments(evaluate)
    evaluate.add_argument(
        "--measures", default="jaccard,common_neighbors,adamic_adar"
    )
    evaluate.add_argument("--pairs", type=int, default=1000)
    evaluate.set_defaults(run=_cmd_evaluate)

    lint = commands.add_parser(
        "lint", help="repro-lint: AST invariant checks (see docs/LINT.md)"
    )
    lint.add_argument("paths", nargs="+", metavar="PATH")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", default=None, metavar="FILE")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--write-baseline", default=None, metavar="FILE")
    lint.add_argument("--output", default=None, metavar="FILE")
    lint.set_defaults(run=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
