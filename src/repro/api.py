"""The unified high-level API: five verbs covering the whole pipeline.

This module is the *recommended* entry point for programmatic use —
everything an application needs to reproduce the paper's pipeline fits
in five functions:

* :func:`build_predictor` — construct a sketch predictor (or a
  baseline, by method name);
* :func:`ingest` — consume an edge stream into a predictor, serially
  or sharded across ``workers`` processes, with optional resumable
  checkpoints;
* :func:`open_engine` — wrap a warm predictor, a saved ``.npz``
  snapshot, or a checkpoint directory (serial *or* sharded layout) in
  the batch :class:`~repro.serve.engine.QueryEngine`;
* :func:`evaluate` — measure estimation accuracy against the exact
  oracle on sampled two-hop pairs;
* :func:`serve` — put any of the above behind an always-on HTTP
  service with zero-downtime snapshot hot-swap (static or with live
  background ingest).

The deeper modules (:mod:`repro.core`, :mod:`repro.stream`,
:mod:`repro.parallel`, :mod:`repro.serve`, :mod:`repro.eval`) stay
public for power users — this facade only composes them, it hides
nothing.  ``repro.api.__all__`` is the documented stable surface,
pinned by the test suite; everything here is importable straight off
the package root (``from repro import ingest``).

Sources are polymorphic throughout: a registry dataset name, a path to
a SNAP-format edge list, an :class:`~repro.stream.sources.EdgeSource`,
or any iterable of edges / ``(u, v[, timestamp])`` tuples /
:class:`StreamRecord` values.  The typed
:class:`~repro.graph.stream.StreamRecord` (op + edge + timestamp +
weight) is the canonical stream unit — plain tuples and untyped text
lines are coerced into ``add`` records by the back-compat shim
(:func:`repro.stream.policies.coerce_stream_record`), so every
pre-record caller keeps working unchanged.  Deletions (``op="delete"``)
are consumed when ``config.dynamic_mode`` is on; append-only
configurations dead-letter them as ``unsupported_delete``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.core.config import SketchConfig
from repro.core.dynamic import merge_dynamic_shards
from repro.core.predictor import MinHashLinkPredictor, merge_shards
from repro.core.registry import build_predictor as _registry_build
from repro.errors import ConfigurationError, ReproError
from repro.graph.stream import StreamRecord
from repro.interface import LinkPredictor
from repro.obs.registry import MetricsRegistry
from repro.serve.engine import QueryEngine

__all__ = [
    "IngestReport",
    "StreamRecord",
    "build_predictor",
    "evaluate",
    "ingest",
    "open_engine",
    "serve",
]

SourceLike = Union[str, Path, Iterable]


def build_predictor(
    config: Union[SketchConfig, str, None] = None,
    *args,
    method: str = "minhash",
    expected_vertices: Optional[int] = None,
) -> LinkPredictor:
    """Construct a predictor from a :class:`SketchConfig`.

    The facade spelling is config-first::

        predictor = build_predictor(SketchConfig(k=128, seed=42))
        baseline = build_predictor(config, method="neighbor_reservoir")

    The pre-facade registry spelling ``build_predictor("minhash",
    config, expected_vertices)`` (method name first) is still accepted,
    so existing callers of ``repro.build_predictor`` are unaffected.
    """
    if isinstance(config, str):
        # Legacy positional form: (method, config?, expected_vertices?).
        return _registry_build(config, *args, expected_vertices=expected_vertices)
    if args:
        raise ConfigurationError(
            "build_predictor(config) takes keyword arguments only "
            "(method=..., expected_vertices=...)"
        )
    return _registry_build(method, config, expected_vertices=expected_vertices)


@dataclass
class IngestReport:
    """What :func:`ingest` hands back: the warm predictor plus health.

    ``runner`` is the underlying :class:`~repro.stream.runner.StreamRunner`
    or :class:`~repro.parallel.ShardedRunner` for callers that want the
    metrics registry, the dead-letter sink, or another ``run()`` leg.
    """

    predictor: MinHashLinkPredictor
    stats: Dict[str, object]
    runner: object

    @property
    def records_ok(self) -> int:
        return int(self.stats.get("records_ok", 0))


def _resolve_source(source: SourceLike, seed: int, *, max_retries: int = 0):
    """Turn any source-like value into an :class:`EdgeSource`."""
    from repro.graph import datasets
    from repro.stream.sources import (
        FileEdgeSource,
        IteratorEdgeSource,
        RetryingSource,
        RetryPolicy,
    )

    if hasattr(source, "records"):  # already an EdgeSource
        resolved = source
    elif isinstance(source, (str, Path)):
        name = str(source)
        if os.path.exists(name):
            resolved = FileEdgeSource(name)
        elif name in datasets.DATASETS:
            resolved = IteratorEdgeSource(
                datasets.load(name, seed=seed), name=f"dataset:{name}"
            )
        else:
            known = ", ".join(datasets.dataset_names())
            raise ReproError(
                f"{name!r} is neither a registry dataset ({known}) nor a file path"
            )
    else:
        resolved = IteratorEdgeSource(source)
    if max_retries:
        resolved = RetryingSource(resolved, RetryPolicy(max_attempts=max_retries))
    return resolved


def ingest(
    source: SourceLike,
    *,
    config: Optional[SketchConfig] = None,
    workers: int = 1,
    checkpoint_dir: Union[str, Path, None] = None,
    checkpoint_every: int = 0,
    resume: bool = False,
    keep: int = 3,
    policy: str = "quarantine",
    self_loops: str = "quarantine",
    policies: object = None,
    max_records: Optional[int] = None,
    max_retries: int = 0,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    batch_size: int = 0,
) -> IngestReport:
    """Consume an edge stream into a predictor; serial or sharded.

    ``workers=1`` runs the serial
    :class:`~repro.stream.runner.StreamRunner`; ``workers>1`` runs the
    sharded :class:`~repro.parallel.ShardedRunner` (which requires a
    mergeable config, i.e. ``degree_mode="exact"``) and returns the
    merged predictor — bit-identical to the serial result on the same
    stream.  ``checkpoint_dir`` + ``checkpoint_every`` arm resumable
    checkpoints (per-shard subdirectories when sharded); ``resume=True``
    restores from them first.  ``seed`` only seeds registry *dataset*
    generation — sketch randomness lives in ``config.seed``.

    ``policies`` opts into the adversarial-input casebook contract: a
    :class:`~repro.stream.policies.PolicySet`, or its CLI string
    spelling (``"strict"``, ``"normalize"``,
    ``"duplicate_edge=normalize,hub_anomaly=strict"``, ...).  ``None``
    keeps the legacy parse-level contract.  See ``docs/CASEBOOK.md``.

    ``batch_size > 1`` routes accepted edges through the vectorized
    block-ingest kernel
    (:meth:`~repro.core.predictor.MinHashLinkPredictor.update_block`)
    in spans of up to that many edges — several times faster at scale
    and bit-identical to scalar ingestion (guard ordering, checkpoints
    and crash recovery included).  ``0``/``1`` keeps the scalar
    per-record path.

    ``config.dynamic_mode=True`` builds the deletion-tolerant
    :class:`~repro.core.dynamic.DynamicMinHashPredictor` instead:
    ``delete``/``-`` records retract edges, a positive ``config.ttl``
    expires idle ones, and both the serial and sharded paths (merges,
    checkpoints, resume) stay bit-identical under any add/delete
    interleaving.  Append-only configurations dead-letter deletes with
    reason ``unsupported_delete``.
    """
    from repro.parallel import ShardedRunner
    from repro.stream.checkpoint import CheckpointManager
    from repro.stream.runner import StreamRunner

    resolved = _resolve_source(source, seed, max_retries=max_retries)
    if workers > 1:
        runner = ShardedRunner(
            resolved,
            workers=workers,
            config=config,
            checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
            checkpoint_every=checkpoint_every,
            keep=keep,
            policy=policy,
            self_loops=self_loops,
            policies=policies,
            metrics=metrics,
            batch_size=batch_size,
        )
        if resume:
            runner.resume()
        stats = runner.run(max_records=max_records)
    else:
        manager = (
            CheckpointManager(checkpoint_dir, keep=keep)
            if checkpoint_dir
            else None
        )
        runner = StreamRunner(
            resolved,
            config=config,
            checkpoint_manager=manager,
            checkpoint_every=checkpoint_every if manager else 0,
            policy=policy,
            self_loops=self_loops,
            policies=policies,
            metrics=metrics,
            batch_size=batch_size,
        )
        if resume:
            if manager is None:
                raise ConfigurationError("resume=True needs a checkpoint_dir")
            runner.resume()
        stats = runner.run(max_records=max_records)
    return IngestReport(predictor=runner.predictor, stats=stats, runner=runner)


def _predictor_from_checkpoint_dir(directory: Path) -> MinHashLinkPredictor:
    """Load a predictor from a serial *or* sharded checkpoint directory."""
    from repro.parallel.worker import shard_directory
    from repro.stream.checkpoint import CheckpointManager

    shard_dirs = sorted(directory.glob("shard-*"))
    if shard_dirs:
        shards = []
        for index, shard_dir in enumerate(shard_dirs):
            if shard_dir != shard_directory(directory, index):
                raise ReproError(
                    f"sharded checkpoint layout in {directory} is not contiguous "
                    f"(unexpected {shard_dir.name}); cannot merge a partial shard set"
                )
            checkpoint = CheckpointManager(shard_dir).load_latest()
            if checkpoint is None:
                raise ReproError(f"shard directory {shard_dir} holds no checkpoint")
            shards.append(checkpoint.predictor)
        if shards and shards[0].config.dynamic_mode:
            return merge_dynamic_shards(shards)
        return merge_shards(shards)
    checkpoint = CheckpointManager(directory).load_latest()
    if checkpoint is None:
        raise ReproError(f"{directory} holds no checkpoint generations")
    return checkpoint.predictor


def open_engine(
    target: Union[MinHashLinkPredictor, str, Path],
    **engine_options,
) -> QueryEngine:
    """Open a batch :class:`QueryEngine` over warm or persisted state.

    ``target`` may be:

    * a warm :class:`MinHashLinkPredictor` (snapshotted immediately),
    * a ``.npz`` file written by ``save_predictor`` / ``predict
      --save-checkpoint``,
    * a checkpoint *directory* from ``ingest`` — serial
      (``checkpoint-<gen>.npz`` generations) or sharded
      (``shard-NN/`` subdirectories, merged on load).

    Keyword options pass through to :class:`QueryEngine` (``bands``,
    ``rows``, ``batch_size``, ``metrics``, ...).
    """
    from repro.core.persistence import load_predictor

    if isinstance(target, (str, Path)):
        path = Path(target)
        if path.is_dir():
            predictor = _predictor_from_checkpoint_dir(path)
        elif path.is_file():
            predictor = load_predictor(path)
        else:
            raise ReproError(f"{path} is neither a predictor file nor a checkpoint directory")
    elif isinstance(target, LinkPredictor):
        predictor = target
    else:
        raise ConfigurationError(
            f"open_engine needs a predictor or a path, got {type(target).__name__}"
        )
    return QueryEngine(predictor, **engine_options)


def serve(
    target: Union[MinHashLinkPredictor, str, Path, None] = None,
    *,
    source: Optional[SourceLike] = None,
    config: Optional[SketchConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    refresh_every: float = 5.0,
    drain_timeout: float = 10.0,
    checkpoint_dir: Union[str, Path, None] = None,
    checkpoint_every: int = 1000,
    resume: bool = False,
    keep: int = 3,
    policy: str = "quarantine",
    self_loops: str = "quarantine",
    policies: object = None,
    batch_size: int = 0,
    max_retries: int = 0,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    **server_options,
):
    """Configure the always-on HTTP serving tier (the fifth verb).

    Returns a ready-to-run :class:`~repro.serve.server.SketchServer`;
    call ``server.run()`` to serve until SIGTERM (the blocking,
    production spelling — what ``repro-linkpred serve`` does), or start
    it on a thread and use :meth:`~repro.serve.server.SketchServer.
    wait_ready` / :meth:`~repro.serve.server.SketchServer.
    request_shutdown` to embed it.

    Two modes, picked by which argument you pass:

    * ``serve(target)`` — **static**: serve one frozen generation of a
      warm predictor, a saved ``.npz``, or a checkpoint directory
      (anything :func:`open_engine` accepts).
    * ``serve(source=...)`` — **live**: ingest the stream in a
      background thread and hot-swap a freshly packed generation every
      ``refresh_every`` seconds, with zero downtime and no torn reads.
      ``checkpoint_dir``/``checkpoint_every`` arm durable checkpoints
      (written on the usual cadence plus once more during the drain);
      ``resume=True`` restores from them before serving.

    ``port=0`` binds an ephemeral port (read ``server.port`` once
    ready).  Ingest knobs (``policy``, ``policies``, ``batch_size``,
    ``max_retries``, ...) match :func:`ingest`; extra keyword options
    pass through to :class:`~repro.serve.server.SketchServer`
    (``keep_history``, ``stale_after``, ``engine_options``, ...).
    See ``docs/OPERATIONS.md`` ("Running the server") for the runbook.
    """
    from repro.core.persistence import load_predictor
    from repro.serve.server import SketchServer
    from repro.stream.checkpoint import CheckpointManager
    from repro.stream.runner import StreamRunner

    if (target is None) == (source is None):
        raise ConfigurationError(
            "serve needs exactly one of target (static serving) or "
            "source (live ingest + hot swap)"
        )
    if target is not None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            if path.is_dir():
                predictor = _predictor_from_checkpoint_dir(path)
            elif path.is_file():
                predictor = load_predictor(path)
            else:
                raise ReproError(
                    f"{path} is neither a predictor file nor a checkpoint directory"
                )
        elif isinstance(target, LinkPredictor):
            predictor = target
        else:
            raise ConfigurationError(
                f"serve needs a predictor or a path, got {type(target).__name__}"
            )
        return SketchServer(
            predictor,
            host=host,
            port=port,
            refresh_every=0.0,
            drain_timeout=drain_timeout,
            metrics=metrics,
            **server_options,
        )
    resolved = _resolve_source(source, seed, max_retries=max_retries)
    manager = CheckpointManager(checkpoint_dir, keep=keep) if checkpoint_dir else None
    if resume and manager is None:
        raise ConfigurationError("resume=True needs a checkpoint_dir")
    runner = StreamRunner(
        resolved,
        config=config,
        checkpoint_manager=manager,
        checkpoint_every=checkpoint_every if manager else 0,
        policy=policy,
        self_loops=self_loops,
        policies=policies,
        metrics=metrics,
        batch_size=batch_size,
    )
    if resume:
        runner.resume()
    return SketchServer(
        runner=runner,
        host=host,
        port=port,
        refresh_every=refresh_every,
        drain_timeout=drain_timeout,
        **server_options,
    )


def evaluate(
    source: SourceLike,
    *,
    method: str = "minhash",
    config: Optional[SketchConfig] = None,
    measures: Sequence[str] = ("jaccard", "common_neighbors", "adamic_adar"),
    pairs: int = 1000,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Estimation accuracy of ``method`` against the exact oracle.

    Ingests the stream into both the chosen method and an exact oracle,
    samples ``pairs`` two-hop candidate pairs (seeded — reruns are
    reproducible), and returns the per-measure error summary
    (``{"jaccard": {"mae": ..., "rmse": ..., "mre": ...}, ...}``) —
    the programmatic twin of ``repro-linkpred evaluate``.
    """
    from repro.eval.candidates import sample_two_hop_pairs
    from repro.eval.experiments import accuracy_profile
    from repro.exact.oracle import ExactOracle
    from repro.stream.runner import ContractViolation, coerce_record

    resolved = _resolve_source(source, seed)
    oracle = ExactOracle()
    predictor = build_predictor(config, method=method)
    for record in resolved.records(0):
        try:
            edge = coerce_record(record, self_loops="drop")
        except ContractViolation:
            continue  # accuracy evaluation quarantines silently
        if edge is not None:
            predictor.update(edge.u, edge.v)
            oracle.update(edge.u, edge.v)
    candidate_pairs = sample_two_hop_pairs(oracle.graph, pairs, seed=seed)
    return accuracy_profile(predictor, oracle, candidate_pairs, list(measures))
