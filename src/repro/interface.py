"""The streaming link-predictor protocol.

Everything the evaluation harness compares — the paper's MinHash
predictors, the exact oracle, and the sampling baselines — speaks this
one interface, so experiments swap methods by constructing a different
object and nothing else.

The contract mirrors the paper's problem statement:

* :meth:`LinkPredictor.update` consumes one stream edge (amortised
  constant time for the sketch methods);
* :meth:`LinkPredictor.score` answers an online pairwise query for any
  registered :class:`~repro.exact.measures.Measure`;
* :meth:`LinkPredictor.nominal_bytes` reports the summary's packed
  size, the quantity the space experiments plot.

``score`` must return 0.0 for vertex pairs where either endpoint has
never appeared (the empty-neighborhood convention), never raise — an
online recommender cannot crash because a cold vertex was queried.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence, Tuple

from repro.graph.stream import Edge

__all__ = ["LinkPredictor"]


class LinkPredictor(ABC):
    """Abstract base class for all streaming link-prediction methods."""

    #: Human-readable method name used in experiment reports.
    method_name: str = "abstract"

    @abstractmethod
    def update(self, u: int, v: int) -> None:
        """Consume one undirected stream edge ``{u, v}``."""

    @abstractmethod
    def score(self, u: int, v: int, measure_name: str) -> float:
        """Estimate ``measure_name`` for the pair ``(u, v)``, online.

        Unknown vertices score 0.0; unknown measure names raise
        :class:`repro.errors.ConfigurationError`.
        """

    @abstractmethod
    def degree(self, vertex: int) -> int:
        """The method's current belief about ``vertex``'s degree
        (exact for most methods; approximate under the Count-Min degree
        option).  0 for unseen vertices."""

    @abstractmethod
    def nominal_bytes(self) -> int:
        """Packed size in bytes of all per-vertex state (the quantity
        the paper's space analysis counts)."""

    # ------------------------------------------------------------------
    # Conveniences shared by every implementation
    # ------------------------------------------------------------------

    def process(self, stream: Iterable[Edge]) -> int:
        """Consume an entire edge stream; returns the edge count.

        The count is *arrivals*, duplicates included — ``process``
        applies no deduplication, so on multi-edge streams
        degree-derived measures drift (see
        :meth:`repro.core.predictor.MinHashLinkPredictor.update` for
        the per-measure bias).  Pre-filter with
        :func:`repro.graph.stream.deduplicated`, or ingest through a
        :class:`~repro.stream.runner.StreamRunner` with casebook
        policies, whose ``stats()["duplicate_edges_detected"]`` reports
        how many duplicates were caught.
        """
        count = 0
        for edge in stream:
            self.update(edge.u, edge.v)
            count += 1
        return count

    def scores(self, u: int, v: int, measure_names: Sequence[str]) -> Dict[str, float]:
        """Estimate several measures for one pair in one call."""
        return {name: self.score(u, v, name) for name in measure_names}

    def rank_candidates(
        self,
        candidates: Iterable[Tuple[int, int]],
        measure_name: str,
        top: int | None = None,
    ) -> list[Tuple[Tuple[int, int], float]]:
        """Rank candidate pairs by descending estimated score.

        Ties break on the pair itself (deterministic output).  ``top``
        truncates the result; None returns the full ranking.  A
        truncated request runs the O(n log top) selection instead of a
        full sort — ``heapq.nsmallest`` under the same key is defined
        to equal ``sorted(...)[:top]``, so the ranking (ties included)
        is unchanged.
        """
        scored = ((pair, self.score(pair[0], pair[1], measure_name)) for pair in candidates)
        def sort_key(item):
            return (-item[1], item[0])
        if top is None:
            return sorted(scored, key=sort_key)
        return heapq.nsmallest(top, scored, key=sort_key)
