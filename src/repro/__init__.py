"""repro — sketch-based streaming link prediction.

A from-scratch reproduction of *"Link prediction in graph streams"*
(Zhao, Aggarwal & He, ICDE 2016): constant-space-per-vertex MinHash
sketches that estimate Jaccard, common-neighbor and Adamic–Adar link
prediction measures over unbounded edge streams, with a vertex-biased
variant, exact and sampling baselines, synthetic SNAP-profile datasets,
and a full evaluation harness.  (See DESIGN.md for why the requested
"Dark Data" panel title resolves to this paper.)

Quick start::

    from repro import MinHashLinkPredictor, SketchConfig
    from repro.graph import datasets

    predictor = MinHashLinkPredictor(SketchConfig(k=128, seed=42))
    predictor.process(datasets.load("synth-facebook"))
    estimate = predictor.estimate(10, 42)
    print(estimate.adamic_adar, "+/-", estimate.jaccard_std_error)

The subpackages, bottom-up: :mod:`repro.hashing` (seeded hash
families), :mod:`repro.sketches` (MinHash / bottom-k / weighted MinHash
/ HLL / Count-Min / reservoir / Bloom), :mod:`repro.graph` (streams,
generators, datasets, I/O), :mod:`repro.exact` (ground truth and
baselines), :mod:`repro.core` (the paper's predictors), and
:mod:`repro.eval` (splits, metrics, experiment machinery).
"""

from repro.core import (
    BiasedMinHashLinkPredictor,
    MinHashLinkPredictor,
    PairEstimate,
    SketchConfig,
    build_predictor,
)
from repro.errors import ReproError
from repro.exact import ExactOracle
from repro.interface import LinkPredictor
from repro.serve import QueryEngine

__version__ = "1.0.0"

__all__ = [
    "BiasedMinHashLinkPredictor",
    "ExactOracle",
    "LinkPredictor",
    "MinHashLinkPredictor",
    "PairEstimate",
    "QueryEngine",
    "ReproError",
    "SketchConfig",
    "build_predictor",
    "__version__",
]
