"""repro — sketch-based streaming link prediction.

A from-scratch reproduction of *"Link prediction in graph streams"*
(Zhao, Aggarwal & He, ICDE 2016): constant-space-per-vertex MinHash
sketches that estimate Jaccard, common-neighbor and Adamic–Adar link
prediction measures over unbounded edge streams, with a vertex-biased
variant, exact and sampling baselines, synthetic SNAP-profile datasets,
and a full evaluation harness.  (See DESIGN.md for why the requested
"Dark Data" panel title resolves to this paper.)

Quick start — the :mod:`repro.api` facade covers the whole pipeline in
five verbs::

    from repro import SketchConfig, ingest, open_engine, evaluate, serve

    report = ingest("synth-facebook", config=SketchConfig(k=128, seed=42),
                    workers=4)                  # sharded, bit-identical
    engine = open_engine(report.predictor)
    scores = engine.score_many([(10, 42), (7, 99)], "adamic_adar")
    errors = evaluate("synth-facebook", config=SketchConfig(k=128))
    serve(report.predictor, port=8080).run()    # HTTP serving tier

The subpackages, bottom-up: :mod:`repro.hashing` (seeded hash
families), :mod:`repro.sketches` (MinHash / bottom-k / weighted MinHash
/ HLL / Count-Min / reservoir / Bloom), :mod:`repro.graph` (streams,
generators, datasets, I/O), :mod:`repro.exact` (ground truth and
baselines), :mod:`repro.core` (the paper's predictors),
:mod:`repro.eval` (splits, metrics, experiment machinery),
:mod:`repro.stream` (fault-tolerant ingestion), :mod:`repro.parallel`
(sharded parallel ingestion), :mod:`repro.serve` (the batch query
engine) and :mod:`repro.obs` (metrics and tracing).  All stay public —
the facade composes them and ``repro.api.__all__`` is the documented
stable surface.
"""

from repro.api import (
    IngestReport,
    StreamRecord,
    build_predictor,
    evaluate,
    ingest,
    open_engine,
    serve,
)
from repro.core import (
    BiasedMinHashLinkPredictor,
    DynamicMinHashPredictor,
    MinHashLinkPredictor,
    PairEstimate,
    SketchConfig,
)
from repro.errors import ReproError
from repro.exact import ExactOracle
from repro.interface import LinkPredictor
from repro.serve import QueryEngine

__version__ = "1.1.0"

__all__ = [
    "BiasedMinHashLinkPredictor",
    "DynamicMinHashPredictor",
    "ExactOracle",
    "IngestReport",
    "LinkPredictor",
    "MinHashLinkPredictor",
    "PairEstimate",
    "QueryEngine",
    "ReproError",
    "SketchConfig",
    "StreamRecord",
    "build_predictor",
    "evaluate",
    "ingest",
    "open_engine",
    "serve",
    "__version__",
]
