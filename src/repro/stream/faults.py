"""Fault injection: deterministic chaos for the ingestion runtime.

Testing "survives crashes, flaky sources, and malformed records" needs
faults that are *reproducible* — a flake that only happens on one CI
run proves nothing.  Everything here derives its misbehaviour from a
seed plus the record offset, never from wall-clock or shared global
RNG state, so the same :class:`FaultInjector` produces the same fault
schedule on every run **and on every retry/resume replay** (which is
exactly what lets the crash-recovery suite assert bit-identical state).

Two orthogonal layers:

* :meth:`FaultInjector.mutate_records` corrupts the *data*: it maps a
  clean record list to one with corrupt lines, duplicated records and
  adjacent out-of-order swaps at configured rates.  The mutation is
  applied once, up front, producing a plain list — so offsets of the
  mutated stream are stable, and both the uninterrupted reference run
  and the crash/resume run see the identical byte sequence.
* :meth:`FaultInjector.flaky` corrupts the *transport*: it wraps a
  source so ``IOError`` is raised before certain offsets, a bounded
  number of times per offset (the failure "heals", as real transient
  faults do), which exercises :class:`~repro.stream.sources.RetryingSource`
  offset-exact recovery.  Set ``max_failures_per_offset`` at or above
  the retry policy's attempt cap to exercise
  :class:`~repro.errors.RetryExhaustedError` instead.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.stream.sources import EdgeSource, SourceRecord

__all__ = ["FaultInjector", "FlakySource"]

#: Corrupt-line shapes cycled through by ``mutate_records`` — one per
#: dead-letter reason class the parser can hit.
_CORRUPT_SHAPES = (
    "garbled",                # bad_arity (one field)
    "1 2 3 4 5",              # bad_arity (five fields)
    "x y",                    # non_integer_vertex
    "-4 7",                   # negative_vertex
    "3 4 not-a-time",         # bad_timestamp
    "9 9",                    # self_loop
)


def _offset_hash(seed: int, offset: int, salt: str) -> float:
    """Deterministic uniform [0, 1) from (seed, offset, purpose)."""
    digest = hashlib.blake2b(
        f"{seed}:{offset}:{salt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultInjector:
    """Seeded generator of data and transport faults.

    Rates are per-record probabilities in ``[0, 1]``.  ``io_error_rate``
    applies per *offset* of the wrapped source; each failing offset
    fails ``1 + (offset-hash % max_failures_per_offset)`` consecutive
    attempts before healing.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        corrupt_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        swap_rate: float = 0.0,
        io_error_rate: float = 0.0,
        max_failures_per_offset: int = 2,
    ) -> None:
        for name, rate in (
            ("corrupt_rate", corrupt_rate),
            ("duplicate_rate", duplicate_rate),
            ("swap_rate", swap_rate),
            ("io_error_rate", io_error_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if max_failures_per_offset < 1:
            raise ConfigurationError(
                f"max_failures_per_offset must be >= 1, got {max_failures_per_offset}"
            )
        self.seed = seed
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self.swap_rate = swap_rate
        self.io_error_rate = io_error_rate
        self.max_failures_per_offset = max_failures_per_offset

    # ------------------------------------------------------------------
    # Data faults
    # ------------------------------------------------------------------

    def mutate_records(self, records: Sequence[object]) -> List[object]:
        """A mutated copy: corruption, duplication, adjacent swaps.

        Deterministic in ``(seed, len(records))``; the input is never
        modified.  Order of application: duplicate, then corrupt, then
        swap — so a duplicate can itself be corrupted and a corrupt
        line can land out of order, like real pipelines.
        """
        rng = random.Random(self.seed)
        mutated: List[object] = []
        for record in records:
            mutated.append(record)
            if self.duplicate_rate and rng.random() < self.duplicate_rate:
                mutated.append(record)
        if self.corrupt_rate:
            for index in range(len(mutated)):
                if rng.random() < self.corrupt_rate:
                    mutated[index] = _CORRUPT_SHAPES[rng.randrange(len(_CORRUPT_SHAPES))]
        if self.swap_rate:
            for index in range(len(mutated) - 1):
                if rng.random() < self.swap_rate:
                    mutated[index], mutated[index + 1] = mutated[index + 1], mutated[index]
        return mutated

    # ------------------------------------------------------------------
    # Transport faults
    # ------------------------------------------------------------------

    def flaky(self, source: EdgeSource) -> "FlakySource":
        """Wrap ``source`` with seeded transient ``IOError`` injection."""
        return FlakySource(source, self)

    def failures_for_offset(self, offset: int) -> int:
        """How many consecutive attempts the given offset will fail."""
        if not self.io_error_rate:
            return 0
        if _offset_hash(self.seed, offset, "io") >= self.io_error_rate:
            return 0
        span = _offset_hash(self.seed, offset, "count")
        return 1 + int(span * self.max_failures_per_offset)


class FlakySource(EdgeSource):
    """A source wrapper that raises ``IOError`` before chosen offsets.

    Failure state is held on the wrapper object (not the iterator), so
    a :class:`~repro.stream.sources.RetryingSource` re-opening the
    stream after backoff sees the fault *heal* after its budgeted
    failures — the way a recovering disk or NFS mount behaves.
    """

    def __init__(self, source: EdgeSource, injector: FaultInjector) -> None:
        self.source = source
        self.injector = injector
        self.name = f"flaky({source.name})"
        self.failures_injected = 0
        self._failed_so_far: Dict[int, int] = {}

    def records(self, start_offset: int = 0) -> Iterator[SourceRecord]:
        for record in self.source.records(start_offset):
            budget = self.injector.failures_for_offset(record.offset)
            if budget:
                done = self._failed_so_far.get(record.offset, 0)
                if done < budget:
                    self._failed_so_far[record.offset] = done + 1
                    self.failures_injected += 1
                    # A *stdlib* IOError is the point: production retry
                    # loops catch OSError, not ReproError, and the injector
                    # must look exactly like the failure it simulates.
                    raise IOError(  # repro-lint: disable=RL002
                        f"injected transient failure at offset {record.offset} "
                        f"({done + 1}/{budget})"
                    )
            yield record

    def __repr__(self) -> str:
        return f"FlakySource({self.source!r}, injected={self.failures_injected})"
